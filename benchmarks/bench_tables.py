"""Tables 2-3 / Figure 1: the paper's motivating shopping-trend analysis.

Table 2 is the OLAP query Qs (weekly ``Avg(gold)`` via SQL GROUP BY);
Table 3 is the cohort version (weekly launch cohorts × age). The
benchmark regenerates both; ``examples/shopping_trend.py`` prints them.
"""


from repro.bench import cohana_engine, dataset
from repro.bench.experiments import TABLE, _START
from repro.relational import Database
from repro.schema import parse_timestamp

CHUNK_ROWS = 4096


def test_table2_olap_weekly_average(benchmark):
    table = dataset(1)
    db = Database(executor="columnar")
    db.register_activity_table(TABLE, table)
    origin = parse_timestamp(_START)
    sql = (f"SELECT week, Avg(gold) AS avgSpent FROM {TABLE} "
           f"WHERE action = 'shop' "
           f"GROUP BY Week(time, {origin}) AS week ORDER BY week")
    benchmark.extra_info.update(table="2")
    result = benchmark(db.execute, sql)
    assert len(result) >= 1


def test_table3_cohort_report(benchmark):
    engine = cohana_engine(1, CHUNK_ROWS)
    origin = parse_timestamp(_START)
    text = (f"SELECT time, COHORTSIZE, AGE, Avg(gold) AS avgSpent "
            f"FROM {TABLE} BIRTH FROM action = \"launch\" "
            f"AGE ACTIVITIES IN action = \"shop\" "
            f"COHORT BY time UNIT week")
    benchmark.extra_info.update(table="3")
    query = engine.parse(text, age_unit="week", time_bin_origin=origin)
    result = benchmark(engine.query, query)
    assert len(result.rows) >= 1
