"""Figure 11: the comparative study — COHANA vs the non-intrusive schemes.

Paper shape (per query, at every scale):
``PG-S`` slowest ≫ ``PG-M`` ≫ ``MONET-S`` ≫ ``MONET-M`` ≫ ``COHANA``,
with COHANA 1-3 orders faster than MONET-M. One benchmark per
(system, query) at a fixed scale; the scale sweep lives in run_all.py.
"""

import pytest

from repro.bench import dataset, prepared_system
from repro.bench.experiments import TABLE, FIG11_SYSTEMS
from repro.workloads import MAIN_QUERIES, bind

SCALE = 2
CHUNK_ROWS = 4096


@pytest.mark.parametrize("system_label", FIG11_SYSTEMS)
@pytest.mark.parametrize("qname", sorted(MAIN_QUERIES))
def test_fig11_scheme_comparison(benchmark, system_label, qname):
    system = prepared_system(system_label, SCALE, CHUNK_ROWS)
    query = bind(MAIN_QUERIES[qname](TABLE), dataset(SCALE).schema)
    benchmark.extra_info.update(figure="11", system=system_label,
                                query=qname, scale=SCALE)
    slow = system_label in ("PG-S", "PG-M")
    result = benchmark.pedantic(system.run, args=(query,),
                                rounds=1 if slow else 3, iterations=1)
    assert result.columns[0] == "country"
