"""Shared settings for the benchmark suite.

Benchmarks run at reduced scales (the harness datasets are ~1/1000 of the
paper's per scale unit) — the point is reproducing each figure's *shape*:
orderings, slopes and crossovers, not absolute seconds. ``run_all.py``
prints the full figure-style reports.
"""

from __future__ import annotations

import pytest

from repro.bench import dataset


@pytest.fixture(scope="session", autouse=True)
def warm_datasets():
    """Generate/scale the shared datasets once before timing anything."""
    for scale in (1, 2, 4):
        dataset(scale)
