"""Parallel scan scaling: speedup vs worker count and backend.

Measures the chunk pipeline's ``serial`` / ``threads`` / ``processes``
backends over a memory-mapped on-disk table — the same plan run with 1,
2 and 4 scan workers at scales 1/2/4. Honest expectations under
CPython: ``threads`` is GIL-bound on the pure-Python kernels (flat by
construction), while ``processes`` scans chunks on real cores — workers
reopen the ``.cohana`` file by path and deserialize only the chunks
they scan. Scaling is bounded by the machine: a single-core container
records flat curves (plus pool-spawn overhead for ``processes``), a
multi-core box records the speedup. The measured numbers are the point.

Runs two ways:

* ``pytest benchmarks/bench_parallel_scaling.py`` — pytest-benchmark
  timings, one benchmark per (scale, backend, jobs);
* ``PYTHONPATH=src python benchmarks/bench_parallel_scaling.py`` — the
  figure-style report plus per-worker-count speedups on stdout.
"""

import pytest

from repro.bench import cohana_engine_on_disk
from repro.bench.experiments import TABLE
from repro.workloads import MAIN_QUERIES

SCALES = (1, 2, 4)
JOBS = (1, 2, 4)
BACKENDS = ("threads", "processes")
CHUNK_ROWS = 1024
QUERY = "Q1"


@pytest.mark.parametrize("jobs", JOBS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scale", SCALES)
def test_parallel_scaling(benchmark, scale, backend, jobs):
    engine = cohana_engine_on_disk(scale, CHUNK_ROWS)
    text = MAIN_QUERIES[QUERY](TABLE)
    benchmark.extra_info.update(figure="parallel", query=QUERY,
                                scale=scale, backend=backend, jobs=jobs,
                                chunk_rows=CHUNK_ROWS)
    result = benchmark(engine.query, text, jobs=jobs, backend=backend)
    assert len(result.rows) > 0


def main() -> int:
    from repro.bench import parallel_scaling, parallel_scaling_records

    report = parallel_scaling(scales=SCALES, jobs_counts=JOBS,
                              chunk_rows=CHUNK_ROWS)
    print(report.to_text())
    print()
    print("speedup vs jobs=1 (per series):")
    for record in parallel_scaling_records(report):
        print(f"  {record['series']:<24} jobs={record['jobs']}  "
              f"{record['seconds']:.4f}s  x{record['speedup']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
