"""Parallel scan scaling: speedup vs worker count at scales 1/2/4.

Measures the chunk pipeline's ``threads`` backend: the same plan run
with 1, 2 and 4 scan workers over the scale-1/2/4 datasets. Honest
expectations under CPython: the iterator kernel is GIL-bound, and the
vectorized kernel only overlaps inside numpy's GIL-releasing sections,
so speedups at these (small) scales are modest — the point is measuring
them, and exercising the scheduler path every parallel backend shares.

Runs two ways:

* ``pytest benchmarks/bench_parallel_scaling.py`` — pytest-benchmark
  timings, one benchmark per (scale, jobs);
* ``PYTHONPATH=src python benchmarks/bench_parallel_scaling.py`` — the
  figure-style report plus per-worker-count speedups on stdout.
"""

import pytest

from repro.bench import cohana_engine
from repro.bench.experiments import TABLE
from repro.workloads import MAIN_QUERIES

SCALES = (1, 2, 4)
JOBS = (1, 2, 4)
CHUNK_ROWS = 1024
QUERY = "Q1"


@pytest.mark.parametrize("jobs", JOBS)
@pytest.mark.parametrize("scale", SCALES)
def test_parallel_scaling(benchmark, scale, jobs):
    engine = cohana_engine(scale, CHUNK_ROWS)
    text = MAIN_QUERIES[QUERY](TABLE)
    benchmark.extra_info.update(figure="parallel", query=QUERY,
                                scale=scale, jobs=jobs,
                                chunk_rows=CHUNK_ROWS)
    result = benchmark(engine.query, text, jobs=jobs, backend="threads")
    assert len(result.rows) > 0


def main() -> int:
    from repro.bench import parallel_scaling, parallel_scaling_records

    report = parallel_scaling(scales=SCALES, jobs_counts=JOBS,
                              chunk_rows=CHUNK_ROWS)
    print(report.to_text())
    print()
    print("speedup vs jobs=1:")
    for record in parallel_scaling_records(report):
        print(f"  {record['series']:<14} jobs={record['jobs']}  "
              f"{record['seconds']:.4f}s  x{record['speedup']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
