"""Sharded append-only ingestion vs full single-file rewrite.

Measures the two ways of absorbing one new user-disjoint batch into an
existing table: **append** writes one new shard file and atomically
replaces the manifest (O(new data); no existing byte is touched), while
**rewrite** recompresses and re-saves everything seen so far as one
``.cohana`` file (O(total data) — what a single-file table must pay).
``BENCH_shards.json`` additionally records scan parity between the
sharded table and the equivalent single file, and per-shard pruning
counters; see ``benchmarks/run_all.py shards``.

Runs two ways:

* ``pytest benchmarks/bench_shards.py`` — pytest-benchmark timings,
  one benchmark per ingestion path;
* ``PYTHONPATH=src python benchmarks/bench_shards.py`` — the
  figure-style report on stdout.
"""

import shutil
import tempfile
from pathlib import Path

import pytest

from repro.bench import dataset
from repro.bench.experiments import _user_batches
from repro.storage import append_shard, compress, save

SCALE = 4
N_BATCHES = 4
CHUNK_ROWS = 1024


@pytest.fixture(scope="module")
def batches():
    table = dataset(SCALE).sorted_by_primary_key()
    return _user_batches(table, N_BATCHES)


def test_append_one_batch(benchmark, batches, tmp_path_factory):
    """Appending the last batch to a table already holding the rest."""
    benchmark.extra_info.update(figure="shard_append", path="append",
                                scale=SCALE)

    def setup():
        root = Path(tempfile.mkdtemp(
            dir=tmp_path_factory.getbasetemp()))
        shard_dir = root / "sharded"
        for batch in batches[:-1]:
            append_shard(shard_dir, batch, target_chunk_rows=CHUNK_ROWS)
        return (shard_dir,), {}

    def append(shard_dir):
        return append_shard(shard_dir, batches[-1],
                            target_chunk_rows=CHUNK_ROWS)

    entry = benchmark.pedantic(append, setup=setup, rounds=5)
    assert entry["n_rows"] == len(batches[-1])


def test_full_rewrite(benchmark, batches, tmp_path):
    """The single-file alternative: recompress + re-save everything."""
    benchmark.extra_info.update(figure="shard_append", path="rewrite",
                                scale=SCALE)
    table = batches[0]
    for batch in batches[1:]:
        table = table.concat(batch)
    out = tmp_path / "single.cohana"

    def rewrite():
        return save(compress(table, target_chunk_rows=CHUNK_ROWS,
                             assume_sorted=True), out)

    n_bytes = benchmark(rewrite)
    assert n_bytes > 0


def test_sharded_scan_parity(batches, tmp_path):
    """The sharded table answers queries identically to the single file."""
    from repro.bench.experiments import TABLE, selective_scan_query
    from repro.cohana import CohanaEngine

    shard_dir = tmp_path / "sharded"
    table = None
    for batch in batches:
        append_shard(shard_dir, batch, target_chunk_rows=CHUNK_ROWS)
        table = batch if table is None else table.concat(batch)
    single_path = tmp_path / "single.cohana"
    save(compress(table, target_chunk_rows=CHUNK_ROWS,
                  assume_sorted=True), single_path)

    sharded, single = CohanaEngine(), CohanaEngine()
    sharded.load_table(TABLE, shard_dir)
    single.load_table(TABLE, single_path)
    text = selective_scan_query()
    assert sharded.query(text).rows == single.query(text).rows
    shutil.rmtree(shard_dir)


def main() -> int:
    from repro.bench import shard_append

    print(shard_append(scale=SCALE, n_batches=N_BATCHES,
                       chunk_rows=CHUNK_ROWS).to_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
