"""Figure 7: storage space under varying chunk size.

Paper shape: compressed size grows with chunk size — bigger chunks hold
more distinct values, so chunk dictionaries get larger and packed codes
need more bits. The benchmark times compression (also the COHANA line of
Figure 10) and records the measured sizes in extra_info.
"""

import pytest

from repro.bench import dataset
from repro.storage import collect_stats, compress

SCALE = 4
CHUNK_ROWS = (256, 1024, 4096, 16384)


@pytest.mark.parametrize("chunk_rows", CHUNK_ROWS)
def test_fig07_compression_and_size(benchmark, chunk_rows):
    table = dataset(SCALE)
    compressed = benchmark.pedantic(
        compress, args=(table,), kwargs={"target_chunk_rows": chunk_rows},
        rounds=2, iterations=1)
    stats = collect_stats(compressed)
    benchmark.extra_info.update(
        figure="7", scale=SCALE, chunk_rows=chunk_rows,
        compressed_bytes=stats.total_bytes,
        bits_per_tuple=round(stats.bits_per_tuple, 2),
        n_chunks=stats.n_chunks)
    assert stats.total_bytes > 0


def test_fig07_size_grows_with_chunk_size(benchmark):
    """The figure's claim itself: bigger chunks => no smaller footprint."""
    table = dataset(SCALE)
    sizes = {rows: collect_stats(compress(table, target_chunk_rows=rows)
                                 ).total_bytes
             for rows in (256, 16384)}
    benchmark.extra_info.update(figure="7", sizes=sizes)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert sizes[16384] >= sizes[256]
