"""Figure 6: COHANA query time under varying chunk size (Q1-Q4).

Paper shape: time grows ~linearly with scale; smaller chunks are slightly
faster on small data (fewer bytes touched per query), larger chunks win
once the dataset outgrows memory granularity. One benchmark per
(query, chunk size) at a fixed scale; the scale sweep lives in
``run_all.py`` (fig06 report).
"""

import pytest

from repro.bench import cohana_engine
from repro.bench.experiments import TABLE
from repro.workloads import MAIN_QUERIES

SCALE = 4
CHUNK_ROWS = (256, 1024, 4096, 16384)


@pytest.mark.parametrize("chunk_rows", CHUNK_ROWS)
@pytest.mark.parametrize("qname", sorted(MAIN_QUERIES))
def test_fig06_cohana_chunk_size(benchmark, qname, chunk_rows):
    engine = cohana_engine(SCALE, chunk_rows)
    text = MAIN_QUERIES[qname](TABLE)
    benchmark.extra_info.update(figure="6", query=qname,
                                chunk_rows=chunk_rows, scale=SCALE)
    result = benchmark(engine.query, text)
    assert len(result.rows) > 0
