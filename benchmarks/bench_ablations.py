"""Ablations of COHANA's design choices (DESIGN.md's ablation index).

* vectorized vs the faithful tuple-at-a-time executor (Algorithms 1-2) —
  the Python-level proxy for the paper's compiled-scan speed;
* birth-selection push-down on/off (Section 4.2's optimization);
* chunk pruning on/off (the two-level encoding's payoff, Section 4.1).
"""

import pytest

from repro.bench import cohana_engine
from repro.bench.experiments import TABLE
from repro.workloads import MAIN_QUERIES

SCALE = 4
CHUNK_ROWS = 1024

VARIANTS = {
    "vectorized": dict(executor="vectorized"),
    "iterator": dict(executor="iterator"),
    "no-pushdown": dict(executor="vectorized", pushdown=False),
    "no-pruning": dict(executor="vectorized", prune=False),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("qname", ["Q1", "Q2", "Q4"])
def test_ablation_variants(benchmark, variant, qname):
    engine = cohana_engine(SCALE, CHUNK_ROWS)
    text = MAIN_QUERIES[qname](TABLE)
    kw = VARIANTS[variant]
    benchmark.extra_info.update(figure="ablation", variant=variant,
                                query=qname, scale=SCALE)
    slow = variant == "iterator"
    benchmark.pedantic(lambda: engine.query(text, **kw),
                       rounds=1 if slow else 3, iterations=1)
