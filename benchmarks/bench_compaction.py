"""Shard compaction: many-shard query cost vs the compacted table.

Measures what compaction buys back: a table ingested as many small
shards pays per-shard planning, digest verification, and mmap setup on
every query, while the same rows compacted into one shard query at
single-file cost. Also times the compaction itself (decompress +
re-compress + atomic manifest publish). ``BENCH_compaction.json``
additionally records digest parity, version-token survival, and the
pin-aware GC lifecycle; see ``benchmarks/run_all.py compaction``.

Runs two ways:

* ``pytest benchmarks/bench_compaction.py`` — pytest-benchmark
  timings, one benchmark per path;
* ``PYTHONPATH=src python benchmarks/bench_compaction.py`` — the
  figure-style report on stdout.
"""

import tempfile
from pathlib import Path

import pytest

from repro.bench import dataset
from repro.bench.experiments import TABLE, _main_query, _user_batches
from repro.cohana import CohanaEngine
from repro.storage import append_shard, compact

SCALE = 4
N_BATCHES = 6
CHUNK_ROWS = 1024


@pytest.fixture(scope="module")
def batches():
    table = dataset(SCALE).sorted_by_primary_key()
    return _user_batches(table, N_BATCHES)


def _build_sharded(root: Path, batches) -> Path:
    shard_dir = root / "sharded"
    for batch in batches:
        append_shard(shard_dir, batch, target_chunk_rows=CHUNK_ROWS)
    return shard_dir


def test_compact_many_shards(benchmark, batches, tmp_path_factory):
    """Compacting N small shards into one (decompress, re-compress,
    publish, GC)."""
    benchmark.extra_info.update(figure="compaction", path="compact",
                                scale=SCALE)

    def setup():
        root = Path(tempfile.mkdtemp(
            dir=tmp_path_factory.getbasetemp()))
        return (_build_sharded(root, batches),), {}

    result = benchmark.pedantic(
        lambda d: compact(d), setup=setup, rounds=5)
    assert result.compacted and result.n_rows == sum(
        len(b) for b in batches)


def test_query_many_shards(benchmark, batches, tmp_path):
    """Query latency over the un-compacted many-shard table."""
    benchmark.extra_info.update(figure="compaction", path="pre",
                                scale=SCALE)
    engine = CohanaEngine()
    engine.load_table(TABLE, _build_sharded(tmp_path, batches))
    text = _main_query("Q1")
    benchmark(lambda: engine.query(text))


def test_query_compacted(benchmark, batches, tmp_path):
    """The same query after compaction: the recovered latency."""
    benchmark.extra_info.update(figure="compaction", path="post",
                                scale=SCALE)
    shard_dir = _build_sharded(tmp_path, batches)
    compact(shard_dir)
    engine = CohanaEngine()
    engine.load_table(TABLE, shard_dir)
    text = _main_query("Q1")
    benchmark(lambda: engine.query(text))


def test_compaction_parity(batches, tmp_path):
    """Compaction changes no query answer."""
    shard_dir = _build_sharded(tmp_path, batches)
    engine = CohanaEngine()
    engine.load_table(TABLE, shard_dir)
    text = _main_query("Q1")
    before = engine.query(text).rows
    compact(shard_dir)
    engine.refresh_table(TABLE)
    assert engine.query(text).rows == before


def main() -> int:
    from repro.bench import compaction

    print(compaction(scale=SCALE, n_batches=N_BATCHES,
                     chunk_rows=CHUNK_ROWS).to_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
