"""Figure 8: effect of birth selection selectivity (Q5 / Q6).

Paper shape: Q5's time tracks the birth CDF (push-down + user skipping
make cost proportional to qualified users); Q6 is flatter because finding
each user's ``shop`` birth tuple costs a scan prefix regardless of the
date window.
"""

import pytest

from repro.bench import cohana_engine
from repro.bench.experiments import TABLE, _START
from repro.workloads import day_offset, q5, q6

DAYS = (3, 10, 39)
CHUNK_ROWS = 4096


@pytest.mark.parametrize("day", DAYS)
def test_fig08_q5_birth_window(benchmark, day):
    engine = cohana_engine(1, CHUNK_ROWS)
    text = q5(_START, day_offset(_START, day), TABLE)
    benchmark.extra_info.update(figure="8", query="Q5", day=day)
    benchmark(engine.query, text)


@pytest.mark.parametrize("day", DAYS)
def test_fig08_q6_birth_window(benchmark, day):
    engine = cohana_engine(1, CHUNK_ROWS)
    text = q6(_START, day_offset(_START, day), TABLE)
    benchmark.extra_info.update(figure="8", query="Q6", day=day)
    benchmark(engine.query, text)
