"""HTTP service tier: request latency through a live server.

Measures one ``POST /query`` round trip against a real
:class:`repro.service.HttpCohortServer` bound to a loopback port —
wire framing + admission + service caches + engine — once served from
the warm result cache and once with ``use_cache=false`` (a full
execution per request). Digest parity against the direct engine run is
asserted on every measured response.

Runs two ways:

* ``pytest benchmarks/bench_http.py`` — pytest-benchmark timings, one
  benchmark per (query, temperature);
* ``PYTHONPATH=src python benchmarks/bench_http.py`` — the
  concurrency-sweep report (p50/p99 at 1/16/64 clients, cache on/off,
  plus the shed and drain verdicts) on stdout.
"""

import pytest

from repro.bench import cohana_engine_on_disk
from repro.bench.experiments import TABLE, selective_scan_query
from repro.bench.http_load import _Client, _direct_digests
from repro.service import (
    AdmissionConfig,
    HttpCohortServer,
    QueryService,
    start_in_thread,
)
from repro.workloads import MAIN_QUERIES

SCALE = 4
CHUNK_ROWS = 1024
QUERIES = {
    "Q1": lambda: MAIN_QUERIES["Q1"](TABLE),
    "Q4": lambda: MAIN_QUERIES["Q4"](TABLE),
    "selective_scan": selective_scan_query,
}


@pytest.fixture(scope="module")
def served():
    service = QueryService(cohana_engine_on_disk(SCALE, CHUNK_ROWS))
    server = HttpCohortServer(service, admission=AdmissionConfig(
        max_inflight=8, queue_depth=64, tenant_quota=64))
    digests = _direct_digests(
        service, {qname: make() for qname, make in QUERIES.items()})
    with start_in_thread(server) as handle:
        yield handle, digests


@pytest.mark.parametrize("qname", sorted(QUERIES))
def test_http_cached(benchmark, served, qname):
    handle, digests = served
    text = QUERIES[qname]()
    client = _Client(handle.address)
    client.request("POST", "/query", {"query": text})  # warm the cache
    benchmark.extra_info.update(figure="serve_http", query=qname,
                                temperature="hit", scale=SCALE)
    status, _, payload = benchmark(
        client.request, "POST", "/query", {"query": text})
    client.close()
    assert status == 200
    assert payload["digest"] == digests[qname]
    assert payload["stats"]["cache_disposition"] == "hit"


@pytest.mark.parametrize("qname", sorted(QUERIES))
def test_http_bypass(benchmark, served, qname):
    handle, digests = served
    text = QUERIES[qname]()
    client = _Client(handle.address)
    benchmark.extra_info.update(figure="serve_http", query=qname,
                                temperature="bypass", scale=SCALE)
    status, _, payload = benchmark(
        client.request, "POST", "/query",
        {"query": text, "use_cache": False})
    client.close()
    assert status == 200
    assert payload["digest"] == digests[qname]
    assert payload["stats"]["cache_disposition"] == "bypass"


def main() -> int:
    from repro.bench.http_load import serve_http_report

    print(serve_http_report(scale=SCALE,
                            chunk_rows=CHUNK_ROWS).to_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
