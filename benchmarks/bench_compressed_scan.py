"""Compressed-domain scans vs decoded scans on the selective workload.

Measures ``scan_mode=compressed`` (coded-domain predicate evaluation,
zone-map + chunk-dictionary pruning) against ``scan_mode=decoded`` (the
legacy materialize-then-filter path) at ``jobs=1``. The selective
queries constrain the birth selection with Zipf-tail dictionary values
or string ranges, so the compressed path can prove most chunks empty
from persisted metadata alone; both modes must return identical rows.

Runs two ways:

* ``pytest benchmarks/bench_compressed_scan.py`` — pytest-benchmark
  timings, one benchmark per (query, scan_mode);
* ``PYTHONPATH=src python benchmarks/bench_compressed_scan.py`` — the
  figure-style report plus per-query speedups on stdout.
"""

import pytest

from repro.bench import cohana_engine, selective_queries

SCALE = 8
CHUNK_ROWS = 1024
MODES = ("decoded", "compressed")


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("qname", sorted(selective_queries()))
def test_compressed_scan(benchmark, qname, mode):
    engine = cohana_engine(SCALE, CHUNK_ROWS)
    text = selective_queries()[qname]
    benchmark.extra_info.update(figure="compressed", query=qname,
                                scan_mode=mode, scale=SCALE,
                                chunk_rows=CHUNK_ROWS)
    result = benchmark(engine.query, text, scan_mode=mode)
    baseline = engine.query(text, scan_mode="decoded")
    assert result.rows == baseline.rows


def main() -> int:
    from repro.bench import compressed_scan

    report = compressed_scan(scale=SCALE, chunk_rows=CHUNK_ROWS)
    print(report.to_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
