"""Query-service result cache: cold admission vs cached serving.

Measures :class:`repro.service.QueryService` over a memory-mapped
on-disk table: a *cold* call pays parse/fingerprint + plan + chunk scan
+ merge (a cache ``miss``); a *warm* call is served straight from the
LRU result cache (a ``hit``). The acceptance bar recorded in
``BENCH_service.json`` is a >= 10x hit-vs-cold speedup with identical
result digests — the measured gap is usually orders of magnitude.

Runs two ways:

* ``pytest benchmarks/bench_service_cache.py`` — pytest-benchmark
  timings, one benchmark per (query, temperature);
* ``PYTHONPATH=src python benchmarks/bench_service_cache.py`` — the
  figure-style report on stdout.
"""

import pytest

from repro.bench import cohana_engine_on_disk
from repro.bench.experiments import TABLE, selective_scan_query
from repro.service import QueryService
from repro.workloads import MAIN_QUERIES

SCALE = 4
CHUNK_ROWS = 1024
QUERIES = {
    "Q1": lambda: MAIN_QUERIES["Q1"](TABLE),
    "Q4": lambda: MAIN_QUERIES["Q4"](TABLE),
    "selective_scan": selective_scan_query,
}


@pytest.fixture(scope="module")
def service():
    return QueryService(cohana_engine_on_disk(SCALE, CHUNK_ROWS))


@pytest.mark.parametrize("qname", sorted(QUERIES))
def test_cold_admission(benchmark, service, qname):
    text = QUERIES[qname]()
    benchmark.extra_info.update(figure="service_cache", query=qname,
                                temperature="cold", scale=SCALE)

    def cold():
        service.clear()
        return service.query(text)

    result = benchmark(cold)
    assert len(result.rows) > 0


@pytest.mark.parametrize("qname", sorted(QUERIES))
def test_cached_hit(benchmark, service, qname):
    text = QUERIES[qname]()
    cold_result = service.query(text)  # warm the cache
    benchmark.extra_info.update(figure="service_cache", query=qname,
                                temperature="hit", scale=SCALE)
    result = benchmark(service.query, text)
    assert result.rows == cold_result.rows
    _, stats = service.query_with_stats(text)
    assert stats.cache_disposition == "hit"


def main() -> int:
    from repro.bench import service_cache

    print(service_cache(scale=SCALE, chunk_rows=CHUNK_ROWS).to_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
