"""Figure 10: time to generate the materialized view vs COHANA compression.

Paper shape: MV generation on the row engine is the most expensive by a
wide margin (two joins, per-row), the columnar engine is 1-2 orders
faster, and COHANA's compression pass is cheapest — it reads the sorted
table once and never joins.
"""

import pytest

from repro.baselines import MvScheme
from repro.bench import dataset
from repro.relational import Database
from repro.storage import compress

SCALE = 2
CHUNK_ROWS = 4096


def _build_mv(executor: str):
    table = dataset(SCALE)
    db = Database(executor=executor)
    db.register_activity_table("GameActions", table)
    MvScheme(db, "GameActions", table.schema).prepare("launch")


@pytest.mark.parametrize("engine_label,executor",
                         [("PG", "rows"), ("MONET", "columnar")])
def test_fig10_mv_generation(benchmark, engine_label, executor):
    benchmark.extra_info.update(figure="10", system=f"{engine_label}-M",
                                scale=SCALE)
    benchmark.pedantic(_build_mv, args=(executor,), rounds=2,
                       iterations=1)


def test_fig10_cohana_compression(benchmark):
    table = dataset(SCALE)
    benchmark.extra_info.update(figure="10", system="COHANA",
                                scale=SCALE)
    benchmark.pedantic(compress, args=(table,),
                       kwargs={"target_chunk_rows": CHUNK_ROWS},
                       rounds=2, iterations=1)
