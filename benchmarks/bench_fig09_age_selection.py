"""Figure 9: effect of age selection (Q7 / Q8).

Paper shape: Q7 grows ~linearly with the age cutoff (bounded by distinct
users active in the range); Q8 grows slowly — shop activity thins out at
higher ages (the aging effect), so widening the window adds few tuples.
"""

import pytest

from repro.bench import cohana_engine
from repro.bench.experiments import TABLE
from repro.workloads import q7, q8

AGES = (1, 7, 14)
CHUNK_ROWS = 4096


@pytest.mark.parametrize("g", AGES)
def test_fig09_q7_age_cutoff(benchmark, g):
    engine = cohana_engine(1, CHUNK_ROWS)
    benchmark.extra_info.update(figure="9", query="Q7", age_cutoff=g)
    benchmark(engine.query, q7(g, TABLE))


@pytest.mark.parametrize("g", AGES)
def test_fig09_q8_age_cutoff(benchmark, g):
    engine = cohana_engine(1, CHUNK_ROWS)
    benchmark.extra_info.update(figure="9", query="Q8", age_cutoff=g)
    benchmark(engine.query, q8(g, TABLE))
