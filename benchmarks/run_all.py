"""Regenerate every figure of the paper's evaluation as text reports.

Usage::

    python benchmarks/run_all.py              # everything
    python benchmarks/run_all.py fig11 fig08  # selected experiments

The reports print the same rows/series the paper plots; EXPERIMENTS.md
records paper-vs-measured shape for each. Absolute numbers differ from
the paper (pure Python + synthetic data at ~1/1000 size); orderings,
slopes and crossovers are the reproduction target.
"""

from __future__ import annotations

import sys

from repro.bench.report_runner import run_and_print

if __name__ == "__main__":
    raise SystemExit(run_and_print(sys.argv[1:]))
