"""Regenerate every figure of the paper's evaluation as text reports.

Usage::

    python benchmarks/run_all.py                    # everything
    python benchmarks/run_all.py fig11 fig08        # selected experiments
    python benchmarks/run_all.py parallel --jobs 8  # parallel scaling only

The reports print the same rows/series the paper plots; EXPERIMENTS.md
records paper-vs-measured shape for each. Absolute numbers differ from
the paper (Python/numpy kernels + synthetic data at ~1/1000 size);
orderings, slopes and crossovers are the reproduction target.

The ``parallel`` experiment sweeps the chunk pipeline's worker count
across all three backends (``serial`` / ``threads`` / ``processes``)
over memory-mapped on-disk tables, runs the selective-scan experiment
(a user-selective birth condition on the mmap table, all backends,
with result-digest parity), and
records the timings (with speedups, the seed, the jobs sweep, and the
machine's CPU count — scaling is bounded by the hardware, so a 1-core
container legitimately records flat curves) in ``BENCH_parallel.json``:
``--seed`` pins the dataset generator, ``--jobs`` sets the largest
worker count measured.

The ``compressed`` experiment runs the selective workload under
``scan_mode=decoded`` vs ``scan_mode=compressed`` at ``jobs=1`` and
records timings, the scheduler's pruning counters, per-query speedups
and the cross-mode result-parity check in ``BENCH_compressed.json``.

The ``serve_http`` experiment drives a live :class:`HttpCohortServer`
with ``http.client`` worker threads: p50/p99 latency and throughput at
client concurrency 1/16/64 with the result cache on and off (every
response digest checked against a direct engine run), a burst against
a one-slot admission config witnessing honest 429 + ``Retry-After``
shedding, and a graceful drain with requests in flight completing with
zero drops; ``BENCH_http.json`` records the sweep and the
parity / shed / drain verdicts.

The ``shards`` experiment ingests the dataset as user-disjoint batches
into a sharded table directory, measuring each append (one new shard +
manifest update) against the full single-file rewrite of the same
accumulated data, then checks sharded-vs-single scan parity and
records per-shard pruning counters in ``BENCH_shards.json``.

The ``views`` experiment registers a materialized view over a growing
sharded table and, after every append, refreshes it (exactly one new
shard may be scanned), times the warm serve (re-merge of cached
per-shard partials) against direct execution, and checks digest parity
on every scan backend; ``BENCH_views.json`` records the per-append
curve and the flat-latency / parity verdicts.

The ``compaction`` experiment appends the dataset as many small
shards, compacts them into one, and shows query latency recovering to
single-file levels while results stay digest-identical, the engine's
version token (and therefore the service result cache) survives the
rewrite, and per-batch append cost stays O(new data);
``BENCH_compaction.json`` records the parity / recovery / token /
append verdicts.

The ``operators`` experiment guards the operator-tree refactor: it
times the per-chunk scan once as the pre-refactor flat kernel loop
(``kernel.scan`` per chunk) and once through the lowered physical
tree (``PhysicalPlan.execute_chunk``) over the selective suite,
asserting the tree stays within 1.1x, plus result-digest parity on
all three scan backends; ``BENCH_operators.json`` records the
latency / parity verdicts.

Every recorded experiment additionally folds in the
vectorized-vs-iterator kernel digest-parity sweep
(``kernel_parity_ok``), so ``tools/bench_report.py --strict`` fails
on any kernel divergence regardless of which experiment surfaced it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import (
    compaction_records,
    compressed_scan_records,
    kernel_parity_records,
    materialized_view_records,
    operator_tree_records,
    parallel_scaling,
    parallel_scaling_records,
    selective_scan_records,
    service_cache_records,
    set_default_seed,
    shard_append_records,
)
from repro.bench.report_runner import resolve_experiments, run_and_print


def kernel_parity(scale: int, chunk_rows: int = 1024) -> dict:
    """The vectorized-vs-iterator digest-parity sweep every recorded
    experiment folds into its payload (``kernel_parity_ok``), printed
    as one verdict line."""
    sweep = kernel_parity_records(scale=scale, chunk_rows=chunk_rows)
    ok = sweep["kernel_parity_ok"]
    print(f"  kernel parity (vectorized vs iterator, "
          f"{len(sweep['kernel_parity'])} queries): "
          f"{'OK' if ok else 'MISMATCH'}")
    return sweep


def jobs_sweep(max_jobs: int) -> tuple[int, ...]:
    """Worker counts to measure: doubling from 1 up to ``max_jobs``."""
    counts = [1]
    while counts[-1] * 2 <= max_jobs:
        counts.append(counts[-1] * 2)
    if counts[-1] != max_jobs:
        counts.append(max_jobs)
    return tuple(counts)


def run_parallel(max_jobs: int, seed: int, out: Path) -> None:
    """Run the parallel-scaling sweep (all backends, on-disk mmap
    tables) plus the selective-scan experiment and record
    BENCH_parallel.json."""
    import os
    sweep = jobs_sweep(max_jobs)
    report = parallel_scaling(jobs_counts=sweep)
    print()
    print(report.to_text())
    selective = selective_scan_records(jobs_counts=sweep)
    base = next(r["seconds"] for r in selective
                if r["backend"] == "processes" and r["jobs"] == 1)
    print("\nselective scan (on-disk mmap table):")
    for record in selective:
        print(f"  {record['backend']:<10} jobs={record['jobs']}  "
              f"{record['seconds']:.4f}s")
    best = min((r for r in selective if r["backend"] == "processes"),
               key=lambda r: r["seconds"])
    print(f"  processes best: jobs={best['jobs']} "
          f"x{base / best['seconds']:.2f} vs jobs=1 "
          f"({os.cpu_count()} cpus visible)")
    payload = {
        "experiment": "parallel_scaling",
        "seed": seed,
        "jobs": list(sweep),
        "cpus": os.cpu_count(),
        "records": parallel_scaling_records(report),
        "selective_scan": selective,
        **kernel_parity(scale=4),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[parallel results written to {out}]")


def run_compressed(seed: int, out: Path, scale: int = 8,
                   chunk_rows: int = 1024, repeat: int = 5) -> None:
    """Run the compressed-vs-decoded scan experiment and record
    BENCH_compressed.json (timings + pruning counters + parity)."""
    records = compressed_scan_records(scale=scale, chunk_rows=chunk_rows,
                                      repeat=repeat, jobs=1)
    by_query: dict[str, dict[str, dict]] = {}
    for record in records:
        by_query.setdefault(record["query"], {})[record["scan_mode"]] \
            = record
    parity_ok = all(
        modes["decoded"]["result_digest"]
        == modes["compressed"]["result_digest"]
        for modes in by_query.values())
    summary = []
    print("\ncompressed-domain scans vs decoded (jobs=1):")
    for qname, modes in by_query.items():
        dec, com = modes["decoded"], modes["compressed"]
        speedup = (dec["seconds"] / com["seconds"]
                   if com["seconds"] else None)
        summary.append({
            "query": qname,
            "selective": com["selective"],
            "speedup": round(speedup, 3) if speedup else None,
            "chunks_pruned_compressed": com["chunks_pruned"],
            "chunks_pruned_decoded": dec["chunks_pruned"],
        })
        print(f"  {qname:<14} decoded {dec['seconds']:.5f}s "
              f"(pruned {dec['chunks_pruned']}/{dec['chunks_total']})  "
              f"compressed {com['seconds']:.5f}s "
              f"(pruned {com['chunks_pruned']}/{com['chunks_total']})  "
              f"x{speedup:.2f}")
    selective_ok = all(
        s["speedup"] is not None and s["speedup"] > 1.0
        and s["chunks_pruned_compressed"] > 0
        for s in summary if s["selective"])
    print(f"  parity: {'OK' if parity_ok else 'MISMATCH'}; "
          f"selective queries beat decoded: "
          f"{'yes' if selective_ok else 'NO'}")
    payload = {
        "experiment": "compressed_scan",
        "seed": seed,
        "scale": scale,
        "chunk_rows": chunk_rows,
        "jobs": 1,
        "records": records,
        "summary": summary,
        "parity_ok": parity_ok,
        "selective_ok": selective_ok,
        **kernel_parity(scale, chunk_rows),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[compressed-scan results written to {out}]")


def run_service(seed: int, out: Path, scale: int = 8,
                chunk_rows: int = 1024, repeat: int = 5) -> None:
    """Run the query-service cache experiment (cold admission vs
    result-cache hit, digest parity against the direct engine) and
    record BENCH_service.json."""
    records = service_cache_records(scale=scale, chunk_rows=chunk_rows,
                                    repeat=repeat)
    parity_ok = all(r["digest_parity"] for r in records)
    speedup_ok = all(r["speedup"] is not None and r["speedup"] >= 10.0
                     for r in records)
    print("\nquery-service result cache (cold miss vs cached hit):")
    for record in records:
        print(f"  {record['query']:<16} cold {record['cold_seconds']:.5f}s"
              f"  cached {record['warm_seconds']:.6f}s"
              f"  x{record['speedup']:.0f}"
              f"  [{record['warm_disposition']}]")
    print(f"  digest parity: {'OK' if parity_ok else 'MISMATCH'}; "
          f"cached >= 10x cold: {'yes' if speedup_ok else 'NO'}")
    payload = {
        "experiment": "service_cache",
        "seed": seed,
        "scale": scale,
        "chunk_rows": chunk_rows,
        "records": records,
        "parity_ok": parity_ok,
        "speedup_ok": speedup_ok,
        **kernel_parity(scale, chunk_rows),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[service-cache results written to {out}]")


def run_serve_http(seed: int, out: Path, scale: int = 4,
                   chunk_rows: int = 1024,
                   concurrency: tuple[int, ...] = (1, 16, 64),
                   requests_per_worker: int = 4) -> None:
    """Run the HTTP serving-tier gauntlet (latency sweep at several
    client concurrencies with the result cache on/off, the
    load-shedding burst, the graceful-drain witness) and record
    BENCH_http.json."""
    from repro.bench.http_load import serve_http_records

    payload = serve_http_records(scale=scale, chunk_rows=chunk_rows,
                                 concurrency=concurrency,
                                 requests_per_worker=requests_per_worker)
    print("\nHTTP serving tier under load:")
    for r in payload["records"]:
        print(f"  clients={r['concurrency']:<3} cache={r['cache']:<4}"
              f" p50 {r['p50_seconds']:.5f}s  p99 {r['p99_seconds']:.5f}s"
              f"  {r['throughput_rps']:.0f} req/s"
              f"  {'OK' if r['digest_parity'] else 'MISMATCH'}")
    shed, drain = payload["shed"], payload["drain"]
    print(f"  shed burst: {shed['shed_429']}/{shed['burst']} got 429 "
          f"({', '.join(f'{k}={v}' for k, v in shed['reasons'].items())}"
          f"), Retry-After honest: "
          f"{'yes' if shed['retry_after_ok'] else 'NO'}")
    print(f"  drain: {drain['completed']}/{drain['inflight_target']} "
          f"in-flight completed, listener refused after: "
          f"{'yes' if drain['refused_after_drain'] else 'NO'}")
    print(f"  parity: {'OK' if payload['parity_ok'] else 'MISMATCH'}; "
          f"shedding honest: {'yes' if payload['shed_ok'] else 'NO'}; "
          f"drain clean: {'yes' if payload['drain_ok'] else 'NO'}")
    payload = {
        "experiment": "serve_http",
        "seed": seed,
        **payload,
        **kernel_parity(scale, chunk_rows),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[serve-http results written to {out}]")


def run_shards(seed: int, out: Path, scale: int = 4,
               n_batches: int = 4, chunk_rows: int = 1024) -> None:
    """Run the sharded append-vs-rewrite experiment and record
    BENCH_shards.json (per-batch ingestion cost, scan parity between
    the sharded table and a single file of the same data, and
    per-shard pruning counters)."""
    payload = shard_append_records(scale=scale, n_batches=n_batches,
                                   chunk_rows=chunk_rows)
    print("\nsharded append vs full rewrite:")
    for step in payload["steps"]:
        print(f"  batch {step['step']}: append "
              f"{step['append_seconds']:.4f}s "
              f"({step['append_bytes']:,}B new)  rewrite "
              f"{step['rewrite_seconds']:.4f}s "
              f"({step['rewrite_bytes']:,}B total)  "
              f"x{step['speedup']:.2f}")
    parity_ok = all(p["digest_parity"] for p in payload["parity"])
    last = payload["steps"][-1]
    # Bytes are the deterministic O(new data) witness: the last append
    # writes one batch's shard while the rewrite re-encodes the whole
    # table. Wall-clock speedup is recorded too but can be noisy on
    # tiny smoke datasets.
    append_ok = (last["append_bytes"] < last["rewrite_bytes"]
                 and last["speedup"] is not None)
    pruning = payload["pruning"]
    print(f"  parity: {'OK' if parity_ok else 'MISMATCH'}; last append "
          f"wrote {last['append_bytes']:,}B vs {last['rewrite_bytes']:,}B "
          f"rewrite; pruning [{pruning['query']}]: "
          f"{pruning['chunks_pruned']}/{pruning['chunks_total']} chunks "
          f"pruned over {pruning['shards_total']} shards")
    payload = {
        "experiment": "shard_append",
        "seed": seed,
        **payload,
        "parity_ok": parity_ok,
        "append_ok": append_ok,
        **kernel_parity(scale, chunk_rows),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[shard-append results written to {out}]")


def run_views(seed: int, out: Path, scale: int = 4,
              n_batches: int = 4, chunk_rows: int = 1024) -> None:
    """Run the materialized-view serving experiment and record
    BENCH_views.json (per-append refresh/serve stats, the flat-latency
    witness, and digest parity against direct execution on every scan
    backend)."""
    payload = materialized_view_records(scale=scale, n_batches=n_batches,
                                        chunk_rows=chunk_rows)
    print("\nmaterialized view serve vs direct execution:")
    for step in payload["steps"]:
        print(f"  append {step['step']}: refresh scanned "
              f"{step['shards_new']}/{step['shards_total']} shards  "
              f"serve {step['serve_seconds']:.5f}s  "
              f"direct {step['direct_seconds']:.5f}s  "
              f"({step['rows_total']} rows)")
    first, last = (payload["first_serve_seconds"],
                   payload["last_serve_seconds"])
    print(f"  backends: " + ", ".join(
        f"{name} {'OK' if rec['parity'] else 'MISMATCH'}"
        for name, rec in payload["backends"].items()))
    print(f"  parity: {'OK' if payload['parity_ok'] else 'MISMATCH'}; "
          f"refresh incremental: "
          f"{'yes' if payload['refresh_ok'] else 'NO'}; "
          f"serve flat (last {last:.5f}s vs first {first:.5f}s): "
          f"{'yes' if payload['flat_ok'] else 'NO'}")
    payload = {
        "experiment": "materialized_views",
        "seed": seed,
        **payload,
        **kernel_parity(scale, chunk_rows),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[materialized-view results written to {out}]")


def run_compaction(seed: int, out: Path, scale: int = 4,
                   n_batches: int = 6, chunk_rows: int = 1024) -> None:
    """Run the shard-compaction experiment and record
    BENCH_compaction.json (pre/post/single-file latency per query,
    digest parity, version-token survival, and the O(new data) append
    witness)."""
    payload = compaction_records(scale=scale, n_batches=n_batches,
                                 chunk_rows=chunk_rows)
    print("\nshard compaction: many small shards -> one file:")
    last = payload["steps"][-1]
    print(f"  {payload['n_shards_pre']} shards appended (last append "
          f"{last['append_bytes']:,}B vs {payload['single_bytes']:,}B "
          f"single file); compacted to {payload['n_shards_post']} in "
          f"{payload['compact_seconds']:.4f}s (generation "
          f"{payload['generation_pre']} -> "
          f"{payload['generation_post']}; GC with the old snapshot "
          f"pinned: {len(payload['gc_while_pinned'])} file(s), after "
          f"release: {len(payload['gc_after_refresh'])})")
    for p in payload["parity"]:
        print(f"  {p['query']}: pre {p['seconds_pre']:.5f}s  post "
              f"{p['seconds_post']:.5f}s  single "
              f"{p['seconds_single']:.5f}s  "
              f"(x{p['recovery_ratio']:.2f} of single)  "
              f"{'OK' if p['digest_parity'] else 'MISMATCH'}")
    print(f"  token survives compaction: "
          f"{'yes' if payload['token_ok'] else 'NO'} (warm service "
          f"call: {payload['warm_disposition']}); parity: "
          f"{'OK' if payload['parity_ok'] else 'MISMATCH'}; latency "
          f"recovered: {'yes' if payload['recovery_ok'] else 'NO'}")
    payload = {
        "experiment": "compaction",
        "seed": seed,
        **payload,
        **kernel_parity(scale, chunk_rows),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[compaction results written to {out}]")


def run_operators(seed: int, out: Path, scale: int = 4,
                  chunk_rows: int = 1024, repeat: int = 5) -> None:
    """Run the operator-tree regression experiment and record
    BENCH_operators.json (lowered-tree vs flat-kernel-loop latency on
    the selective suite, three-backend digest parity, and the kernel
    parity sweep)."""
    payload = operator_tree_records(scale=scale, chunk_rows=chunk_rows,
                                    repeat=repeat)
    print("\noperator-tree execution vs flat kernel loop:")
    for record in payload["records"]:
        print(f"  {record['query']:<14} flat "
              f"{record['flat_seconds']:.5f}s  tree "
              f"{record['tree_seconds']:.5f}s  "
              f"x{record['ratio']:.3f}  "
              f"{'OK' if record['parity'] else 'MISMATCH'}")
    print(f"  tree within 1.1x of flat loop: "
          f"{'yes' if payload['latency_ok'] else 'NO'}; "
          f"backend parity: "
          f"{'OK' if payload['parity_ok'] else 'MISMATCH'}")
    payload = {
        "experiment": "operator_tree",
        "seed": seed,
        **payload,
        **kernel_parity(scale, chunk_rows),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[operator-tree results written to {out}]")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the paper's figure experiments")
    parser.add_argument("names", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="largest worker count in the parallel "
                             "scaling sweep (default 4)")
    parser.add_argument("--seed", type=int, default=7,
                        help="dataset generator seed (default 7)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_parallel.json",
                        help="where the parallel experiment records its "
                             "timings")
    parser.add_argument("--compressed-out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_compressed.json",
                        help="where the compressed-scan experiment "
                             "records its timings")
    parser.add_argument("--service-out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_service.json",
                        help="where the service-cache experiment "
                             "records its timings")
    parser.add_argument("--http-out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_http.json",
                        help="where the HTTP serving-tier experiment "
                             "records its timings")
    parser.add_argument("--shards-out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_shards.json",
                        help="where the shard-append experiment "
                             "records its timings")
    parser.add_argument("--views-out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_views.json",
                        help="where the materialized-view experiment "
                             "records its timings")
    parser.add_argument("--compaction-out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_compaction.json",
                        help="where the shard-compaction experiment "
                             "records its timings")
    parser.add_argument("--operators-out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_operators.json",
                        help="where the operator-tree experiment "
                             "records its timings")
    parser.add_argument("--scale", type=int, default=None,
                        help="override the dataset scale of the "
                             "compressed/service experiments (smoke "
                             "runs use a small value)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    set_default_seed(args.seed)

    selected, unknown = resolve_experiments(args.names)
    if unknown:
        from repro.bench.experiments import EXPERIMENTS
        print(f"unknown experiments: {unknown}; "
              f"available: {list(EXPERIMENTS)}")
        return 2
    recorded = ("parallel", "compressed", "service", "serve_http",
                "shards", "views", "compaction", "operators")
    figures = [n for n in selected if n not in recorded]
    if figures:
        code = run_and_print(figures)
        if code:
            return code
    if "parallel" in selected:
        run_parallel(args.jobs, args.seed, args.out)
    if "compressed" in selected:
        run_compressed(args.seed, args.compressed_out,
                       **({"scale": args.scale} if args.scale else {}))
    if "service" in selected:
        run_service(args.seed, args.service_out,
                    **({"scale": args.scale} if args.scale else {}))
    if "serve_http" in selected:
        run_serve_http(args.seed, args.http_out,
                       **({"scale": args.scale} if args.scale else {}))
    if "shards" in selected:
        run_shards(args.seed, args.shards_out,
                   **({"scale": args.scale} if args.scale else {}))
    if "views" in selected:
        run_views(args.seed, args.views_out,
                  **({"scale": args.scale} if args.scale else {}))
    if "compaction" in selected:
        run_compaction(args.seed, args.compaction_out,
                       **({"scale": args.scale} if args.scale else {}))
    if "operators" in selected:
        run_operators(args.seed, args.operators_out,
                      **({"scale": args.scale} if args.scale else {}))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
