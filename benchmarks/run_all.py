"""Regenerate every figure of the paper's evaluation as text reports.

Usage::

    python benchmarks/run_all.py                    # everything
    python benchmarks/run_all.py fig11 fig08        # selected experiments
    python benchmarks/run_all.py parallel --jobs 8  # parallel scaling only

The reports print the same rows/series the paper plots; EXPERIMENTS.md
records paper-vs-measured shape for each. Absolute numbers differ from
the paper (pure Python + synthetic data at ~1/1000 size); orderings,
slopes and crossovers are the reproduction target.

The ``parallel`` experiment sweeps the chunk pipeline's worker count and
additionally records its timings (with speedups, the seed, and the jobs
sweep) in ``BENCH_parallel.json`` so the numbers are reproducible:
``--seed`` pins the dataset generator, ``--jobs`` sets the largest
worker count measured.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import (
    parallel_scaling,
    parallel_scaling_records,
    set_default_seed,
)
from repro.bench.report_runner import resolve_experiments, run_and_print


def jobs_sweep(max_jobs: int) -> tuple[int, ...]:
    """Worker counts to measure: doubling from 1 up to ``max_jobs``."""
    counts = [1]
    while counts[-1] * 2 <= max_jobs:
        counts.append(counts[-1] * 2)
    if counts[-1] != max_jobs:
        counts.append(max_jobs)
    return tuple(counts)


def run_parallel(max_jobs: int, seed: int, out: Path) -> None:
    """Run the parallel-scaling sweep and record BENCH_parallel.json."""
    sweep = jobs_sweep(max_jobs)
    report = parallel_scaling(jobs_counts=sweep)
    print()
    print(report.to_text())
    payload = {
        "experiment": "parallel_scaling",
        "seed": seed,
        "jobs": list(sweep),
        "records": parallel_scaling_records(report),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[parallel results written to {out}]")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the paper's figure experiments")
    parser.add_argument("names", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="largest worker count in the parallel "
                             "scaling sweep (default 4)")
    parser.add_argument("--seed", type=int, default=7,
                        help="dataset generator seed (default 7)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_parallel.json",
                        help="where the parallel experiment records its "
                             "timings")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    set_default_seed(args.seed)

    selected, unknown = resolve_experiments(args.names)
    if unknown:
        from repro.bench.experiments import EXPERIMENTS
        print(f"unknown experiments: {unknown}; "
              f"available: {list(EXPERIMENTS)}")
        return 2
    figures = [n for n in selected if n != "parallel"]
    if figures:
        code = run_and_print(figures)
        if code:
            return code
    if "parallel" in selected:
        run_parallel(args.jobs, args.seed, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
