"""Execution of mixed cohort + SQL statements (Section 3.5).

The :class:`MixedEngine` owns a COHANA engine (for activity tables and
cohort sub-queries) and a relational database (for the outer SQL). A
mixed statement is evaluated "cohort query first": every cohort
sub-query runs on COHANA, its result relation is registered under the
WITH name, and only then does the outer SQL run — so no SQL operation can
accidentally drop birth activity tuples.
"""

from __future__ import annotations

from repro.errors import BindError, CatalogError
from repro.cohana.engine import CohanaEngine
from repro.mixed.parser import split_mixed
from repro.relational.database import Database
from repro.relational.rows import RelTable
from repro.storage.writer import DEFAULT_CHUNK_ROWS
from repro.table import ActivityTable


class MixedEngine:
    """Evaluates mixed statements over registered activity tables.

    Args:
        executor: relational executor for the outer SQL
            ('columnar' default, or 'rows').
        cohana_executor: COHANA executor for cohort sub-queries.
    """

    def __init__(self, executor: str = "columnar",
                 cohana_executor: str = "vectorized"):
        self.cohana = CohanaEngine()
        self._sql_executor = executor
        self._cohana_executor = cohana_executor
        self._activity_tables: dict[str, ActivityTable] = {}

    # -- catalog ---------------------------------------------------------------

    def create_table(self, name: str, table: ActivityTable,
                     target_chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        """Register an activity table for both engines."""
        self.cohana.create_table(name, table,
                                 target_chunk_rows=target_chunk_rows)
        self._activity_tables[name] = table

    def tables(self) -> list[str]:
        return sorted(self._activity_tables)

    # -- execution ----------------------------------------------------------------

    def execute(self, text: str, age_unit: str = "day",
                time_bin_origin: int = 0) -> RelTable:
        """Run a mixed statement and return the outer SQL's result."""
        statement = split_mixed(text)
        db = Database(executor=self._sql_executor)
        for name, table in self._activity_tables.items():
            db.register_activity_table(name, table)
        for name, cohort_text in statement.cohort_subqueries.items():
            self._check_cohort_sources(cohort_text, statement)
            result = self.cohana.query(
                self.cohana.parse(cohort_text, age_unit=age_unit,
                                  time_bin_origin=time_bin_origin),
                executor=self._cohana_executor)
            try:
                db.register(name, RelTable(result.columns, result.rows))
            except CatalogError:
                raise BindError(
                    f"WITH name {name!r} shadows a registered activity "
                    f"table") from None
        return db.execute(statement.sql_text)

    def _check_cohort_sources(self, cohort_text: str,
                              statement) -> None:
        """Enforce: cohort sub-queries read base activity tables only."""
        from repro.cohana.parser import parse_cohort_query
        parsed = parse_cohort_query(cohort_text)
        if parsed.table in statement.cohort_subqueries:
            raise BindError(
                f"cohort sub-query reads {parsed.table!r}, which is "
                "another sub-query; cohort sub-queries may only read "
                "base activity tables (Section 3.5)")
        if parsed.table not in self._activity_tables:
            raise BindError(
                f"cohort sub-query reads unknown activity table "
                f"{parsed.table!r}; have {self.tables()}")
