"""Mixed cohort + SQL querying (the paper's Section 3.5 extension)."""

from repro.mixed.engine import MixedEngine
from repro.mixed.parser import MixedStatement, is_cohort_query, split_mixed

__all__ = ["MixedEngine", "MixedStatement", "is_cohort_query",
           "split_mixed"]
