"""Parsing mixed cohort + SQL statements (Section 3.5).

A *mixed query* encapsulates cohort queries as WITH sub-queries of an
outer SQL query::

    WITH cohorts AS (
        SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
        FROM GameActions
        BIRTH FROM action = "launch"
        COHORT BY country
    )
    SELECT country, age, spent FROM cohorts
    WHERE country IN ('Australia', 'China')

The splitter walks the WITH list, classifies each entry as a cohort
sub-query (it contains a ``BIRTH FROM`` clause) or a plain SQL
sub-query, and enforces the paper's composition rules:

* the outermost query must be SQL (cohort queries only as sub-queries);
* a cohort sub-query may only read a base activity table — never another
  sub-query (cohort sub-queries are evaluated first, so nothing they
  reference may depend on SQL results).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common import SYMBOL, Token, TokenStream, tokenize
from repro.errors import ParseError

_BIRTH_FROM = re.compile(r"\bBIRTH\s+FROM\b", re.IGNORECASE)


@dataclass
class MixedStatement:
    """A split mixed query.

    Attributes:
        cohort_subqueries: name -> cohort query text, in WITH order.
        sql_text: the outer statement, with plain-SQL WITH entries
            preserved and cohort entries removed (they become registered
            tables before the SQL runs).
    """

    cohort_subqueries: dict[str, str] = field(default_factory=dict)
    sql_text: str = ""


def is_cohort_query(text: str) -> bool:
    """A (sub-)query is a cohort query iff it has a BIRTH FROM clause."""
    return _BIRTH_FROM.search(text) is not None


def split_mixed(text: str) -> MixedStatement:
    """Split a mixed statement into cohort sub-queries + outer SQL.

    Raises:
        ParseError: if the outermost query is a cohort query, a WITH name
            repeats, or parentheses are unbalanced.
    """
    tokens = tokenize(text)
    stream = TokenStream(tokens)
    statement = MixedStatement()
    if not stream.peek_is_keyword("WITH"):
        if is_cohort_query(text):
            raise ParseError(
                "the outermost query of a mixed statement must be a SQL "
                "query; wrap the cohort query in WITH <name> AS (...) "
                "(Section 3.5)")
        statement.sql_text = text.strip()
        return statement

    stream.next()  # WITH
    kept_ctes: list[tuple[str, str]] = []
    seen: set[str] = set()
    while True:
        name = stream.expect_ident().text
        if name in seen:
            raise ParseError(f"duplicate WITH name {name!r}")
        seen.add(name)
        stream.expect_keyword("AS")
        open_paren = stream.expect_symbol("(")
        body = _consume_parenthesized(text, stream, open_paren)
        if is_cohort_query(body):
            statement.cohort_subqueries[name] = body.strip()
        else:
            kept_ctes.append((name, body.strip()))
        if not stream.accept_symbol(","):
            break
    outer = text[stream.peek().position:].strip()
    if not outer:
        raise ParseError("missing outer SQL query after WITH clause")
    if is_cohort_query(outer):
        raise ParseError(
            "the outermost query of a mixed statement must be a SQL "
            "query (Section 3.5)")
    if kept_ctes:
        rendered = ", ".join(f"{name} AS ({body})"
                             for name, body in kept_ctes)
        outer = f"WITH {rendered} {outer}"
    statement.sql_text = outer
    return statement


def _consume_parenthesized(text: str, stream: TokenStream,
                           open_paren: Token) -> str:
    """Consume a balanced parenthesized region and return its body text.

    ``stream`` is positioned just after the opening parenthesis; on
    return it is positioned just after the matching closer.
    """
    depth = 1
    start = open_paren.position + 1
    while depth > 0:
        token = stream.next()
        if token.kind == "END":
            raise ParseError("unbalanced parentheses in WITH clause",
                             open_paren.position)
        if token.kind == SYMBOL and token.text == "(":
            depth += 1
        elif token.kind == SYMBOL and token.text == ")":
            depth -= 1
    return text[start:token.position]
