"""The paper's scale-factor construction (Section 5.1).

"Given a scale factor X, we produce a dataset consisting of X times
users. Each user has the same activity tuples as the original dataset
except with a different user attribute." Replication is vectorized: each
copy renames every user with a ``#<copy>`` suffix, so primary keys stay
unique and per-user behaviour is bit-identical across copies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.table import ActivityTable


def scale_dataset(table: ActivityTable, factor: int) -> ActivityTable:
    """Produce the scale-``factor`` version of ``table``.

    Scale 1 returns the input unchanged. The result preserves the
    primary-key sort order because copies are appended user-block wise
    with suffixed names that keep the original ordering within a copy.
    """
    if factor < 1:
        raise QueryError(f"scale factor must be >= 1, got {factor}")
    if factor == 1:
        return table
    n = len(table)
    columns: dict[str, np.ndarray] = {}
    for name in table.schema.names():
        src = table.column(name)
        if name == table.schema.user.name:
            parts = []
            for copy in range(factor):
                suffixed = np.empty(n, dtype=object)
                for i in range(n):
                    suffixed[i] = f"{src[i]}#{copy}"
                parts.append(suffixed)
            columns[name] = np.concatenate(parts)
        else:
            columns[name] = np.tile(src, factor)
    scaled = ActivityTable(table.schema, columns)
    return scaled.sorted_by_primary_key()
