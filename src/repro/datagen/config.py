"""Configuration and vocabularies for the synthetic mobile-game workload.

The paper's dataset: 30M tuples from 57,077 players, 2013-05-19 to
2013-06-26 (39 days), 16 actions (including the three birth actions
``launch``, ``shop``, ``achievement``), dimensions country / city / role
and measures session length / gold. The defaults here generate the same
shape at roughly 1/1000 of the user population so the pure-Python
benchmark suite finishes; ``n_users`` scales it up or down freely, and
:func:`repro.datagen.scale_dataset` applies the paper's scale-factor
construction on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema import ActivitySchema, LogicalType, parse_timestamp

#: The 16 in-game actions; the first is always a user's first action.
ACTIONS = (
    "launch", "shop", "achievement", "fight", "quest", "chat",
    "trade", "upgrade", "craft", "guild", "pvp", "explore",
    "daily", "gift", "tutorial", "logout",
)

#: Birth actions used throughout the paper's benchmark queries.
BIRTH_ACTIONS = ("launch", "shop", "achievement")

COUNTRIES = (
    "China", "United States", "Australia", "Japan", "Korea", "Germany",
    "France", "Brazil", "India", "Russia", "United Kingdom", "Canada",
    "Singapore", "Vietnam", "Thailand", "Mexico", "Italy", "Spain",
    "Netherlands", "Sweden", "Norway", "Poland", "Turkey", "Egypt",
    "Nigeria", "Kenya", "Chile", "Peru", "Argentina", "Indonesia",
)

#: Cities are generated as "<country> City <i>" — 4 per country.
CITIES_PER_COUNTRY = 4

ROLES = ("dwarf", "wizard", "assassin", "bandit", "knight", "ranger")


def game_schema() -> ActivitySchema:
    """The activity schema of the paper's dataset."""
    return ActivitySchema.build(
        user="player", time="time", action="action",
        dimensions={"country": LogicalType.STRING,
                    "city": LogicalType.STRING,
                    "role": LogicalType.STRING},
        measures={"session_length": LogicalType.INT,
                  "gold": LogicalType.INT},
    )


@dataclass(frozen=True)
class GameConfig:
    """Knobs of the synthetic workload.

    Attributes:
        n_users: players at scale 1 (the paper has 57,077; default 57).
        n_days: length of the observation window.
        start: first day of the window.
        seed: RNG seed — generation is fully deterministic.
        sessions_per_day: mean sessions on a player's birth day.
        events_per_session: mean non-launch events per session.
        retention_tau: e-folding of the aging decay, in days.
        social_change: how much each later birth week slows the decay
            (the "iterative game development" effect behind Table 3).
        base_gold: mean gold per shop event at age 1 for week-0 cohorts.
    """

    n_users: int = 57
    n_days: int = 39
    start: str = "2013-05-19"
    seed: int = 7
    sessions_per_day: float = 1.1
    events_per_session: float = 2.2
    retention_tau: float = 9.0
    social_change: float = 0.35
    base_gold: float = 60.0

    @property
    def start_epoch(self) -> int:
        return parse_timestamp(self.start)

    def __post_init__(self):
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
