"""The synthetic mobile-game activity generator.

Behavioral model (one player):

* born on a day drawn from the app-launch-spike distribution; the very
  first tuple is a ``launch`` (matching the paper's observation that
  every player's first action is launch);
* on each subsequent day the player opens sessions at a Poisson rate that
  decays with age (*aging*) but decays more slowly for later cohorts
  (*social change* — the paper's Table 3 insight);
* each session starts with a ``launch`` carrying a ``session_length``
  measure and continues with a few non-launch events;
* ``shop`` events carry ``gold`` whose mean declines with age and is
  higher for later cohorts;
* country/city/role are fixed per player except the role, which the
  player may re-pick mid-life (so ``Birth(role)`` filters are
  non-trivial, as with player 001 in Table 1).

Everything is drawn from one seeded generator: the same config always
produces the identical table.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.config import (
    ACTIONS,
    CITIES_PER_COUNTRY,
    COUNTRIES,
    GameConfig,
    ROLES,
    game_schema,
)
from repro.datagen.distributions import (
    aging_activity,
    birth_day_weights,
    zipf_weights,
)
from repro.table import ActivityTable

_DAY = 86400

#: Relative frequency of non-launch events within a session.
_EVENT_ACTIONS = tuple(a for a in ACTIONS if a != "launch")
_EVENT_WEIGHTS = np.array(
    [3.0 if a == "shop" else 1.5 if a in ("fight", "quest", "chat")
     else 0.6 for a in _EVENT_ACTIONS])
_EVENT_WEIGHTS = _EVENT_WEIGHTS / _EVENT_WEIGHTS.sum()


def generate(config: GameConfig | None = None) -> ActivityTable:
    """Generate the scale-1 activity table for ``config``."""
    if config is None:
        config = GameConfig()
    rng = np.random.default_rng(config.seed)
    schema = game_schema()
    columns: dict[str, list] = {name: [] for name in schema.names()}

    country_w = zipf_weights(len(COUNTRIES))
    day_w = birth_day_weights(config.n_days)
    width = max(5, len(str(config.n_users)))
    for i in range(config.n_users):
        player = f"p{i:0{width}d}"
        _generate_player(rng, config, player, country_w, day_w, columns)
    table = ActivityTable(schema, {k: _as_arr(v, schema.column(k))
                                   for k, v in columns.items()})
    return table.sorted_by_primary_key()


def _generate_player(rng, config: GameConfig, player: str,
                     country_w, day_w, columns) -> None:
    country = COUNTRIES[rng.choice(len(COUNTRIES), p=country_w)]
    city = f"{country} City {rng.integers(1, CITIES_PER_COUNTRY + 1)}"
    role = ROLES[rng.choice(len(ROLES), p=zipf_weights(len(ROLES)))]
    birth_day = int(rng.choice(config.n_days, p=day_w))
    cohort_week = birth_day // 7
    used_times: set[tuple[int, str]] = set()

    def emit(second: int, action: str, session_length: int,
             gold: int) -> None:
        # enforce the (user, time, action) primary key
        while (second, action) in used_times:
            second += 1
        used_times.add((second, action))
        columns["player"].append(player)
        columns["time"].append(config.start_epoch + second)
        columns["action"].append(action)
        columns["country"].append(country)
        columns["city"].append(city)
        columns["role"].append(role)
        columns["session_length"].append(session_length)
        columns["gold"].append(gold)

    def session(day: int, age: float) -> None:
        nonlocal role
        start = day * _DAY + int(rng.integers(6 * 3600, 23 * 3600))
        length = max(1, int(rng.gamma(2.0, 6.0)))
        emit(start, "launch", length, 0)
        n_events = rng.poisson(config.events_per_session)
        second = start
        for _ in range(n_events):
            second += int(rng.integers(30, 900))
            action = _EVENT_ACTIONS[rng.choice(len(_EVENT_ACTIONS),
                                               p=_EVENT_WEIGHTS)]
            gold = 0
            if action == "shop":
                level = aging_activity(age, config.retention_tau,
                                       cohort_week, config.social_change)
                social = 1.0 + 0.5 * cohort_week
                gold = max(1, int(rng.normal(
                    config.base_gold * float(level) * social,
                    config.base_gold * 0.15)))
            if action == "upgrade" and rng.random() < 0.1:
                # mid-life role change (makes Birth(role) non-trivial)
                role = ROLES[int(rng.integers(len(ROLES)))]
            emit(second, action, 0, gold)

    # Birth-day session plus the aging-governed tail of the lifetime.
    session(birth_day, 0.0)
    for day in range(birth_day + 1, config.n_days):
        age = float(day - birth_day)
        level = aging_activity(age, config.retention_tau, cohort_week,
                               config.social_change)
        for _ in range(rng.poisson(config.sessions_per_day * level)):
            session(day, age)


def _as_arr(values: list, spec) -> np.ndarray:
    dtype = spec.ltype.numpy_dtype()
    if dtype == object:
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr
    return np.asarray(values, dtype=dtype)
