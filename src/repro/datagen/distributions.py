"""Sampling helpers for the workload generator."""

from __future__ import annotations

import numpy as np


def zipf_weights(n: int, s: float = 1.1) -> np.ndarray:
    """Normalized Zipf weights over ``n`` ranks (rank 1 most popular).

    Real player populations are heavily skewed by country/city; a Zipf
    with a mild exponent reproduces that skew without starving the tail.
    """
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


def birth_day_weights(n_days: int, tau: float = 18.0) -> np.ndarray:
    """Birth-day distribution over the observation window.

    Exponentially more players are born early (an app-launch spike that
    tapers off), which produces a birth CDF with the concave shape the
    paper's Figure 8 plots against query time.
    """
    days = np.arange(n_days, dtype=np.float64)
    weights = np.exp(-days / tau)
    return weights / weights.sum()


def aging_activity(age_days: np.ndarray | float, tau: float,
                   cohort_week: int, social_change: float):
    """Relative activity level at a given age (the aging effect).

    Activity decays exponentially with age; later cohorts decay slower
    (the social-change effect): the e-folding time is
    ``tau * (1 + social_change * cohort_week)``.
    """
    effective_tau = tau * (1.0 + social_change * cohort_week)
    return np.exp(-np.asarray(age_days, dtype=np.float64) / effective_tau)
