"""Synthetic mobile-game workload (the paper's dataset stand-in)."""

from repro.datagen.config import (
    ACTIONS,
    BIRTH_ACTIONS,
    CITIES_PER_COUNTRY,
    COUNTRIES,
    GameConfig,
    ROLES,
    game_schema,
)
from repro.datagen.distributions import (
    aging_activity,
    birth_day_weights,
    zipf_weights,
)
from repro.datagen.gamegen import generate
from repro.datagen.scaling import scale_dataset

__all__ = [
    "ACTIONS",
    "BIRTH_ACTIONS",
    "CITIES_PER_COUNTRY",
    "COUNTRIES",
    "GameConfig",
    "ROLES",
    "aging_activity",
    "birth_day_weights",
    "game_schema",
    "generate",
    "scale_dataset",
    "zipf_weights",
]
