"""Lowering parsed SQL to logical plans."""

from __future__ import annotations

from typing import Callable

from repro.errors import BindError
from repro.relational.expressions import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Const,
    Expr,
    FuncCall,
    InListExpr,
    UnaryNot,
    contains_aggregate,
)
from repro.relational.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SubqueryScan,
)
from repro.sqlparser.ast import (
    Query,
    SelectItem,
    SelectStmt,
    StarItem,
    SubqueryRef,
    TableRef,
)


class SqlBinder:
    """Binds SQL ASTs against a catalog of base tables.

    Args:
        catalog_columns: maps a base-table name to its column names, or
            None when the table is unknown.
        views: pre-bound plans visible by name in every FROM clause
            (non-materialized views; CTEs shadow them).
    """

    def __init__(self,
                 catalog_columns: Callable[[str], list[str] | None],
                 views: dict[str, LogicalPlan] | None = None):
        self._catalog_columns = catalog_columns
        self._views = dict(views or {})

    def bind(self, query: Query) -> LogicalPlan:
        """Lower a full statement (CTEs first, in order)."""
        ctes: dict[str, LogicalPlan] = dict(self._views)
        for cte in query.ctes:
            if cte.name in ctes and cte.name not in self._views:
                raise BindError(f"duplicate CTE name {cte.name!r}")
            ctes[cte.name] = self._bind_select(cte.select, ctes)
        return self._bind_select(query.select, ctes)

    # -- SELECT ---------------------------------------------------------------

    def _bind_select(self, stmt: SelectStmt,
                     ctes: dict[str, LogicalPlan]) -> LogicalPlan:
        plan = self._bind_from(stmt, ctes)
        if stmt.where is not None:
            plan = Filter(plan, stmt.where)
        has_agg = bool(stmt.group_by) or any(
            isinstance(i, SelectItem) and contains_aggregate(i.expr)
            for i in stmt.items)
        if has_agg:
            plan = self._bind_aggregate(stmt, plan)
        else:
            plan = self._bind_project(stmt, plan)
        if stmt.distinct:
            plan = Distinct(plan)
        if stmt.order_by:
            plan = Sort(plan, [o.expr for o in stmt.order_by],
                        [o.ascending for o in stmt.order_by])
        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit)
        return plan

    def _bind_from(self, stmt: SelectStmt,
                   ctes: dict[str, LogicalPlan]) -> LogicalPlan:
        refs = [self._bind_table_ref(r, ctes) for r in stmt.from_tables]
        plan = refs[0]
        for other in refs[1:]:
            plan = Join(plan, other, None)
        for join in stmt.joins:
            plan = Join(plan, self._bind_table_ref(join.table, ctes),
                        join.on)
        return plan

    def _bind_table_ref(self, ref, ctes) -> LogicalPlan:
        if isinstance(ref, SubqueryRef):
            return SubqueryScan(self._bind_select(ref.select, ctes),
                                ref.alias)
        if isinstance(ref, TableRef):
            if ref.name in ctes:
                return SubqueryScan(ctes[ref.name], ref.alias or ref.name)
            columns = self._catalog_columns(ref.name)
            if columns is None:
                raise BindError(f"unknown table {ref.name!r}")
            return Scan(ref.name, list(columns), ref.alias)
        raise BindError(f"unsupported FROM entry {ref!r}")

    # -- projection -------------------------------------------------------------

    def _bind_project(self, stmt: SelectStmt,
                      plan: LogicalPlan) -> LogicalPlan:
        exprs: list[Expr] = []
        names: list[str] = []
        for item in stmt.items:
            if isinstance(item, StarItem):
                for qualified in plan.output_names():
                    exprs.append(ColumnRef(qualified))
                    names.append(qualified.rpartition(".")[2])
            else:
                exprs.append(item.expr)
                names.append(item.alias or _derive_name(item.expr))
        return Project(plan, exprs, names)

    # -- aggregation ------------------------------------------------------------

    def _bind_aggregate(self, stmt: SelectStmt,
                        plan: LogicalPlan) -> LogicalPlan:
        group_exprs: list[Expr] = []
        group_names: list[str] = []
        for item in stmt.group_by:
            group_exprs.append(item.expr)
            group_names.append(item.alias or _derive_name(item.expr))
        agg_calls: list[FuncCall] = []
        agg_names: list[str] = []

        def allocate(call: FuncCall) -> ColumnRef:
            for existing, name in zip(agg_calls, agg_names):
                if existing == call:
                    return ColumnRef(name)
            name = f"_agg{len(agg_calls)}"
            agg_calls.append(call)
            agg_names.append(name)
            return ColumnRef(name)

        def rewrite(expr: Expr) -> Expr:
            for gexpr, gname in zip(group_exprs, group_names):
                if expr == gexpr:
                    return ColumnRef(gname)
            if isinstance(expr, FuncCall):
                if expr.is_aggregate:
                    return allocate(expr)
                return FuncCall(expr.name,
                                tuple(rewrite(a) for a in expr.args),
                                distinct=expr.distinct)
            if isinstance(expr, ColumnRef):
                base = expr.name.rpartition(".")[2]
                if base in group_names:
                    return ColumnRef(base)
                for gexpr, gname in zip(group_exprs, group_names):
                    if (isinstance(gexpr, ColumnRef)
                            and gexpr.name.rpartition(".")[2] == base):
                        return ColumnRef(gname)
                raise BindError(
                    f"column {expr.name!r} is neither aggregated nor in "
                    "GROUP BY")
            if isinstance(expr, BinaryOp):
                return BinaryOp(expr.op, rewrite(expr.left),
                                rewrite(expr.right))
            if isinstance(expr, UnaryNot):
                return UnaryNot(rewrite(expr.operand))
            if isinstance(expr, BetweenExpr):
                return BetweenExpr(rewrite(expr.operand),
                                   rewrite(expr.low), rewrite(expr.high))
            if isinstance(expr, InListExpr):
                return InListExpr(rewrite(expr.operand), expr.values)
            return expr

        out_exprs: list[Expr] = []
        out_names: list[str] = []
        for item in stmt.items:
            if isinstance(item, StarItem):
                raise BindError("SELECT * cannot be combined with "
                                "aggregation")
            out_exprs.append(rewrite(item.expr))
            out_names.append(item.alias or _derive_name(item.expr))
        agg_plan = Aggregate(plan, group_exprs, group_names, agg_calls,
                             agg_names)
        return Project(agg_plan, out_exprs, out_names)


def _derive_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name.rpartition(".")[2]
    if isinstance(expr, FuncCall):
        text = str(expr)
        return (text.replace("(", "_").replace(")", "")
                .replace("*", "star").replace(", ", "_").replace(" ", "_")
                .lower().rstrip("_"))
    if isinstance(expr, Const):
        return f"const_{expr.value}"
    return "expr"
