"""The SQL subset front end: lexer-backed parser and plan binder."""

from repro.sqlparser.ast import (
    CommonTableExpr,
    GroupItem,
    JoinClause,
    OrderItem,
    Query,
    SelectItem,
    SelectStmt,
    StarItem,
    SubqueryRef,
    TableRef,
)
from repro.sqlparser.binder import SqlBinder
from repro.sqlparser.parser import parse_sql

__all__ = [
    "CommonTableExpr",
    "GroupItem",
    "JoinClause",
    "OrderItem",
    "Query",
    "SelectItem",
    "SelectStmt",
    "SqlBinder",
    "StarItem",
    "SubqueryRef",
    "TableRef",
    "parse_sql",
]
