"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.common import IDENT, NUMBER, STRING, SYMBOL, TokenStream, tokenize
from repro.errors import ParseError
from repro.relational.expressions import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Const,
    Expr,
    FuncCall,
    InListExpr,
    Star,
    UnaryNot,
)
from repro.sqlparser.ast import (
    CommonTableExpr,
    GroupItem,
    JoinClause,
    OrderItem,
    Query,
    SelectItem,
    SelectStmt,
    StarItem,
    SubqueryRef,
    TableRef,
)

_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AS", "AND", "OR",
    "NOT", "BETWEEN", "IN", "JOIN", "ON", "WITH", "LIMIT", "DISTINCT",
    "ASC", "DESC", "HAVING", "UNION", "INNER",
}


def parse_sql(text: str) -> Query:
    """Parse one SQL statement.

    Raises:
        ParseError: on any syntax error or trailing garbage.
    """
    stream = TokenStream(tokenize(text))
    query = _parse_query(stream)
    stream.accept_symbol(";")
    if not stream.at_end():
        token = stream.peek()
        raise ParseError(f"unexpected trailing token {token.text!r}",
                         token.position)
    return query


def _parse_query(stream: TokenStream) -> Query:
    ctes: list[CommonTableExpr] = []
    if stream.accept_keyword("WITH"):
        while True:
            name = stream.expect_ident().text
            stream.expect_keyword("AS")
            stream.expect_symbol("(")
            select = _parse_select(stream)
            stream.expect_symbol(")")
            ctes.append(CommonTableExpr(name, select))
            if not stream.accept_symbol(","):
                break
    select = _parse_select(stream)
    return Query(ctes=ctes, select=select)


def _parse_select(stream: TokenStream) -> SelectStmt:
    stream.expect_keyword("SELECT")
    distinct = bool(stream.accept_keyword("DISTINCT"))
    items = [_parse_select_item(stream)]
    while stream.accept_symbol(","):
        items.append(_parse_select_item(stream))
    stream.expect_keyword("FROM")
    from_tables = [_parse_table_ref(stream)]
    joins: list[JoinClause] = []
    while True:
        if stream.accept_symbol(","):
            from_tables.append(_parse_table_ref(stream))
        elif stream.peek_is_keyword("JOIN") or stream.peek_is_keyword(
                "INNER"):
            stream.accept_keyword("INNER")
            stream.expect_keyword("JOIN")
            table = _parse_table_ref(stream)
            on = None
            if stream.accept_keyword("ON"):
                on = _parse_expr(stream)
            joins.append(JoinClause(table, on))
        else:
            break
    where = None
    if stream.accept_keyword("WHERE"):
        where = _parse_expr(stream)
    group_by: list[GroupItem] = []
    if stream.accept_keyword("GROUP"):
        stream.expect_keyword("BY")
        group_by.append(_parse_group_item(stream))
        while stream.accept_symbol(","):
            group_by.append(_parse_group_item(stream))
    order_by: list[OrderItem] = []
    if stream.accept_keyword("ORDER"):
        stream.expect_keyword("BY")
        order_by.append(_parse_order_item(stream))
        while stream.accept_symbol(","):
            order_by.append(_parse_order_item(stream))
    limit = None
    if stream.accept_keyword("LIMIT"):
        token = stream.next()
        if token.kind != NUMBER:
            raise ParseError("LIMIT expects a number", token.position)
        limit = int(token.text)
    return SelectStmt(items=items, from_tables=from_tables, joins=joins,
                      where=where, group_by=group_by, order_by=order_by,
                      limit=limit, distinct=distinct)


def _parse_select_item(stream: TokenStream):
    if stream.accept_symbol("*"):
        return StarItem()
    expr = _parse_expr(stream)
    alias = None
    if stream.accept_keyword("AS"):
        alias = stream.expect_ident().text
    elif (stream.peek().kind == IDENT
          and stream.peek().text.upper() not in _RESERVED):
        alias = stream.next().text
    return SelectItem(expr, alias)


def _parse_table_ref(stream: TokenStream):
    if stream.accept_symbol("("):
        select = _parse_select(stream)
        stream.expect_symbol(")")
        stream.accept_keyword("AS")
        alias = stream.expect_ident().text
        return SubqueryRef(select, alias)
    name = stream.expect_ident().text
    alias = None
    if stream.accept_keyword("AS"):
        alias = stream.expect_ident().text
    elif (stream.peek().kind == IDENT
          and stream.peek().text.upper() not in _RESERVED):
        alias = stream.next().text
    return TableRef(name, alias)


def _parse_group_item(stream: TokenStream) -> GroupItem:
    expr = _parse_expr(stream)
    alias = None
    if stream.accept_keyword("AS"):
        alias = stream.expect_ident().text
    return GroupItem(expr, alias)


def _parse_order_item(stream: TokenStream) -> OrderItem:
    expr = _parse_expr(stream)
    ascending = True
    if stream.accept_keyword("DESC"):
        ascending = False
    else:
        stream.accept_keyword("ASC")
    return OrderItem(expr, ascending)


# ---------------------------------------------------------------------------
# Expressions (precedence: OR < AND < NOT < comparison < +- < */ < primary)
# ---------------------------------------------------------------------------


def _parse_expr(stream: TokenStream) -> Expr:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> Expr:
    expr = _parse_and(stream)
    while stream.accept_keyword("OR"):
        expr = BinaryOp("OR", expr, _parse_and(stream))
    return expr


def _parse_and(stream: TokenStream) -> Expr:
    expr = _parse_not(stream)
    while stream.accept_keyword("AND"):
        expr = BinaryOp("AND", expr, _parse_not(stream))
    return expr


def _parse_not(stream: TokenStream) -> Expr:
    if stream.accept_keyword("NOT"):
        return UnaryNot(_parse_not(stream))
    return _parse_comparison(stream)


def _parse_comparison(stream: TokenStream) -> Expr:
    expr = _parse_additive(stream)
    token = stream.peek()
    if token.kind == SYMBOL and token.text in ("=", "!=", "<", "<=", ">",
                                               ">="):
        stream.next()
        return BinaryOp(token.text, expr, _parse_additive(stream))
    if stream.accept_keyword("BETWEEN"):
        low = _parse_additive(stream)
        stream.expect_keyword("AND")
        high = _parse_additive(stream)
        return BetweenExpr(expr, low, high)
    if stream.accept_keyword("IN"):
        values = _parse_literal_list(stream)
        return InListExpr(expr, tuple(values))
    return expr


def _parse_additive(stream: TokenStream) -> Expr:
    expr = _parse_multiplicative(stream)
    while True:
        token = stream.peek()
        if token.kind == SYMBOL and token.text in ("+", "-"):
            stream.next()
            expr = BinaryOp(token.text, expr,
                            _parse_multiplicative(stream))
        else:
            return expr


def _parse_multiplicative(stream: TokenStream) -> Expr:
    expr = _parse_primary(stream)
    while True:
        token = stream.peek()
        if token.kind == SYMBOL and token.text in ("*", "/"):
            stream.next()
            expr = BinaryOp(token.text, expr, _parse_primary(stream))
        else:
            return expr


def _parse_primary(stream: TokenStream) -> Expr:
    token = stream.peek()
    if token.kind == SYMBOL and token.text == "-":
        stream.next()
        inner = _parse_primary(stream)
        if isinstance(inner, Const):
            return Const(-inner.value)
        return BinaryOp("-", Const(0), inner)
    if token.kind == NUMBER:
        stream.next()
        value = float(token.text) if "." in token.text else int(token.text)
        return Const(value)
    if token.kind == STRING:
        stream.next()
        return Const(token.text)
    if token.kind == SYMBOL and token.text == "(":
        stream.next()
        expr = _parse_expr(stream)
        stream.expect_symbol(")")
        return expr
    if token.kind == IDENT:
        stream.next()
        # function call?
        if stream.peek().kind == SYMBOL and stream.peek().text == "(":
            stream.next()
            distinct = bool(stream.accept_keyword("DISTINCT"))
            args: list[Expr] = []
            if stream.accept_symbol("*"):
                args.append(Star())
                stream.expect_symbol(")")
            elif stream.accept_symbol(")"):
                pass
            else:
                args.append(_parse_expr(stream))
                while stream.accept_symbol(","):
                    args.append(_parse_expr(stream))
                stream.expect_symbol(")")
            return FuncCall(token.text, tuple(args), distinct=distinct)
        name = token.text
        if stream.accept_symbol("."):
            name = f"{name}.{stream.expect_ident().text}"
        return ColumnRef(name)
    raise ParseError(f"unexpected token {token.text!r} in expression",
                     token.position)


def _parse_literal_list(stream: TokenStream) -> list:
    open_token = stream.next()
    if open_token.text not in ("(", "["):
        raise ParseError("IN expects a parenthesised literal list",
                         open_token.position)
    closer = ")" if open_token.text == "(" else "]"
    values = []
    if not stream.accept_symbol(closer):
        values.append(_expect_literal(stream))
        while stream.accept_symbol(","):
            values.append(_expect_literal(stream))
        stream.expect_symbol(closer)
    return values


def _expect_literal(stream: TokenStream):
    token = stream.next()
    if token.kind == NUMBER:
        return float(token.text) if "." in token.text else int(token.text)
    if token.kind == STRING:
        return token.text
    raise ParseError(f"expected a literal, got {token.text!r}",
                     token.position)
