"""AST nodes for the SQL subset.

The subset is what the paper's non-intrusive schemes need (Figures 2-3):
WITH common table expressions, SELECT [DISTINCT] with aliases and
aggregates, FROM with comma joins / JOIN ... ON / derived tables, WHERE,
GROUP BY (with the paper's ``GROUP BY expr AS alias`` idiom), ORDER BY
and LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import Expr


@dataclass
class SelectItem:
    """One SELECT-list entry: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass
class StarItem:
    """``SELECT *``."""


@dataclass
class TableRef:
    """A FROM-clause table: base table / CTE name with optional alias."""

    name: str
    alias: str | None = None


@dataclass
class SubqueryRef:
    """A derived table ``(SELECT ...) alias``."""

    select: "SelectStmt"
    alias: str


@dataclass
class JoinClause:
    """``JOIN <table> ON <predicate>`` following the first FROM entry."""

    table: "TableRef | SubqueryRef"
    on: Expr | None


@dataclass
class GroupItem:
    """One GROUP BY key, optionally aliased (``GROUP BY Week(t) AS w``)."""

    expr: Expr
    alias: str | None = None


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass
class SelectStmt:
    """A single SELECT statement."""

    items: list
    from_tables: list
    joins: list[JoinClause] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[GroupItem] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False


@dataclass
class CommonTableExpr:
    """One WITH entry: ``name AS (SELECT ...)``."""

    name: str
    select: SelectStmt


@dataclass
class Query:
    """A full statement: optional WITH list plus the outer SELECT."""

    ctes: list[CommonTableExpr]
    select: SelectStmt
