"""Relational result/base tables for the two relational engines.

A :class:`RelTable` is schema (names) + rows (tuples). The columnar
executor asks for :meth:`RelTable.as_batch`, a dict of numpy arrays, which
is cached so base tables are converted once.
"""

from __future__ import annotations


import numpy as np

from repro.errors import SchemaError
from repro.cohort.result import format_cell as _fmt
from repro.table import ActivityTable


class RelTable:
    """An ordered bag of tuples with named columns."""

    def __init__(self, names: list[str], rows: list[tuple]):
        self.names = list(names)
        self.rows = [tuple(r) for r in rows]
        for row in self.rows:
            if len(row) != len(self.names):
                raise SchemaError(
                    f"row width {len(row)} != schema width "
                    f"{len(self.names)}")
        self._batch: dict[str, np.ndarray] | None = None

    @classmethod
    def from_activity_table(cls, table: ActivityTable) -> "RelTable":
        """Convert an activity table (values stay python-native)."""
        return cls(table.schema.names(), table.to_rows())

    @classmethod
    def from_batch(cls, names: list[str],
                   batch: dict[str, np.ndarray]) -> "RelTable":
        """Build from column arrays (the columnar executor's output)."""
        columns = [batch[n] for n in names]
        n = len(columns[0]) if columns else 0
        rows = [tuple(_to_python(col[i]) for col in columns)
                for i in range(n)]
        out = cls(names, rows)
        out._batch = {n: np.asarray(batch[n]) for n in names}
        return out

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        idx = self.names.index(name)
        return [row[idx] for row in self.rows]

    def as_batch(self) -> dict[str, np.ndarray]:
        """Columnar view: one numpy array per column (cached)."""
        if self._batch is None:
            self._batch = {}
            for i, name in enumerate(self.names):
                values = [row[i] for row in self.rows]
                self._batch[name] = _as_column_array(values)
        return self._batch

    def renamed(self, names: list[str]) -> "RelTable":
        """The same rows under different column names."""
        if len(names) != len(self.names):
            raise SchemaError("renamed() needs one name per column")
        out = RelTable(names, self.rows)
        if self._batch is not None:
            out._batch = dict(zip(names, (self._batch[n]
                                          for n in self.names)))
        return out

    def to_text(self, max_rows: int = 25) -> str:
        """Simple ASCII rendering for examples and debugging."""
        shown = [tuple(_fmt(v) for v in row) for row in self.rows[:max_rows]]
        widths = [len(n) for n in self.names]
        for row in shown:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = "  ".join(n.ljust(widths[i])
                           for i, n in enumerate(self.names))
        lines = [header, "-" * len(header)]
        lines += ["  ".join(c.ljust(widths[i]) for i, c in enumerate(row))
                  for row in shown]
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def sorted(self) -> "RelTable":
        """Rows in a deterministic order (for comparisons in tests)."""
        return RelTable(self.names,
                        sorted(self.rows, key=lambda r: tuple(map(str, r))))


def _as_column_array(values: list) -> np.ndarray:
    if values and all(isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=bool)
    if values and all(isinstance(v, int) and not isinstance(v, bool)
                      for v in values):
        return np.asarray(values, dtype=np.int64)
    if values and all(isinstance(v, (int, float))
                      and not isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=np.float64)
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = v
    return arr


def _to_python(value):
    if isinstance(value, np.generic):
        return value.item()
    return value


