"""Expression AST shared by the row and columnar relational engines.

Expressions evaluate in two modes:

* :func:`eval_row` — one Python value per row (the row engine / Postgres
  stand-in);
* :func:`eval_batch` — one numpy array per column batch (the columnar
  engine / MonetDB stand-in).

Scalar functions cover what the paper's SQL translations need:
``TimeDiff(a, b)`` (the age computation of Figure 2c) and
``Week(t [, origin])`` (the OLAP query of Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BindError, ExecutionError


class Expr:
    """Base class for scalar expressions."""

    def references(self) -> set[str]:
        """Column names referenced by this expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference like ``t.gold``."""

    name: str

    def references(self):
        return {self.name}

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant."""

    value: object

    def references(self):
        return set()

    def __str__(self):
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison or boolean binary operator."""

    op: str
    left: Expr
    right: Expr

    def references(self):
        return self.left.references() | self.right.references()

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryNot(Expr):
    """Boolean NOT."""

    operand: Expr

    def references(self):
        return self.operand.references()

    def __str__(self):
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class BetweenExpr(Expr):
    """``x BETWEEN lo AND hi`` (inclusive)."""

    operand: Expr
    low: Expr
    high: Expr

    def references(self):
        return (self.operand.references() | self.low.references()
                | self.high.references())

    def __str__(self):
        return f"({self.operand} BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class InListExpr(Expr):
    """``x IN (v1, v2, ...)`` over literal values."""

    operand: Expr
    values: tuple

    def references(self):
        return self.operand.references()

    def __str__(self):
        inner = ", ".join(str(Const(v)) for v in self.values)
        return f"({self.operand} IN ({inner}))"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A scalar or aggregate function call.

    Aggregate calls (``Sum``, ``Avg``, ``Count``, ``Min``, ``Max``) only
    appear in aggregation plans; ``distinct`` applies to ``Count``.
    """

    name: str
    args: tuple
    distinct: bool = False

    def __post_init__(self):
        object.__setattr__(self, "name", self.name.upper())
        object.__setattr__(self, "args", tuple(self.args))

    def references(self):
        out: set[str] = set()
        for arg in self.args:
            out |= arg.references()
        return out

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_NAMES

    def __str__(self):
        inner = ", ".join(str(a) for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        if not self.args and self.name == "COUNT":
            inner = "*"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class Star(Expr):
    """``*`` — only valid inside ``Count(*)`` and SELECT lists."""

    def references(self):
        return set()

    def __str__(self):
        return "*"


AGGREGATE_NAMES = ("SUM", "AVG", "COUNT", "MIN", "MAX")
SCALAR_FUNCTIONS = ("TIMEDIFF", "WEEK", "CEILDIV", "TIMEBIN")


def contains_aggregate(expr: Expr) -> bool:
    """Does ``expr`` contain an aggregate function call anywhere?"""
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(
            expr.right)
    if isinstance(expr, UnaryNot):
        return contains_aggregate(expr.operand)
    if isinstance(expr, BetweenExpr):
        return any(contains_aggregate(e)
                   for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, InListExpr):
        return contains_aggregate(expr.operand)
    return False


# ---------------------------------------------------------------------------
# Name resolution
# ---------------------------------------------------------------------------


class RelSchema:
    """An ordered list of output column names with suffix matching.

    Columns may be qualified (``mv.gold``); a reference resolves if it
    matches a name exactly or matches the part after the final dot.

    Raises:
        BindError: on unknown or ambiguous references.
    """

    def __init__(self, names: list[str]):
        self.names = list(names)

    def __len__(self):
        return len(self.names)

    def __iter__(self):
        return iter(self.names)

    def resolve(self, name: str) -> int:
        matches = [i for i, n in enumerate(self.names) if n == name]
        if not matches:
            matches = [i for i, n in enumerate(self.names)
                       if n.rpartition(".")[2] == name]
        if not matches:
            raise BindError(f"unknown column {name!r}; have {self.names}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column {name!r} in {self.names}")
        return matches[0]

    def concat(self, other: "RelSchema") -> "RelSchema":
        return RelSchema(self.names + other.names)


# ---------------------------------------------------------------------------
# Row-at-a-time evaluation
# ---------------------------------------------------------------------------

_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}
_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def eval_row(expr: Expr, row: tuple, schema: RelSchema):
    """Evaluate a (non-aggregate) expression against one row."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, ColumnRef):
        return row[schema.resolve(expr.name)]
    if isinstance(expr, BinaryOp):
        if expr.op == "AND":
            return bool(eval_row(expr.left, row, schema)
                        and eval_row(expr.right, row, schema))
        if expr.op == "OR":
            return bool(eval_row(expr.left, row, schema)
                        or eval_row(expr.right, row, schema))
        lhs = eval_row(expr.left, row, schema)
        rhs = eval_row(expr.right, row, schema)
        if expr.op in _CMP:
            return bool(_CMP[expr.op](lhs, rhs))
        if expr.op in _ARITH:
            return _ARITH[expr.op](lhs, rhs)
        raise ExecutionError(f"unknown operator {expr.op!r}")
    if isinstance(expr, UnaryNot):
        return not eval_row(expr.operand, row, schema)
    if isinstance(expr, BetweenExpr):
        v = eval_row(expr.operand, row, schema)
        return bool(eval_row(expr.low, row, schema) <= v
                    <= eval_row(expr.high, row, schema))
    if isinstance(expr, InListExpr):
        return eval_row(expr.operand, row, schema) in expr.values
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name} outside an aggregation")
        args = [eval_row(a, row, schema) for a in expr.args]
        return call_scalar(expr.name, args)
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def call_scalar(name: str, args: list):
    """Dispatch a scalar function by name (row mode)."""
    if name == "TIMEDIFF":
        if len(args) != 2:
            raise ExecutionError("TimeDiff takes exactly 2 arguments")
        return args[0] - args[1]
    if name == "WEEK":
        if len(args) not in (1, 2):
            raise ExecutionError("Week takes 1 or 2 arguments")
        origin = args[1] if len(args) == 2 else 0
        week = 7 * 86400
        return origin + ((args[0] - origin) // week) * week
    if name == "CEILDIV":
        # Ceiling division for positive numerators: the age normalization
        # of Definition 3 expressed in SQL (first unit after birth == 1).
        if len(args) != 2:
            raise ExecutionError("CeilDiv takes exactly 2 arguments")
        return (args[0] + args[1] - 1) // args[1]
    if name == "TIMEBIN":
        # TimeBin(t, unit_seconds, origin): floor t to its bin start.
        if len(args) != 3:
            raise ExecutionError("TimeBin takes exactly 3 arguments")
        t, unit, origin = args
        return origin + ((t - origin) // unit) * unit
    raise ExecutionError(f"unknown function {name!r}")


# ---------------------------------------------------------------------------
# Vectorized evaluation
# ---------------------------------------------------------------------------


def eval_batch(expr: Expr, batch: list, schema: RelSchema,
               n_rows: int) -> np.ndarray:
    """Evaluate a (non-aggregate) expression against a column batch.

    ``batch`` is a list of numpy arrays (length ``n_rows``) positionally
    parallel to ``schema`` — positional so that duplicate output names
    (e.g. a self-join's two ``gold`` columns) stay distinct.
    """
    if isinstance(expr, Const):
        arr = np.empty(n_rows, dtype=object) \
            if isinstance(expr.value, str) else None
        if arr is not None:
            arr[:] = expr.value
            return arr
        return np.full(n_rows, expr.value)
    if isinstance(expr, ColumnRef):
        return batch[schema.resolve(expr.name)]
    if isinstance(expr, BinaryOp):
        if expr.op in ("AND", "OR"):
            lhs = eval_batch(expr.left, batch, schema, n_rows).astype(bool)
            rhs = eval_batch(expr.right, batch, schema, n_rows).astype(bool)
            return (lhs & rhs) if expr.op == "AND" else (lhs | rhs)
        lhs = eval_batch(expr.left, batch, schema, n_rows)
        rhs = eval_batch(expr.right, batch, schema, n_rows)
        if expr.op in _CMP:
            return np.asarray(_CMP[expr.op](lhs, rhs), dtype=bool)
        if expr.op in _ARITH:
            return _ARITH[expr.op](lhs, rhs)
        raise ExecutionError(f"unknown operator {expr.op!r}")
    if isinstance(expr, UnaryNot):
        return ~eval_batch(expr.operand, batch, schema, n_rows).astype(bool)
    if isinstance(expr, BetweenExpr):
        v = eval_batch(expr.operand, batch, schema, n_rows)
        lo = eval_batch(expr.low, batch, schema, n_rows)
        hi = eval_batch(expr.high, batch, schema, n_rows)
        return np.asarray((lo <= v) & (v <= hi), dtype=bool)
    if isinstance(expr, InListExpr):
        v = eval_batch(expr.operand, batch, schema, n_rows)
        mask = np.zeros(n_rows, dtype=bool)
        for value in expr.values:
            mask |= np.asarray(v == value, dtype=bool)
        return mask
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name} outside an aggregation")
        args = [eval_batch(a, batch, schema, n_rows) for a in expr.args]
        if expr.name == "TIMEDIFF":
            return args[0] - args[1]
        if expr.name == "WEEK":
            origin = args[1] if len(args) == 2 else 0
            week = 7 * 86400
            return origin + ((args[0] - origin) // week) * week
        if expr.name == "CEILDIV":
            return (args[0] + args[1] - 1) // args[1]
        if expr.name == "TIMEBIN":
            t, unit, origin = args
            return origin + ((t - origin) // unit) * unit
        raise ExecutionError(f"unknown function {expr.name!r}")
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
