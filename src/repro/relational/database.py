"""A small relational database facade over either executor.

This is the container the non-intrusive schemes run against: register
activity tables as base tables, optionally materialize views with
``CREATE TABLE AS``-style calls, and execute SQL text. Choose the engine
with ``executor='rows'`` (Postgres stand-in) or ``executor='columnar'``
(MonetDB stand-in).
"""

from __future__ import annotations

from repro.errors import CatalogError
from repro.relational import row_executor
from repro.relational.logical import LogicalPlan
from repro.relational.rows import RelTable
from repro.sqlparser.binder import SqlBinder
from repro.sqlparser.parser import parse_sql
from repro.table import ActivityTable

EXECUTOR_NAMES = ("rows", "columnar")


class Database:
    """A named-table catalog plus a SQL execution pipeline."""

    def __init__(self, executor: str = "rows"):
        if executor not in EXECUTOR_NAMES:
            raise CatalogError(f"unknown executor {executor!r}; "
                               f"have {EXECUTOR_NAMES}")
        self.executor = executor
        self._tables: dict[str, RelTable] = {}
        self._views: dict[str, LogicalPlan] = {}

    # -- catalog ---------------------------------------------------------------

    def register(self, name: str, table: RelTable) -> None:
        """Register a relational table under ``name``."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[name] = table

    def register_activity_table(self, name: str,
                                table: ActivityTable) -> None:
        """Register an activity table as a base relational table."""
        self.register(name, RelTable.from_activity_table(table))

    def drop(self, name: str) -> None:
        self.table(name)
        del self._tables[name]

    def table(self, name: str) -> RelTable:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def tables(self) -> list[str]:
        return sorted(self._tables)

    # -- execution ----------------------------------------------------------------

    def create_view(self, name: str, sql: str) -> None:
        """Register a non-materialized view: ``sql`` is re-planned into
        every statement that references ``name`` (contrast with
        :meth:`create_table_as`, the MV scheme's tool, which stores the
        result rows)."""
        if name in self._tables or name in self._views:
            raise CatalogError(f"name {name!r} already exists")
        self._views[name] = self.plan(sql)

    def plan(self, sql: str) -> LogicalPlan:
        """Parse + bind ``sql`` into a logical plan."""
        query = parse_sql(sql)
        binder = SqlBinder(self._columns_of, views=self._views)
        return binder.bind(query)

    def execute(self, sql: str) -> RelTable:
        """Run a SQL statement and return its result table."""
        return self.execute_plan(self.plan(sql))

    def execute_plan(self, plan: LogicalPlan) -> RelTable:
        if self.executor == "rows":
            return row_executor.execute(plan, self.table)
        from repro.columnar.executor import execute as columnar_execute
        return columnar_execute(plan, self.table)

    def create_table_as(self, name: str, sql: str) -> RelTable:
        """``CREATE TABLE <name> AS <select>`` — the MV scheme's tool."""
        result = self.execute(sql)
        self.register(name, result)
        return result

    def explain(self, sql: str) -> str:
        """The logical plan tree as text."""
        return self.plan(sql).describe()

    def _columns_of(self, name: str) -> list[str] | None:
        table = self._tables.get(name)
        if table is None:
            return None
        return list(table.names)
