"""The row-store relational engine substrate (the Postgres stand-in)."""

from repro.relational.database import Database
from repro.relational.expressions import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Const,
    Expr,
    FuncCall,
    InListExpr,
    RelSchema,
    Star,
    UnaryNot,
    contains_aggregate,
    eval_batch,
    eval_row,
)
from repro.relational.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SubqueryScan,
)
from repro.relational.rows import RelTable

__all__ = [
    "Aggregate",
    "BetweenExpr",
    "BinaryOp",
    "ColumnRef",
    "Const",
    "Database",
    "Distinct",
    "Expr",
    "Filter",
    "FuncCall",
    "InListExpr",
    "Join",
    "Limit",
    "LogicalPlan",
    "Project",
    "RelSchema",
    "RelTable",
    "Scan",
    "Sort",
    "Star",
    "SubqueryScan",
    "UnaryNot",
    "contains_aggregate",
    "eval_batch",
    "eval_row",
]
