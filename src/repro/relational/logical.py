"""Logical query plans shared by the row and columnar executors.

A deliberately small algebra: Scan, Filter, Project, Join (inner),
Aggregate (hash group-by), Sort, Limit, Distinct. The SQL binder lowers
parsed statements to these nodes; each engine supplies the physical
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BindError
from repro.relational.expressions import Expr, FuncCall


class LogicalPlan:
    """Base class of all logical plan nodes."""

    def output_names(self) -> list[str]:
        """The column names this node produces."""
        raise NotImplementedError

    def children(self) -> list["LogicalPlan"]:
        return []

    def describe(self, indent: int = 0) -> str:
        """An EXPLAIN-style tree rendering."""
        line = "  " * indent + self._label()
        return "\n".join([line] + [c.describe(indent + 1)
                                   for c in self.children()])

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class Scan(LogicalPlan):
    """Read a named base table (or registered view result)."""

    table: str
    columns: list[str] = field(default_factory=list)  # filled at bind time
    alias: str | None = None

    def output_names(self):
        prefix = self.alias or self.table
        return [f"{prefix}.{c}" for c in self.columns]

    def _label(self):
        alias = f" AS {self.alias}" if self.alias else ""
        return f"Scan({self.table}{alias})"


@dataclass
class Filter(LogicalPlan):
    """Keep rows satisfying a boolean predicate."""

    child: LogicalPlan
    predicate: Expr

    def output_names(self):
        return self.child.output_names()

    def children(self):
        return [self.child]

    def _label(self):
        return f"Filter({self.predicate})"


@dataclass
class Project(LogicalPlan):
    """Compute named expressions per row."""

    child: LogicalPlan
    exprs: list[Expr]
    names: list[str]

    def output_names(self):
        return list(self.names)

    def children(self):
        return [self.child]

    def _label(self):
        cols = ", ".join(f"{e} AS {n}" for e, n in zip(self.exprs,
                                                       self.names))
        return f"Project({cols})"


@dataclass
class Join(LogicalPlan):
    """Inner join. ``predicate`` may be None for a cross join.

    The executors split conjunctive equality predicates between the two
    sides into hash-join keys; any residue is applied as a filter.
    """

    left: LogicalPlan
    right: LogicalPlan
    predicate: Expr | None = None

    def output_names(self):
        return self.left.output_names() + self.right.output_names()

    def children(self):
        return [self.left, self.right]

    def _label(self):
        return f"Join({self.predicate})"


@dataclass
class Aggregate(LogicalPlan):
    """Hash group-by with aggregate functions.

    Attributes:
        group_exprs / group_names: grouping keys (empty = global).
        agg_calls / agg_names: aggregate function calls.
    """

    child: LogicalPlan
    group_exprs: list[Expr]
    group_names: list[str]
    agg_calls: list[FuncCall]
    agg_names: list[str]

    def __post_init__(self):
        for call in self.agg_calls:
            if not call.is_aggregate:
                raise BindError(f"{call.name} is not an aggregate function")

    def output_names(self):
        return list(self.group_names) + list(self.agg_names)

    def children(self):
        return [self.child]

    def _label(self):
        keys = ", ".join(self.group_names)
        aggs = ", ".join(f"{c} AS {n}" for c, n in zip(self.agg_calls,
                                                       self.agg_names))
        return f"Aggregate(by=[{keys}], aggs=[{aggs}])"


@dataclass
class Sort(LogicalPlan):
    """Order by expressions."""

    child: LogicalPlan
    keys: list[Expr]
    ascending: list[bool]

    def output_names(self):
        return self.child.output_names()

    def children(self):
        return [self.child]

    def _label(self):
        keys = ", ".join(f"{k} {'ASC' if a else 'DESC'}"
                         for k, a in zip(self.keys, self.ascending))
        return f"Sort({keys})"


@dataclass
class Limit(LogicalPlan):
    """Keep the first ``count`` rows."""

    child: LogicalPlan
    count: int

    def output_names(self):
        return self.child.output_names()

    def children(self):
        return [self.child]

    def _label(self):
        return f"Limit({self.count})"


@dataclass
class Distinct(LogicalPlan):
    """Remove duplicate rows."""

    child: LogicalPlan

    def output_names(self):
        return self.child.output_names()

    def children(self):
        return [self.child]


@dataclass
class SubqueryScan(LogicalPlan):
    """A derived table: a subquery plan given an alias."""

    child: LogicalPlan
    alias: str

    def output_names(self):
        return [f"{self.alias}.{n.rpartition('.')[2]}"
                for n in self.child.output_names()]

    def children(self):
        return [self.child]

    def _label(self):
        return f"SubqueryScan({self.alias})"
