"""The row-at-a-time (iterator model) executor — the Postgres stand-in.

Implements each logical operator as a generator over Python tuples. Joins
use classic hash joins when the predicate contains equality conjuncts
between the two sides; otherwise they degrade to nested loops. The point
of this engine in the reproduction is its *cost shape*: per-row Python
evaluation and join materialization, exactly the profile the paper's
SQL-scheme numbers come from.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import ExecutionError
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    RelSchema,
    Star,
    eval_row,
)
from repro.relational.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SubqueryScan,
)
from repro.relational.rows import RelTable


def execute(plan: LogicalPlan,
            lookup: Callable[[str], RelTable]) -> RelTable:
    """Run ``plan``; ``lookup`` resolves base-table names."""
    names = plan.output_names()
    rows = list(_rows(plan, lookup))
    return RelTable([n.rpartition(".")[2] for n in names], rows)


def _rows(plan: LogicalPlan, lookup) -> Iterator[tuple]:
    if isinstance(plan, Scan):
        yield from lookup(plan.table).rows
    elif isinstance(plan, SubqueryScan):
        yield from _rows(plan.child, lookup)
    elif isinstance(plan, Filter):
        schema = RelSchema(plan.child.output_names())
        for row in _rows(plan.child, lookup):
            if eval_row(plan.predicate, row, schema):
                yield row
    elif isinstance(plan, Project):
        schema = RelSchema(plan.child.output_names())
        for row in _rows(plan.child, lookup):
            yield tuple(eval_row(e, row, schema) for e in plan.exprs)
    elif isinstance(plan, Join):
        yield from _join(plan, lookup)
    elif isinstance(plan, Aggregate):
        yield from _aggregate(plan, lookup)
    elif isinstance(plan, Sort):
        schema = RelSchema(plan.child.output_names())
        rows = list(_rows(plan.child, lookup))
        for key, ascending in zip(reversed(plan.keys),
                                  reversed(plan.ascending)):
            rows.sort(key=lambda r, key=key: _sort_key(
                          eval_row(key, r, schema)),
                      reverse=not ascending)
        yield from rows
    elif isinstance(plan, Limit):
        for i, row in enumerate(_rows(plan.child, lookup)):
            if i >= plan.count:
                break
            yield row
    elif isinstance(plan, Distinct):
        seen = set()
        for row in _rows(plan.child, lookup):
            if row not in seen:
                seen.add(row)
                yield row
    else:
        raise ExecutionError(f"unknown plan node {type(plan).__name__}")


def _sort_key(value):
    # Sort None first, then by value; mixed types fall back to strings.
    return (value is not None, str(type(value)), value) \
        if not isinstance(value, (int, float, str)) else \
        (value is not None, "", value)


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


def split_equi_conjuncts(predicate: Expr | None, left_schema: RelSchema,
                         right_schema: RelSchema):
    """Split a join predicate into hash keys and a residual expression.

    Returns ``(left_keys, right_keys, residual)`` where the key lists hold
    column-reference expressions bound to each side.
    """
    left_keys: list[Expr] = []
    right_keys: list[Expr] = []
    residual: list[Expr] = []
    for part in _conjuncts(predicate):
        pair = _equi_pair(part, left_schema, right_schema)
        if pair is not None:
            left_keys.append(pair[0])
            right_keys.append(pair[1])
        else:
            residual.append(part)
    residual_expr = None
    for part in residual:
        residual_expr = part if residual_expr is None else BinaryOp(
            "AND", residual_expr, part)
    return left_keys, right_keys, residual_expr


def _conjuncts(predicate: Expr | None) -> list[Expr]:
    if predicate is None:
        return []
    if isinstance(predicate, BinaryOp) and predicate.op == "AND":
        return _conjuncts(predicate.left) + _conjuncts(predicate.right)
    return [predicate]


def _equi_pair(part: Expr, left_schema: RelSchema,
               right_schema: RelSchema):
    if not (isinstance(part, BinaryOp) and part.op == "="
            and isinstance(part.left, ColumnRef)
            and isinstance(part.right, ColumnRef)):
        return None
    if (_resolvable(part.left, left_schema)
            and _resolvable(part.right, right_schema)):
        return part.left, part.right
    if (_resolvable(part.right, left_schema)
            and _resolvable(part.left, right_schema)):
        return part.right, part.left
    return None


def _resolvable(ref: ColumnRef, schema: RelSchema) -> bool:
    try:
        schema.resolve(ref.name)
        return True
    except Exception:
        return False


def _join(plan: Join, lookup) -> Iterator[tuple]:
    left_schema = RelSchema(plan.left.output_names())
    right_schema = RelSchema(plan.right.output_names())
    out_schema = left_schema.concat(right_schema)
    left_keys, right_keys, residual = split_equi_conjuncts(
        plan.predicate, left_schema, right_schema)
    right_rows = list(_rows(plan.right, lookup))
    if left_keys:
        # hash join: build on the right input
        build: dict[tuple, list[tuple]] = {}
        for row in right_rows:
            key = tuple(eval_row(k, row, right_schema)
                        for k in right_keys)
            build.setdefault(key, []).append(row)
        for lrow in _rows(plan.left, lookup):
            key = tuple(eval_row(k, lrow, left_schema) for k in left_keys)
            for rrow in build.get(key, ()):
                combined = lrow + rrow
                if residual is None or eval_row(residual, combined,
                                                out_schema):
                    yield combined
    else:
        # nested loop (cross product + filter)
        for lrow in _rows(plan.left, lookup):
            for rrow in right_rows:
                combined = lrow + rrow
                if plan.predicate is None or eval_row(
                        plan.predicate, combined, out_schema):
                    yield combined


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class _AggState:
    """Streaming state for one aggregate call in one group."""

    def __init__(self, call: FuncCall):
        self.call = call
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.distinct: set | None = set() if call.distinct else None

    def add(self, value) -> None:
        if self.distinct is not None:
            self.distinct.add(value)
            return
        self.count += 1
        if value is None:
            return
        if isinstance(value, (int, float)):
            self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def result(self):
        name = self.call.name
        if name == "COUNT":
            return len(self.distinct) if self.distinct is not None \
                else self.count
        if name == "SUM":
            return self.total
        if name == "AVG":
            return self.total / self.count if self.count else None
        if name == "MIN":
            return self.min
        if name == "MAX":
            return self.max
        raise ExecutionError(f"unknown aggregate {name!r}")


def _aggregate(plan: Aggregate, lookup) -> Iterator[tuple]:
    schema = RelSchema(plan.child.output_names())
    groups: dict[tuple, list[_AggState]] = {}
    order: list[tuple] = []
    for row in _rows(plan.child, lookup):
        key = tuple(eval_row(e, row, schema) for e in plan.group_exprs)
        states = groups.get(key)
        if states is None:
            states = [_AggState(c) for c in plan.agg_calls]
            groups[key] = states
            order.append(key)
        for state, call in zip(states, plan.agg_calls):
            if call.args and not isinstance(call.args[0], Star):
                value = eval_row(call.args[0], row, schema)
            else:
                value = 1  # Count(*)
            state.add(value)
    if not groups and not plan.group_exprs:
        # global aggregate over an empty input still yields one row
        yield tuple(_AggState(c).result() for c in plan.agg_calls)
        return
    for key in order:
        yield key + tuple(s.result() for s in groups[key])
