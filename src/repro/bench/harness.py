"""Experiment harness shared by ``benchmarks/`` and ``run_all.py``.

Provides dataset caching (generating + scaling the workload once per
process), wall-clock timing, and figure-style reporting: each experiment
produces a :class:`Series` per line of the paper's plot, and
:class:`Report` prints them as the rows/series the paper's figures show.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.datagen import GameConfig, generate, scale_dataset
from repro.table import ActivityTable

_DATASETS: dict[tuple, ActivityTable] = {}

#: Generator seed used when ``dataset()`` is called without one;
#: ``run_all.py --seed`` overrides it so timings are reproducible.
DEFAULT_SEED = 7


def set_default_seed(seed: int) -> None:
    """Set the process-wide default dataset seed."""
    global DEFAULT_SEED
    DEFAULT_SEED = seed


def dataset(scale: int = 1, n_users: int = 57,
            seed: int | None = None) -> ActivityTable:
    """The benchmark dataset at ``scale`` (cached per process)."""
    if seed is None:
        seed = DEFAULT_SEED
    base_key = (1, n_users, seed)
    if base_key not in _DATASETS:
        _DATASETS[base_key] = generate(GameConfig(n_users=n_users,
                                                  seed=seed))
    if scale == 1:
        return _DATASETS[base_key]
    key = (scale, n_users, seed)
    if key not in _DATASETS:
        _DATASETS[key] = scale_dataset(_DATASETS[base_key], scale)
    return _DATASETS[key]


def time_call(fn, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def time_query(engine, text: str, repeat: int = 3, **exec_kw) -> float:
    """Time one engine query; ``exec_kw`` (``jobs=``, ``backend=``,
    ``executor=``, ...) goes straight to ``engine.query`` so experiments
    can sweep the execution pipeline's configuration."""
    return time_call(lambda: engine.query(text, **exec_kw), repeat=repeat)


@dataclass
class Series:
    """One line of a figure: a label plus (x, y) points."""

    label: str
    points: list[tuple] = field(default_factory=list)

    def add(self, x, y) -> None:
        self.points.append((x, y))

    def y_at(self, x):
        for px, py in self.points:
            if px == x:
                return py
        return None


@dataclass
class Report:
    """A figure/table reproduction: titled series over a shared x-axis."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def series_named(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        s = Series(label)
        self.series.append(s)
        return s

    def xs(self) -> list:
        seen: list = []
        for s in self.series:
            for x, _ in s.points:
                if x not in seen:
                    seen.append(x)
        return seen

    def to_text(self) -> str:
        """Render as an aligned table: one row per series, one column
        per x value (the shape the paper's figures plot)."""
        xs = self.xs()
        header = [f"{self.x_label}="] + [str(x) for x in xs]
        rows = [[s.label] + [_fmt(s.y_at(x)) for x in xs]
                for s in self.series]
        widths = [max(len(header[i]),
                      *(len(r[i]) for r in rows)) if rows else
                  len(header[i]) for i in range(len(header))]
        lines = [f"== {self.title} ==",
                 f"   ({self.y_label})"]
        lines.append("  ".join(h.ljust(widths[i])
                               for i, h in enumerate(header)))
        lines.append("-" * (sum(widths) + 2 * len(widths)))
        for row in rows:
            lines.append("  ".join(c.ljust(widths[i])
                                   for i, c in enumerate(row)))
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.4f}".rstrip("0").rstrip(".")
    return f"{value:,}"
