"""The HTTP service tier under load: latency, shedding, drain.

Drives a real :class:`repro.service.HttpCohortServer` (bound to a
loopback port, served from a background thread) with ``http.client``
worker threads and records what the ISSUE's serving tier promises:

* **Latency/throughput** — p50/p99 seconds per request and requests
  per second at concurrency 1/16/64, once against the warm result
  cache (``cache=on``) and once with ``use_cache=false`` so every
  request pays a full execution (``cache=off``). Every 200 response's
  digest is compared against a direct
  :class:`~repro.cohana.engine.CohanaEngine` run of the same query —
  the server must never trade correctness for concurrency.
* **Load shedding** — a burst against a deliberately tiny admission
  config (one slot, no queue, per-tenant quota 1) must produce 429s
  that carry an honest ``Retry-After`` and a shed ``reason``, with the
  server's own counters agreeing with what the clients saw.
* **Graceful drain** — requests still in flight when the drain is
  requested all complete (zero dropped), and the listener refuses new
  connections afterwards.

``benchmarks/run_all.py serve_http`` records the whole payload in
``BENCH_http.json``; ``tools/bench_report.py --strict`` fails the
build on any ``*_ok`` verdict going false.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time

from repro.bench.experiments import (
    TABLE,
    cohana_engine_on_disk,
    selective_scan_query,
)
from repro.bench.harness import Report
from repro.service import (
    AdmissionConfig,
    HttpCohortServer,
    QueryService,
    start_in_thread,
)
from repro.service.protocol import result_digest
from repro.workloads import MAIN_QUERIES

#: Concurrency levels of the latency sweep (the ISSUE's 1/16/64).
DEFAULT_CONCURRENCY = (1, 16, 64)


def _percentile(samples: list[float], q: float) -> float | None:
    """The nearest-rank ``q``-quantile (0 < q <= 1) of ``samples``."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


class _Client:
    """One keep-alive connection speaking the service's JSON dialect."""

    def __init__(self, address: tuple[str, int], timeout: float = 120.0,
                 tenant: str | None = None):
        self._conn = http.client.HTTPConnection(
            address[0], address[1], timeout=timeout)
        self._tenant = tenant

    def request(self, method: str, path: str, body: dict | None = None,
                ) -> tuple[int, dict, dict]:
        """(status, headers, parsed JSON body) of one round trip."""
        headers = {}
        if self._tenant is not None:
            headers["X-Tenant"] = self._tenant
        data = None
        if body is not None:
            data = json.dumps(body)
            headers["Content-Type"] = "application/json"
        self._conn.request(method, path, body=data, headers=headers)
        response = self._conn.getresponse()
        raw = response.read()
        return (response.status,
                {k.lower(): v for k, v in response.getheaders()},
                json.loads(raw) if raw else {})

    def close(self) -> None:
        self._conn.close()


def _bench_queries() -> dict[str, str]:
    return {
        "Q1": MAIN_QUERIES["Q1"](TABLE),
        "Q4": MAIN_QUERIES["Q4"](TABLE),
        "selective_scan": selective_scan_query(),
    }


def _load_phase(address: tuple[str, int], queries: dict[str, str],
                digests: dict[str, str], concurrency: int,
                requests_per_worker: int, use_cache: bool) -> dict:
    """One cell of the sweep: ``concurrency`` workers, each issuing
    ``requests_per_worker`` queries round-robin over the workload."""
    names = sorted(queries)
    latencies: list[float] = []
    parity: list[bool] = []
    errors: list[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)

    def worker(wid: int) -> None:
        client = _Client(address)
        mine: list[float] = []
        mine_parity: list[bool] = []
        mine_errors: list[int] = []
        barrier.wait()
        for i in range(requests_per_worker):
            qname = names[(wid + i) % len(names)]
            body: dict = {"query": queries[qname]}
            if not use_cache:
                body["use_cache"] = False
            start = time.perf_counter()
            status, _, payload = client.request("POST", "/query", body)
            elapsed = time.perf_counter() - start
            if status == 200:
                mine.append(elapsed)
                mine_parity.append(payload["digest"] == digests[qname])
            else:
                mine_errors.append(status)
        client.close()
        with lock:
            latencies.extend(mine)
            parity.extend(mine_parity)
            errors.extend(mine_errors)

    threads = [threading.Thread(target=worker, args=(wid,), daemon=True)
               for wid in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    completed = len(latencies)
    return {
        "concurrency": concurrency,
        "cache": "on" if use_cache else "off",
        "requests": concurrency * requests_per_worker,
        "completed": completed,
        "errors": len(errors),
        "error_statuses": sorted(set(errors)),
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "mean_seconds": (sum(latencies) / completed
                         if completed else None),
        "wall_seconds": wall,
        "throughput_rps": (completed / wall if wall else None),
        "digest_parity": bool(parity) and all(parity),
    }


def _shed_phase(service: QueryService, queries: dict[str, str],
                burst: int = 12) -> dict:
    """Overwhelm a one-slot, zero-queue, quota-1 server with a
    simultaneous burst; every rejection must be an honest 429."""
    server = HttpCohortServer(service, admission=AdmissionConfig(
        max_inflight=1, queue_depth=0, tenant_quota=1,
        timeout_seconds=60.0))
    text = queries["selective_scan"]
    outcomes: list[tuple[int, dict, dict]] = []
    lock = threading.Lock()
    with start_in_thread(server) as handle:
        barrier = threading.Barrier(burst)

        def worker(wid: int) -> None:
            # Half the burst shares one tenant (tripping the quota),
            # half gets its own (tripping the global queue bound).
            tenant = "shared" if wid % 2 == 0 else f"solo-{wid}"
            client = _Client(handle.address, tenant=tenant)
            barrier.wait()
            outcome = client.request(
                "POST", "/query", {"query": text, "use_cache": False})
            client.close()
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=worker, args=(w,),
                                    daemon=True) for w in range(burst)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    counters = server.admission.counters
    shed = [(headers, payload) for status, headers, payload in outcomes
            if status == 429]
    served = sum(1 for status, _, _ in outcomes if status == 200)
    reasons: dict[str, int] = {}
    for _, payload in shed:
        reason = payload.get("error", {}).get("reason", "?")
        reasons[reason] = reasons.get(reason, 0) + 1
    retry_after_ok = bool(shed) and all(
        "retry-after" in headers
        and float(headers["retry-after"]) > 0
        and payload.get("error", {}).get("retry_after") is not None
        for headers, payload in shed)
    return {
        "burst": burst,
        "served_200": served,
        "shed_429": len(shed),
        "other_statuses": sorted({status for status, _, _ in outcomes
                                  if status not in (200, 429)}),
        "reasons": reasons,
        "retry_after_ok": retry_after_ok,
        "server_counters": counters.as_dict(),
        "counters_agree": counters.shed == len(shed)
        and counters.completed == served,
    }


def _drain_phase(service: QueryService, queries: dict[str, str],
                 inflight: int = 3) -> dict:
    """Put requests in flight on a one-slot server, request the drain,
    and witness that every in-flight request completes (zero dropped)
    and the listener then refuses new connections."""
    server = HttpCohortServer(service, admission=AdmissionConfig(
        max_inflight=1, queue_depth=max(8, inflight),
        tenant_quota=max(8, inflight), timeout_seconds=60.0))
    handle = start_in_thread(server)
    text = queries["selective_scan"]
    statuses: list[int] = []
    parity: list[bool] = []
    lock = threading.Lock()
    started = threading.Barrier(inflight + 1)

    direct_digest = _direct_digests(service, queries)["selective_scan"]

    def worker() -> None:
        client = _Client(handle.address)
        started.wait()
        status, _, payload = client.request(
            "POST", "/query", {"query": text, "use_cache": False})
        client.close()
        with lock:
            statuses.append(status)
            parity.append(status == 200
                          and payload.get("digest") == direct_digest)

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(inflight)]
    for thread in threads:
        thread.start()
    started.wait()
    # Catch the server mid-flight (one executing, others queued) before
    # pulling the plug; a too-fast engine just means an empty drain.
    poller = _Client(handle.address)
    witnessed = 0
    deadline = time.perf_counter() + 2.0
    while time.perf_counter() < deadline:
        _, _, snapshot = poller.request("GET", "/stats")
        witnessed = max(witnessed, snapshot["http"]["inflight"]
                        + snapshot["http"]["waiting"])
        if witnessed >= 2:
            break
        time.sleep(0.001)
    poller.close()
    handle.drain(timeout=60.0)
    for thread in threads:
        thread.join(10.0)
    refused = False
    try:
        probe = _Client(handle.address, timeout=2.0)
        probe.request("GET", "/healthz")
        probe.close()
    except OSError:
        refused = True
    counters = server.admission.counters
    return {
        "inflight_target": inflight,
        "inflight_witnessed": witnessed,
        "statuses": sorted(statuses),
        "completed": statuses.count(200),
        "digest_parity": bool(parity) and all(parity),
        "refused_after_drain": refused,
        "server_counters": counters.as_dict(),
    }


def _direct_digests(service: QueryService,
                    queries: dict[str, str]) -> dict[str, str]:
    """Ground truth: the digest of each query run straight on the
    engine, bypassing every serving layer."""
    engine = service.engine
    return {qname: result_digest(engine.query(engine.parse(text)))
            for qname, text in queries.items()}


def serve_http_records(scale: int = 4, chunk_rows: int = 1024,
                       concurrency: tuple[int, ...] = DEFAULT_CONCURRENCY,
                       requests_per_worker: int = 4) -> dict:
    """The full serving-tier gauntlet: latency sweep + shed + drain.

    Returns the ``BENCH_http.json`` payload body (everything but the
    experiment/seed envelope and the kernel-parity sweep, which
    ``run_all.py`` folds in).
    """
    engine = cohana_engine_on_disk(scale, chunk_rows)
    service = QueryService(engine)
    queries = _bench_queries()
    digests = _direct_digests(service, queries)

    # Generous admission so the sweep measures queueing, not shedding:
    # 64 workers must all fit in slots + queue.
    peak = max(concurrency)
    server = HttpCohortServer(service, admission=AdmissionConfig(
        max_inflight=8, queue_depth=max(64, peak * 2),
        tenant_quota=max(64, peak * 2), timeout_seconds=300.0))
    records: list[dict] = []
    with start_in_thread(server) as handle:
        for level in concurrency:
            for use_cache in (True, False):
                if use_cache:
                    # Warm every workload entry once so "cache=on"
                    # really measures hits, not a racing first miss.
                    warm = _Client(handle.address)
                    for text in queries.values():
                        warm.request("POST", "/query", {"query": text})
                    warm.close()
                records.append(_load_phase(
                    handle.address, queries, digests, level,
                    requests_per_worker, use_cache))
    shed = _shed_phase(service, queries)
    drain = _drain_phase(service, queries)
    parity_ok = all(r["digest_parity"] and r["errors"] == 0
                    for r in records)
    shed_ok = (shed["shed_429"] >= 1 and shed["served_200"] >= 1
               and not shed["other_statuses"]
               and shed["retry_after_ok"] and shed["counters_agree"])
    drain_ok = (drain["completed"] == drain["inflight_target"]
                and drain["digest_parity"]
                and drain["refused_after_drain"])
    return {
        "scale": scale,
        "chunk_rows": chunk_rows,
        "concurrency": list(concurrency),
        "requests_per_worker": requests_per_worker,
        "queries": sorted(queries),
        "records": records,
        "shed": shed,
        "drain": drain,
        "parity_ok": parity_ok,
        "shed_ok": shed_ok,
        "drain_ok": drain_ok,
    }


def serve_http_report(scale: int = 4, chunk_rows: int = 1024,
                      concurrency: tuple[int, ...] = DEFAULT_CONCURRENCY,
                      requests_per_worker: int = 4) -> Report:
    """Figure-style report: p50/p99 seconds per request over the
    concurrency sweep, cache on vs off."""
    payload = serve_http_records(scale=scale, chunk_rows=chunk_rows,
                                 concurrency=concurrency,
                                 requests_per_worker=requests_per_worker)
    report = Report(
        title=f"HTTP serving latency under concurrency "
              f"(scale={scale}, chunk={chunk_rows}, "
              f"parity={'OK' if payload['parity_ok'] else 'MISMATCH'}, "
              f"shed={'OK' if payload['shed_ok'] else 'BROKEN'}, "
              f"drain={'OK' if payload['drain_ok'] else 'BROKEN'})",
        x_label="clients", y_label="seconds per request")
    for record in payload["records"]:
        for stat in ("p50", "p99"):
            report.series_named(
                f"cache={record['cache']} {stat}").add(
                record["concurrency"], record[f"{stat}_seconds"])
    return report
