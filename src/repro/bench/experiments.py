"""End-to-end reproductions of the paper's evaluation figures.

Each ``figXX_*`` function runs the experiment at laptop scale and returns
:class:`~repro.bench.harness.Report` objects whose series mirror the
lines of the paper's plot. ``benchmarks/run_all.py`` prints them all and
EXPERIMENTS.md records the measured shapes against the paper's.

Scales default to {1, 2, 4, 8} (the paper sweeps 1..64 on a C++ engine;
pure Python needs smaller absolute sizes, the *trends* are the point).
Chunk sizes default to {256, 1K, 4K, 16K} rows — the paper's 16K..1M
divided by 64, keeping the ratio between chunk size and dataset size
comparable.
"""

from __future__ import annotations

import os
import tempfile

from repro.baselines import prepare_system
from repro.bench import harness
from repro.bench.harness import Report, dataset, time_call, time_query
from repro.cohana import CohanaEngine
from repro.cohort import NEVER_BORN, birth_times
from repro.datagen import BIRTH_ACTIONS, GameConfig
from repro.schema import parse_timestamp
from repro.storage import collect_stats, compress, load, save
from repro.workloads import queries as W

DEFAULT_SCALES = (1, 2, 4, 8)
DEFAULT_CHUNK_ROWS = (256, 1024, 4096, 16384)
TABLE = "GameActions"
_START = GameConfig().start

_ENGINES: dict[tuple, CohanaEngine] = {}
_SYSTEMS: dict[tuple, object] = {}


def cohana_engine(scale: int, chunk_rows: int) -> CohanaEngine:
    """A COHANA engine with the scale-``scale`` dataset loaded (cached;
    keyed by the effective seed so ``set_default_seed`` is honoured)."""
    key = (scale, chunk_rows, harness.DEFAULT_SEED)
    if key not in _ENGINES:
        engine = CohanaEngine()
        engine.create_table(TABLE, dataset(scale),
                            target_chunk_rows=chunk_rows)
        _ENGINES[key] = engine
    return _ENGINES[key]


def prepared_system(label: str, scale: int, chunk_rows: int = 4096):
    """A ready-to-query evaluation system (cached per scale + seed)."""
    key = (label, scale, chunk_rows, harness.DEFAULT_SEED)
    if key not in _SYSTEMS:
        _SYSTEMS[key] = prepare_system(
            label, dataset(scale), birth_actions=BIRTH_ACTIONS,
            table_name=TABLE, chunk_rows=chunk_rows)
    return _SYSTEMS[key]


def _main_query(name: str) -> str:
    return W.MAIN_QUERIES[name](TABLE)


# ---------------------------------------------------------------------------
# Figure 6: COHANA under varying chunk size
# ---------------------------------------------------------------------------


def fig06_chunk_size(scales=DEFAULT_SCALES, chunk_rows=DEFAULT_CHUNK_ROWS,
                     query_names=("Q1", "Q2", "Q3", "Q4"),
                     repeat: int = 3) -> list[Report]:
    """Query time vs scale, one line per chunk size, one report per
    query (Figure 6a-d)."""
    reports = []
    for qname in query_names:
        report = Report(title=f"Figure 6 ({qname}): COHANA time vs "
                              f"chunk size", x_label="scale",
                        y_label="seconds")
        for rows in chunk_rows:
            series = report.series_named(f"chunk={rows}")
            for scale in scales:
                engine = cohana_engine(scale, rows)
                text = _main_query(qname)
                series.add(scale,
                           time_call(lambda: engine.query(text),
                                     repeat=repeat))
        reports.append(report)
    return reports


# ---------------------------------------------------------------------------
# Figure 7: storage space vs chunk size
# ---------------------------------------------------------------------------


def fig07_storage(scales=DEFAULT_SCALES,
                  chunk_rows=DEFAULT_CHUNK_ROWS) -> Report:
    """Compressed size (KiB) vs scale, one line per chunk size."""
    report = Report(title="Figure 7: storage space vs chunk size",
                    x_label="scale", y_label="KiB compressed")
    for rows in chunk_rows:
        series = report.series_named(f"chunk={rows}")
        for scale in scales:
            stats = collect_stats(cohana_engine(scale, rows).table(TABLE))
            series.add(scale, round(stats.total_bytes / 1024, 2))
    return report


# ---------------------------------------------------------------------------
# Figure 8: effect of birth selection (Q5/Q6 vs birth CDF)
# ---------------------------------------------------------------------------


def fig08_birth_selection(days=(1, 3, 5, 8, 12, 17, 23, 30, 39),
                          chunk_rows: int = 4096,
                          repeat: int = 3) -> Report:
    """Q5/Q6 time (normalized by Q1/Q3) against the birth CDF."""
    engine = cohana_engine(1, chunk_rows)
    table = dataset(1)
    base_q1 = time_call(lambda: engine.query(_main_query("Q1")),
                        repeat=repeat)
    base_q3 = time_call(lambda: engine.query(_main_query("Q3")),
                        repeat=repeat)
    births = birth_times(table, "launch")
    start = parse_timestamp(_START)
    report = Report(title="Figure 8: effect of birth selection",
                    x_label="day", y_label="normalized time / CDF")
    cdf = report.series_named("birth CDF")
    sq5 = report.series_named("Q5 (norm. by Q1)")
    sq6 = report.series_named("Q6 (norm. by Q3)")
    total_users = len(births)
    for day in days:
        d2 = W.day_offset(_START, day)
        born = sum(1 for t in births.values()
                   if t != NEVER_BORN and t <= start + day * 86400)
        cdf.add(day, round(born / total_users, 3))
        t5 = time_call(lambda: engine.query(W.q5(_START, d2, TABLE)),
                       repeat=repeat)
        t6 = time_call(lambda: engine.query(W.q6(_START, d2, TABLE)),
                       repeat=repeat)
        sq5.add(day, round(t5 / base_q1, 3))
        sq6.add(day, round(t6 / base_q3, 3))
    return report


# ---------------------------------------------------------------------------
# Figure 9: effect of age selection (Q7/Q8)
# ---------------------------------------------------------------------------


def fig09_age_selection(ages=(1, 2, 4, 6, 8, 10, 12, 14),
                        chunk_rows: int = 4096,
                        repeat: int = 3) -> Report:
    """Q7/Q8 time normalized by Q1/Q3, varying the age cutoff."""
    engine = cohana_engine(1, chunk_rows)
    base_q1 = time_call(lambda: engine.query(_main_query("Q1")),
                        repeat=repeat)
    base_q3 = time_call(lambda: engine.query(_main_query("Q3")),
                        repeat=repeat)
    report = Report(title="Figure 9: effect of age selection",
                    x_label="age(day)", y_label="normalized time")
    sq7 = report.series_named("Q7 (norm. by Q1)")
    sq8 = report.series_named("Q8 (norm. by Q3)")
    for g in ages:
        t7 = time_call(lambda g=g: engine.query(W.q7(g, TABLE)),
                       repeat=repeat)
        t8 = time_call(lambda g=g: engine.query(W.q8(g, TABLE)),
                       repeat=repeat)
        sq7.add(g, round(t7 / base_q1, 3))
        sq8.add(g, round(t8 / base_q3, 3))
    return report


# ---------------------------------------------------------------------------
# Figure 10: materialized view generation time
# ---------------------------------------------------------------------------


def fig10_mv_generation(scales=DEFAULT_SCALES,
                        chunk_rows: int = 4096) -> Report:
    """MV build time (PG / MonetDB stand-ins) vs COHANA compression."""
    from repro.baselines import MvScheme
    from repro.relational import Database

    report = Report(title="Figure 10: time for generating the MV",
                    x_label="scale", y_label="seconds")
    for label, executor in (("PG", "rows"), ("MONET", "columnar")):
        series = report.series_named(label)
        for scale in scales:
            table = dataset(scale)

            def build(executor=executor, table=table):
                db = Database(executor=executor)
                db.register_activity_table(TABLE, table)
                MvScheme(db, TABLE, table.schema).prepare("launch")

            series.add(scale, time_call(build, repeat=1))
    series = report.series_named("COHANA")
    for scale in scales:
        table = dataset(scale)
        series.add(scale, time_call(
            lambda: compress(table, target_chunk_rows=chunk_rows),
            repeat=1))
    return report


# ---------------------------------------------------------------------------
# Figure 11: comparative study
# ---------------------------------------------------------------------------

FIG11_SYSTEMS = ("COHANA", "MONET-M", "MONET-S", "PG-M", "PG-S")

#: Largest scale each system runs at by default. The row engine becomes
#: impractical quickly — mirroring the paper, where Postgres could not
#: even build the scale-64 MV before running out of disk.
FIG11_MAX_SCALE = {"PG-S": 2, "PG-M": 4}


def fig11_comparison(scales=DEFAULT_SCALES, systems=FIG11_SYSTEMS,
                     query_names=("Q1", "Q2", "Q3", "Q4"),
                     chunk_rows: int = 4096,
                     repeat: int = 1,
                     max_scale: dict | None = None) -> list[Report]:
    """Query time per evaluation scheme (Figure 11a-d)."""
    caps = FIG11_MAX_SCALE if max_scale is None else max_scale
    reports = []
    for qname in query_names:
        report = Report(title=f"Figure 11 ({qname}): comparison of "
                              f"evaluation schemes", x_label="scale",
                        y_label="seconds")
        for label in systems:
            series = report.series_named(label)
            for scale in scales:
                if scale > caps.get(label, max(scales)):
                    continue
                system = prepared_system(label, scale, chunk_rows)
                query = W.bind(_main_query(qname),
                               dataset(scale).schema)
                series.add(scale, time_call(lambda: system.run(query),
                                            repeat=repeat))
        reports.append(report)
    return reports


# ---------------------------------------------------------------------------
# Parallel scan scaling (ours): serial vs threads vs processes backends
# ---------------------------------------------------------------------------

PARALLEL_SCALES = (1, 2, 4)
PARALLEL_JOBS = (1, 2, 4)
PARALLEL_BACKENDS = ("serial", "threads", "processes")

_DISK_ENGINES: dict[tuple, CohanaEngine] = {}
#: One temp dir for every bench .cohana file; its finalizer removes the
#: files at interpreter exit, so repeated runs do not litter /tmp.
_DISK_DIR: tempfile.TemporaryDirectory | None = None


def cohana_engine_on_disk(scale: int, chunk_rows: int) -> CohanaEngine:
    """Like :func:`cohana_engine`, but the table is saved to a ``.cohana``
    file (format v3) and loaded back memory-mapped — the setup the
    ``processes`` backend needs (workers reopen the file by path) and
    the one real deployments run in."""
    global _DISK_DIR
    key = (scale, chunk_rows, harness.DEFAULT_SEED)
    if key not in _DISK_ENGINES:
        if _DISK_DIR is None:
            _DISK_DIR = tempfile.TemporaryDirectory(
                prefix="cohana-bench-")
        compressed = compress(dataset(scale),
                              target_chunk_rows=chunk_rows)
        path = os.path.join(
            _DISK_DIR.name,
            f"s{scale}-c{chunk_rows}-{harness.DEFAULT_SEED}.cohana")
        save(compressed, path)
        engine = CohanaEngine()
        engine.register(TABLE, load(path))
        _DISK_ENGINES[key] = engine
    return _DISK_ENGINES[key]


def parallel_scaling(scales=PARALLEL_SCALES, jobs_counts=PARALLEL_JOBS,
                     chunk_rows: int = 1024,
                     query_names=("Q1", "Q4"),
                     executor: str = "vectorized",
                     repeat: int = 3,
                     backends=PARALLEL_BACKENDS) -> Report:
    """Query time vs scan-worker count: one series per
    (query, scale, backend).

    Sweeps every execution backend over memory-mapped on-disk tables:
    ``serial`` is the single-point baseline, ``threads`` is GIL-bound on
    the pure-Python kernels (flat by construction; the honest numbers
    are the point), and ``processes`` is the true multi-core path —
    workers reopen the ``.cohana`` file by path and deserialize only the
    chunks they scan, so only partial aggregates cross the process
    boundary. Scaling is bounded by the machine: on a single-core
    container every backend is flat and ``processes`` additionally pays
    the pool spawn, which is exactly what the recorded numbers should
    show there.
    """
    report = Report(title="Parallel scan scaling (chunk pipeline, "
                          f"{executor} kernel)",
                    x_label="jobs", y_label="seconds")
    for qname in query_names:
        text = _main_query(qname)
        for scale in scales:
            engine = cohana_engine_on_disk(scale, chunk_rows)
            for backend in backends:
                series = report.series_named(
                    f"{qname} scale={scale} {backend}")
                counts = (1,) if backend == "serial" else jobs_counts
                for jobs in counts:
                    series.add(jobs, time_query(
                        engine, text, repeat=repeat, executor=executor,
                        jobs=jobs, backend=backend))
    return report


def parallel_scaling_records(report: Report) -> list[dict]:
    """Flatten a :func:`parallel_scaling` report into JSON-able records
    with per-worker-count speedup relative to the series' jobs=1."""
    records = []
    for series in report.series:
        base = next((sec for jobs, sec in series.points if jobs == 1),
                    None)
        for jobs, seconds in series.points:
            records.append({
                "series": series.label,
                "jobs": jobs,
                "seconds": seconds,
                "speedup": round(base / seconds, 3) if base else None,
            })
    return records


def selective_scan_query(table: str = TABLE) -> str:
    """The selective-scan query: a birth condition (``role = "dwarf"``)
    that is selective at the *user* level but not chunk-prunable —
    every chunk dictionary contains every role — so all chunks survive
    pruning and the backends get identical per-chunk work to
    parallelize."""
    return (f'SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent '
            f'FROM {table} '
            f'BIRTH FROM action = "launch" AND role = "dwarf" '
            f'AGE ACTIVITIES IN action = "shop" COHORT BY country')


def selective_scan_records(scale: int = 4, chunk_rows: int = 1024,
                           jobs_counts=PARALLEL_JOBS,
                           repeat: int = 3) -> list[dict]:
    """The selective-scan experiment over an on-disk (mmap) table.

    Runs :func:`selective_scan_query` under every backend and worker
    count. Each record carries the result digest so cross-backend
    parity is checked by construction, not assumed.
    """
    import hashlib

    engine = cohana_engine_on_disk(scale, chunk_rows)
    text = selective_scan_query()
    records = []
    digests = set()
    for backend in PARALLEL_BACKENDS:
        counts = (1,) if backend == "serial" else jobs_counts
        # One digest per backend: the result does not depend on the
        # worker count (the per-jobs parity is the test suite's job),
        # so don't pay an extra untimed query per record.
        result = engine.query(text, jobs=counts[0], backend=backend)
        digest = hashlib.sha256(
            repr(result.rows).encode()).hexdigest()[:16]
        digests.add(digest)
        for jobs in counts:
            seconds = time_query(engine, text, repeat=repeat,
                                 jobs=jobs, backend=backend)
            records.append({
                "query": "selective_scan", "scale": scale,
                "backend": backend, "jobs": jobs, "seconds": seconds,
                "result_digest": digest,
            })
    if len(digests) != 1:
        raise RuntimeError(
            f"backend parity violated in selective-scan bench: "
            f"{sorted(digests)}")
    return records


# ---------------------------------------------------------------------------
# Compressed-domain scans (ours): scan_mode=compressed vs decoded
# ---------------------------------------------------------------------------


def selective_queries(table: str = TABLE) -> dict[str, str]:
    """The selective workload: birth conditions whose coded-domain
    bounds give zone maps / chunk dictionaries something to prune.

    ``rare_country`` / ``rare_city`` hit the Zipf tail (values absent
    from most chunk dictionaries), ``country_range`` is a string range
    only persisted zone maps can prune, ``country_in`` mixes two rare
    members, and ``Q2_narrow`` is the paper's birth-time window (pruned
    by time MIN/MAX in every mode — the baseline case where compressed
    has no pruning edge; Q4 sits in between).
    """
    d2 = W.day_offset(_START, 3)
    return {
        "Q2_narrow": W.q5(_START, d2, table),
        "Q4": W.q4(table),
        "rare_country": (
            f'SELECT role, COHORTSIZE, AGE, UserCount() FROM {table} '
            f'BIRTH FROM action = "launch" AND country = "Thailand" '
            f'COHORT BY role'),
        "rare_city": (
            f'SELECT country, COHORTSIZE, AGE, Sum(gold) FROM {table} '
            f'BIRTH FROM action = "shop" AND city = "China City 2" '
            f'COHORT BY country'),
        "country_range": (
            f'SELECT country, COHORTSIZE, AGE, UserCount() FROM {table} '
            f'BIRTH FROM action = "launch" AND country >= "Vietnam" '
            f'COHORT BY country'),
        "country_in": (
            f'SELECT country, COHORTSIZE, AGE, Avg(gold) FROM {table} '
            f'BIRTH FROM action = "shop" AND '
            f'country IN ["Thailand", "Peru"] COHORT BY country'),
    }


#: Queries whose birth bounds only the coded-domain metadata can prune —
#: the subset where compressed mode must beat decoded outright.
SELECTIVE_SET = ("rare_country", "rare_city", "country_range",
                 "country_in")


def compressed_scan_records(scale: int = 8, chunk_rows: int = 1024,
                            repeat: int = 5, jobs: int = 1,
                            executor: str = "vectorized") -> list[dict]:
    """Measure the selective workload under both scan modes.

    One record per (query, scan_mode) with wall time, the scheduler's
    pruning counters, and a result digest (identical digests across
    modes are the parity check recorded in ``BENCH_compressed.json``).
    """
    import hashlib

    engine = cohana_engine(scale, chunk_rows)
    records = []
    for qname, text in selective_queries().items():
        for mode in ("decoded", "compressed"):
            result, stats = engine.query_with_stats(
                text, executor=executor, jobs=jobs, scan_mode=mode)
            seconds = time_query(engine, text, repeat=repeat,
                                 executor=executor, jobs=jobs,
                                 scan_mode=mode)
            digest = hashlib.sha256(
                repr(result.rows).encode()).hexdigest()[:16]
            records.append({
                "query": qname,
                "scan_mode": mode,
                "selective": qname in SELECTIVE_SET,
                "seconds": seconds,
                "chunks_total": stats.chunks_total,
                "chunks_scanned": stats.chunks_scanned,
                "chunks_pruned": stats.chunks_pruned,
                "chunks_pruned_zone": stats.chunks_pruned_zone,
                "rows_scanned": stats.rows_scanned,
                "result_rows": len(result.rows),
                "result_digest": digest,
            })
    return records


def compressed_scan(scale: int = 8, chunk_rows: int = 1024,
                    repeat: int = 5) -> Report:
    """Figure-style report: decoded vs compressed seconds per query."""
    report = Report(title="Compressed-domain scans with zone-map pruning "
                          f"(scale={scale}, chunk={chunk_rows})",
                    x_label="query", y_label="seconds")
    records = compressed_scan_records(scale=scale, chunk_rows=chunk_rows,
                                      repeat=repeat)
    pruned = report.series_named("chunks pruned (compressed)")
    for record in records:
        series = report.series_named(f"scan_mode={record['scan_mode']}")
        series.add(record["query"], round(record["seconds"], 5))
        if record["scan_mode"] == "compressed":
            pruned.add(record["query"], record["chunks_pruned"])
    return report


# ---------------------------------------------------------------------------
# Operator-tree execution (ours): lowered plans vs the flat kernel loop
# ---------------------------------------------------------------------------


def kernel_parity_records(scale: int = 8, chunk_rows: int = 1024) -> dict:
    """Vectorized-vs-iterator digest parity over the selective workload.

    The cheapest end-to-end witness that the two kernel families still
    agree after any pipeline change: every recorded bench experiment
    folds this sweep into its payload (``kernel_parity_ok``), so
    ``tools/bench_report.py --strict`` fails the whole bench run on a
    kernel divergence no matter which experiment was running.
    """
    import hashlib

    engine = cohana_engine(scale, chunk_rows)
    records = []
    for qname, text in selective_queries().items():
        digests = {}
        for executor in ("vectorized", "iterator"):
            result = engine.query(text, executor=executor)
            digests[executor] = hashlib.sha256(
                repr(result.rows).encode()).hexdigest()[:16]
        records.append({
            "query": qname,
            "digest_vectorized": digests["vectorized"],
            "digest_iterator": digests["iterator"],
            "parity": digests["vectorized"] == digests["iterator"],
        })
    return {"kernel_parity": records,
            "kernel_parity_ok": all(r["parity"] for r in records)}


def operator_tree_records(scale: int = 4, chunk_rows: int = 1024,
                          repeat: int = 5, jobs: int = 2) -> dict:
    """Operator-tree execution vs the pre-refactor flat kernel loop.

    Times the exact unit the refactor changed — the per-chunk scan,
    once as the old flat loop (``kernel.scan`` called directly per
    chunk) and once through the lowered physical tree
    (``PhysicalPlan.execute_chunk``) — over every selective query, so
    the tree's dispatch overhead is measured against nothing but
    itself. Also checks result-digest parity on all three scan
    backends over the on-disk (mmap) table, which is the setup the
    ``processes`` backend needs.
    """
    import hashlib

    from repro.cohana.operators import lower_plan
    from repro.cohana.pipeline import get_kernel
    from repro.cohana.planner import plan_query

    engine = cohana_engine_on_disk(scale, chunk_rows)
    table = engine.table(TABLE)
    kernel = get_kernel("vectorized")
    chunks = list(table.chunks)
    records = []
    for qname in SELECTIVE_SET:
        text = selective_queries()[qname]
        plan = plan_query(engine.parse(text), table)
        physical = lower_plan(plan, kernel)

        def flat_scan():
            for chunk in chunks:
                kernel.scan(table, chunk, plan)

        def tree_scan():
            for chunk in chunks:
                physical.execute_chunk(table, chunk)

        flat_seconds = time_call(flat_scan, repeat=repeat)
        tree_seconds = time_call(tree_scan, repeat=repeat)
        ratio = (tree_seconds / flat_seconds if flat_seconds else None)
        digests = {}
        for backend in ("serial", "threads", "processes"):
            result = engine.query(
                text, backend=backend,
                jobs=1 if backend == "serial" else jobs)
            digests[backend] = hashlib.sha256(
                repr(result.rows).encode()).hexdigest()[:16]
        records.append({
            "query": qname,
            "flat_seconds": flat_seconds,
            "tree_seconds": tree_seconds,
            "ratio": round(ratio, 3) if ratio is not None else None,
            "digest_serial": digests["serial"],
            "digest_threads": digests["threads"],
            "digest_processes": digests["processes"],
            "parity": len(set(digests.values())) == 1,
        })
    latency_ok = all(r["ratio"] is not None and r["ratio"] <= 1.10
                     for r in records)
    parity_ok = all(r["parity"] for r in records)
    return {"scale": scale, "chunk_rows": chunk_rows, "jobs": jobs,
            "records": records, "latency_ok": latency_ok,
            "parity_ok": parity_ok}


def operator_tree(scale: int = 4, chunk_rows: int = 1024,
                  repeat: int = 5) -> Report:
    """Figure-style report: flat-loop vs operator-tree seconds per
    selective query."""
    payload = operator_tree_records(scale=scale, chunk_rows=chunk_rows,
                                    repeat=repeat)
    report = Report(title="Operator-tree execution vs flat kernel loop "
                          f"(scale={scale}, chunk={chunk_rows})",
                    x_label="query", y_label="seconds")
    flat = report.series_named("flat kernel loop")
    tree = report.series_named("operator tree")
    for record in payload["records"]:
        flat.add(record["query"], round(record["flat_seconds"], 5))
        tree.add(record["query"], round(record["tree_seconds"], 5))
    return report


# ---------------------------------------------------------------------------
# Query-service result cache (ours): cold vs cached serving
# ---------------------------------------------------------------------------


def service_cache_records(scale: int = 8, chunk_rows: int = 1024,
                          repeat: int = 5) -> list[dict]:
    """Cold vs cached serving through :class:`repro.service.QueryService`.

    For each workload query: the *cold* time is a full admission with an
    empty cache (parse/fingerprint + plan + chunk scan + merge, i.e. a
    ``miss``), the *warm* time is the same call served from the result
    cache (a ``hit``). Each record carries both digests — the hit must
    be byte-identical to the direct engine execution, or the cache is
    returning fiction faster.
    """
    import hashlib

    from repro.service import QueryService

    engine = cohana_engine_on_disk(scale, chunk_rows)
    service = QueryService(engine)
    queries = {
        "Q1": _main_query("Q1"),
        "Q4": _main_query("Q4"),
        "selective_scan": selective_scan_query(),
    }
    records = []
    for qname, text in queries.items():
        bound = engine.parse(text)
        direct = engine.query(bound)
        direct_digest = hashlib.sha256(
            repr(direct.rows).encode()).hexdigest()[:16]

        def cold_run():
            service.clear()
            return service.query(bound)

        cold_seconds = time_call(cold_run, repeat=repeat)
        # The last cold run left the cache warm; every call below hits.
        warm_result, warm_stats = service.query_with_stats(bound)
        warm_seconds = time_call(lambda: service.query(bound),
                                 repeat=repeat)
        warm_digest = hashlib.sha256(
            repr(warm_result.rows).encode()).hexdigest()[:16]
        records.append({
            "query": qname,
            "scale": scale,
            "chunk_rows": chunk_rows,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": (round(cold_seconds / warm_seconds, 2)
                        if warm_seconds else None),
            "warm_disposition": warm_stats.cache_disposition,
            "result_digest_direct": direct_digest,
            "result_digest_cached": warm_digest,
            "digest_parity": warm_digest == direct_digest,
        })
    return records


def service_cache(scale: int = 8, chunk_rows: int = 1024,
                  repeat: int = 5) -> Report:
    """Figure-style report: cold vs cached seconds per query."""
    report = Report(title="Query-service result cache: cold vs cached "
                          f"(scale={scale}, chunk={chunk_rows})",
                    x_label="query", y_label="seconds")
    records = service_cache_records(scale=scale, chunk_rows=chunk_rows,
                                    repeat=repeat)
    cold = report.series_named("cold (miss)")
    warm = report.series_named("cached (hit)")
    speedup = report.series_named("speedup (x)")
    for record in records:
        cold.add(record["query"], round(record["cold_seconds"], 6))
        warm.add(record["query"], round(record["warm_seconds"], 6))
        speedup.add(record["query"], record["speedup"])
    return report


# ---------------------------------------------------------------------------
# Sharded tables (ours): append-only ingestion vs full rewrite
# ---------------------------------------------------------------------------


def _user_batches(table, n_batches: int) -> list:
    """Split a sorted activity table into ``n_batches`` contiguous,
    user-disjoint slices (the shard invariant: a user's tuples land in
    exactly one batch)."""
    blocks = list(table.user_blocks())
    per = max(1, -(-len(blocks) // n_batches))
    batches = []
    for i in range(0, len(blocks), per):
        group = blocks[i:i + per]
        batches.append(table.slice(group[0][1], group[-1][2]))
    return batches


def shard_append_records(scale: int = 4, n_batches: int = 4,
                         chunk_rows: int = 1024,
                         repeat: int = 3) -> dict:
    """The append-only ingestion experiment.

    Simulates a growing activity table arriving in ``n_batches``
    user-disjoint batches. For each batch it measures the **append**
    path (write one new shard + atomically update the manifest) against
    the **full rewrite** path (recompress and re-save everything seen
    so far as a single ``.cohana`` file) — the cost a single-file table
    pays for the same new data. After ingestion it checks scan parity
    (the 4-shard table must answer queries digest-identically to the
    single file holding the same data) and records per-shard pruning
    stats for a selective query.
    """
    import hashlib
    import time as _time

    from repro.storage import append_shard

    table = dataset(scale).sorted_by_primary_key()
    batches = _user_batches(table, n_batches)
    global _DISK_DIR
    if _DISK_DIR is None:
        _DISK_DIR = tempfile.TemporaryDirectory(prefix="cohana-bench-")
    root = tempfile.mkdtemp(prefix="shards-", dir=_DISK_DIR.name)
    shard_dir = os.path.join(root, "sharded")
    single_path = os.path.join(root, "single.cohana")

    steps = []
    seen = None
    for i, batch in enumerate(batches, start=1):
        t0 = _time.perf_counter()
        entry = append_shard(shard_dir, batch,
                             target_chunk_rows=chunk_rows)
        append_seconds = _time.perf_counter() - t0
        seen = batch if seen is None else seen.concat(batch)
        t0 = _time.perf_counter()
        rewrite_bytes = save(compress(seen, target_chunk_rows=chunk_rows,
                                      assume_sorted=True), single_path)
        rewrite_seconds = _time.perf_counter() - t0
        steps.append({
            "step": i,
            "rows_appended": len(batch),
            "rows_total": len(seen),
            "append_seconds": round(append_seconds, 6),
            "rewrite_seconds": round(rewrite_seconds, 6),
            "append_bytes": entry["n_bytes"],
            "rewrite_bytes": rewrite_bytes,
            "speedup": round(rewrite_seconds / append_seconds, 3)
            if append_seconds else None,
        })

    sharded_engine = CohanaEngine()
    sharded_engine.load_table(TABLE, shard_dir)
    single_engine = CohanaEngine()
    single_engine.load_table(TABLE, single_path)
    parity = []
    for qname, text in {
        "Q1": _main_query("Q1"),
        "rare_country": selective_queries()["rare_country"],
        "selective_scan": selective_scan_query(),
    }.items():
        digests = {}
        for label, engine in (("sharded", sharded_engine),
                              ("single", single_engine)):
            result = engine.query(text)
            digests[label] = hashlib.sha256(
                repr(result.rows).encode()).hexdigest()[:16]
        seconds_sharded = time_query(sharded_engine, text, repeat=repeat)
        seconds_single = time_query(single_engine, text, repeat=repeat)
        parity.append({
            "query": qname,
            "digest_sharded": digests["sharded"],
            "digest_single": digests["single"],
            "digest_parity": digests["sharded"] == digests["single"],
            "seconds_sharded": seconds_sharded,
            "seconds_single": seconds_single,
        })
    _, prune_stats = sharded_engine.query_with_stats(
        selective_queries()["rare_country"], scan_mode="compressed")
    pruning = {
        "query": "rare_country",
        "shards_total": prune_stats.shards_total,
        "shards_scanned": prune_stats.shards_scanned,
        "chunks_total": prune_stats.chunks_total,
        "chunks_scanned": prune_stats.chunks_scanned,
        "chunks_pruned": prune_stats.chunks_pruned,
        "chunks_pruned_zone": prune_stats.chunks_pruned_zone,
    }
    return {"scale": scale, "n_batches": n_batches,
            "chunk_rows": chunk_rows, "steps": steps,
            "parity": parity, "pruning": pruning}


def shard_append(scale: int = 4, n_batches: int = 4,
                 chunk_rows: int = 1024, repeat: int = 3) -> Report:
    """Figure-style report: append vs full-rewrite cost per batch."""
    payload = shard_append_records(scale=scale, n_batches=n_batches,
                                   chunk_rows=chunk_rows, repeat=repeat)
    report = Report(title="Sharded append vs full rewrite "
                          f"(scale={scale}, {n_batches} batches)",
                    x_label="batch", y_label="seconds / bytes")
    append_s = report.series_named("append seconds")
    rewrite_s = report.series_named("rewrite seconds")
    append_b = report.series_named("append KiB")
    rewrite_b = report.series_named("rewrite KiB")
    for step in payload["steps"]:
        append_s.add(step["step"], step["append_seconds"])
        rewrite_s.add(step["step"], step["rewrite_seconds"])
        append_b.add(step["step"], round(step["append_bytes"] / 1024, 1))
        rewrite_b.add(step["step"],
                      round(step["rewrite_bytes"] / 1024, 1))
    return report


# ---------------------------------------------------------------------------
# Shard compaction (ours): many-shard latency recovers, caches survive
# ---------------------------------------------------------------------------


def compaction_records(scale: int = 4, n_batches: int = 6,
                       chunk_rows: int = 1024,
                       repeat: int = 3) -> dict:
    """The shard-compaction experiment.

    Ingests the dataset as ``n_batches`` user-disjoint appends (each
    O(new data) — the per-batch bytes are recorded as the witness),
    measures query latency over the resulting many-shard table, then
    compacts it to one shard and measures again, against a single-file
    table of the same data as the floor. Three verdicts come out:

    * ``parity_ok`` — result digests identical pre-compaction,
      post-compaction, and on the single file (the workload includes
      ``COHORTSIZE`` and ``UserCount()``);
    * ``recovery_ok`` — post-compaction latency within 1.25x of the
      single-file table on every query (small absolute epsilon for
      timer noise on smoke-sized data);
    * ``token_ok`` — the engine's version token survives the
      compaction (logical digest unchanged) and a service result
      cached before the compaction is served as a **hit** after it;
    * ``append_ok`` — the last append wrote one batch's bytes, not
      the table's.
    """
    import hashlib
    import time as _time

    from repro.service import QueryService
    from repro.storage import (
        append_shard,
        compact,
        gc_shards,
        read_manifest,
    )

    table = dataset(scale).sorted_by_primary_key()
    batches = _user_batches(table, n_batches)
    global _DISK_DIR
    if _DISK_DIR is None:
        _DISK_DIR = tempfile.TemporaryDirectory(prefix="cohana-bench-")
    root = tempfile.mkdtemp(prefix="compaction-", dir=_DISK_DIR.name)
    shard_dir = os.path.join(root, "sharded")
    single_path = os.path.join(root, "single.cohana")

    steps = []
    for i, batch in enumerate(batches, start=1):
        t0 = _time.perf_counter()
        entry = append_shard(shard_dir, batch,
                             target_chunk_rows=chunk_rows)
        steps.append({
            "step": i,
            "rows_appended": len(batch),
            "append_seconds": round(_time.perf_counter() - t0, 6),
            "append_bytes": entry["n_bytes"],
        })
    single_bytes = save(compress(table, target_chunk_rows=chunk_rows,
                                 assume_sorted=True), single_path)

    queries = {
        "Q1": _main_query("Q1"),
        "rare_country": selective_queries()["rare_country"],
    }
    engine = CohanaEngine()
    engine.load_table(TABLE, shard_dir)
    service = QueryService(engine)
    pre = {}
    for qname, text in queries.items():
        result = engine.query(text)
        pre[qname] = {
            "digest": hashlib.sha256(
                repr(result.rows).encode()).hexdigest()[:16],
            "seconds": time_query(engine, text, repeat=repeat),
        }
    token_pre = engine.version_token(TABLE)
    generation_pre = read_manifest(shard_dir)["generation"]
    n_shards_pre = engine.table(TABLE).n_shards
    service.query(queries["Q1"])  # prime the result cache

    t0 = _time.perf_counter()
    # The engine still holds the pre-compaction snapshot open, so its
    # shard files are pinned: this GC pass collects nothing. Only
    # after refresh_table drops that snapshot does a second pass reap
    # the superseded files — the pin lifecycle, measured.
    compact_result = compact(shard_dir)
    compact_seconds = _time.perf_counter() - t0
    engine.refresh_table(TABLE)
    gc_after_refresh = gc_shards(shard_dir)
    token_post = engine.version_token(TABLE)
    _, warm_stats = service.query_with_stats(queries["Q1"])

    post_engine = CohanaEngine()
    post_engine.load_table(TABLE, shard_dir)
    single_engine = CohanaEngine()
    single_engine.load_table(TABLE, single_path)
    parity = []
    for qname, text in queries.items():
        digests = {}
        seconds = {}
        for label, eng in (("post", post_engine),
                           ("single", single_engine)):
            result = eng.query(text)
            digests[label] = hashlib.sha256(
                repr(result.rows).encode()).hexdigest()[:16]
            seconds[label] = time_query(eng, text, repeat=repeat)
        parity.append({
            "query": qname,
            "digest_pre": pre[qname]["digest"],
            "digest_post": digests["post"],
            "digest_single": digests["single"],
            "digest_parity": (pre[qname]["digest"] == digests["post"]
                              == digests["single"]),
            "seconds_pre": pre[qname]["seconds"],
            "seconds_post": seconds["post"],
            "seconds_single": seconds["single"],
            "recovery_ratio": round(
                seconds["post"] / seconds["single"], 3)
            if seconds["single"] else None,
        })

    last = steps[-1]
    return {
        "scale": scale, "n_batches": n_batches,
        "chunk_rows": chunk_rows, "steps": steps,
        "single_bytes": single_bytes,
        "compact_seconds": round(compact_seconds, 6),
        "generation_pre": generation_pre,
        "generation_post": compact_result.generation,
        "n_shards_pre": n_shards_pre,
        "n_shards_post": len(read_manifest(shard_dir)["shards"]),
        "gc_while_pinned": list(compact_result.gc_removed),
        "gc_after_refresh": gc_after_refresh,
        "token_pre": token_pre,
        "token_post": token_post,
        "warm_disposition": warm_stats.cache_disposition,
        "parity": parity,
        "parity_ok": all(p["digest_parity"] for p in parity),
        # 1.25x the single-file floor, plus 10 ms of absolute slack:
        # at smoke scale a query runs in hundreds of microseconds and
        # scheduler jitter alone exceeds a 25% band.
        "recovery_ok": all(
            p["seconds_post"] <= 1.25 * p["seconds_single"] + 0.01
            for p in parity),
        "token_ok": (token_pre == token_post
                     and warm_stats.cache_disposition == "hit"),
        "append_ok": last["append_bytes"] < single_bytes,
    }


def compaction(scale: int = 4, n_batches: int = 6,
               chunk_rows: int = 1024, repeat: int = 3) -> Report:
    """Figure-style report: query latency before/after compaction vs
    the single-file floor."""
    payload = compaction_records(scale=scale, n_batches=n_batches,
                                 chunk_rows=chunk_rows, repeat=repeat)
    report = Report(title=f"Shard compaction (scale={scale}, "
                          f"{payload['n_shards_pre']} shards -> "
                          f"{payload['n_shards_post']})",
                    x_label="query", y_label="seconds")
    pre = report.series_named(f"{payload['n_shards_pre']}-shard table")
    post = report.series_named("compacted table")
    single = report.series_named("single file")
    for p in payload["parity"]:
        pre.add(p["query"], p["seconds_pre"])
        post.add(p["query"], p["seconds_post"])
        single.add(p["query"], p["seconds_single"])
    return report


# ---------------------------------------------------------------------------
# Materialized views (ours): incremental per-shard refresh
# ---------------------------------------------------------------------------


def materialized_view_records(scale: int = 4, n_batches: int = 4,
                              chunk_rows: int = 1024,
                              repeat: int = 3) -> dict:
    """The materialized-view serving experiment.

    A sharded table grows by ``n_batches`` user-disjoint appends. A
    view over Q1 is registered after the first batch; after *every*
    append the view is refreshed (the stats must report exactly one
    newly scanned shard — incrementality is the claim under test) and
    then served repeatedly, timing the warm path: a re-merge of cached
    per-shard partials with no chunk scans. The same query is also
    executed directly each step. The target shape is a flat serve curve
    against a direct curve that grows with the table, with
    digest-identical results throughout — including direct runs on all
    three scan backends at the final size.
    """
    import hashlib

    from repro.storage import append_shard

    table = dataset(scale).sorted_by_primary_key()
    batches = _user_batches(table, n_batches)
    global _DISK_DIR
    if _DISK_DIR is None:
        _DISK_DIR = tempfile.TemporaryDirectory(prefix="cohana-bench-")
    root = tempfile.mkdtemp(prefix="views-", dir=_DISK_DIR.name)
    shard_dir = os.path.join(root, "sharded")

    text = _main_query("Q1")
    engine = CohanaEngine()
    steps = []
    rows_total = 0
    for i, batch in enumerate(batches, start=1):
        append_shard(shard_dir, batch, target_chunk_rows=chunk_rows)
        rows_total += len(batch)
        if i == 1:
            engine.load_table(TABLE, shard_dir)
            # refresh=False so the per-step refresh below observes the
            # first shard's scan like every later step observes its own.
            engine.create_view("bench_q1", text, refresh=False)
        else:
            engine.refresh_table(TABLE, refresh_views=False)
        refresh_stats = engine.refresh_view("bench_q1")
        serve_result, _ = engine.serve_view("bench_q1")
        serve_seconds = time_call(
            lambda: engine.query_view("bench_q1"), repeat=repeat)
        direct_result = engine.query(text)
        direct_seconds = time_query(engine, text, repeat=repeat)
        digest_view = hashlib.sha256(
            repr(serve_result.rows).encode()).hexdigest()[:16]
        digest_direct = hashlib.sha256(
            repr(direct_result.rows).encode()).hexdigest()[:16]
        steps.append({
            "step": i,
            "rows_total": rows_total,
            "shards_total": refresh_stats.shards_total,
            "shards_new": refresh_stats.shards_scanned,
            "serve_seconds": round(serve_seconds, 6),
            "direct_seconds": round(direct_seconds, 6),
            "digest_view": digest_view,
            "digest_direct": digest_direct,
            "digest_parity": digest_view == digest_direct,
        })

    backends = {}
    view_digest = steps[-1]["digest_view"]
    for backend in ("serial", "threads", "processes"):
        result = engine.query(text, jobs=2, backend=backend)
        digest = hashlib.sha256(
            repr(result.rows).encode()).hexdigest()[:16]
        backends[backend] = {"digest": digest,
                             "parity": digest == view_digest}

    parity_ok = (all(s["digest_parity"] for s in steps)
                 and all(b["parity"] for b in backends.values()))
    refresh_ok = all(s["shards_new"] == 1 and s["shards_total"] == s["step"]
                     for s in steps)
    first = steps[0]["serve_seconds"]
    last = steps[-1]["serve_seconds"]
    # The flat-latency witness: serving after the Nth append must stay
    # within 2x of serving after the first. The absolute slack absorbs
    # timer noise on smoke-sized datasets where both are sub-millisecond.
    flat_ok = last <= 2.0 * first + 0.05
    return {"scale": scale, "n_batches": n_batches,
            "chunk_rows": chunk_rows, "query": "Q1", "steps": steps,
            "backends": backends, "parity_ok": parity_ok,
            "refresh_ok": refresh_ok, "flat_ok": flat_ok,
            "first_serve_seconds": first, "last_serve_seconds": last}


def materialized_views(scale: int = 4, n_batches: int = 4,
                       chunk_rows: int = 1024, repeat: int = 3) -> Report:
    """Figure-style report: view serve vs direct seconds per append."""
    payload = materialized_view_records(scale=scale, n_batches=n_batches,
                                        chunk_rows=chunk_rows,
                                        repeat=repeat)
    report = Report(title="Materialized view: serve vs direct execution "
                          f"(scale={scale}, {n_batches} appends)",
                    x_label="append", y_label="seconds")
    serve = report.series_named("view serve (merge partials)")
    direct = report.series_named("direct execution")
    new = report.series_named("shards scanned on refresh")
    for step in payload["steps"]:
        serve.add(step["step"], step["serve_seconds"])
        direct.add(step["step"], step["direct_seconds"])
        new.add(step["step"], step["shards_new"])
    return report


# ---------------------------------------------------------------------------
# Ablations (ours): executor / push-down / pruning
# ---------------------------------------------------------------------------


def ablations(scale: int = 8, chunk_rows: int = 1024,
              repeat: int = 3) -> Report:
    """COHANA design-choice ablations on Q1 and Q4."""
    engine = cohana_engine(scale, chunk_rows)
    report = Report(title="Ablations: COHANA design choices",
                    x_label="query", y_label="seconds")
    variants = (
        ("vectorized", dict(executor="vectorized")),
        ("iterator (Algs 1-2)", dict(executor="iterator")),
        ("no push-down", dict(executor="vectorized", pushdown=False)),
        ("no chunk pruning", dict(executor="vectorized", prune=False)),
    )
    for label, kw in variants:
        series = report.series_named(label)
        for qname in ("Q1", "Q2", "Q4"):
            text = _main_query(qname)
            series.add(qname, time_call(
                lambda text=text, kw=kw: engine.query(text, **kw),
                repeat=repeat))
    return report


def serve_http(scale: int = 4, chunk_rows: int = 1024) -> Report:
    """HTTP serving latency under concurrency (lazy import: the load
    harness drives a live server and pulls in the whole service tier,
    which in turn imports this module)."""
    from repro.bench.http_load import serve_http_report
    return serve_http_report(scale=scale, chunk_rows=chunk_rows)


#: Registry used by run_all.py: name -> zero-arg callable returning
#: a Report or a list of Reports.
EXPERIMENTS = {
    "fig06": fig06_chunk_size,
    "fig07": fig07_storage,
    "fig08": fig08_birth_selection,
    "fig09": fig09_age_selection,
    "fig10": fig10_mv_generation,
    "fig11": fig11_comparison,
    "ablations": ablations,
    "parallel": parallel_scaling,
    "compressed": compressed_scan,
    "operators": operator_tree,
    "service": service_cache,
    "serve_http": serve_http,
    "shards": shard_append,
    "views": materialized_views,
    "compaction": compaction,
}
