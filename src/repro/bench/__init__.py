"""Benchmark harness: datasets, timing, reports, figure experiments."""

from repro.bench.harness import (
    Report,
    Series,
    dataset,
    set_default_seed,
    time_call,
    time_query,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    ablations,
    cohana_engine,
    fig06_chunk_size,
    fig07_storage,
    fig08_birth_selection,
    fig09_age_selection,
    fig10_mv_generation,
    fig11_comparison,
    parallel_scaling,
    parallel_scaling_records,
    prepared_system,
)

__all__ = [
    "EXPERIMENTS",
    "Report",
    "Series",
    "ablations",
    "cohana_engine",
    "dataset",
    "fig06_chunk_size",
    "fig07_storage",
    "fig08_birth_selection",
    "fig09_age_selection",
    "fig10_mv_generation",
    "fig11_comparison",
    "parallel_scaling",
    "parallel_scaling_records",
    "prepared_system",
    "set_default_seed",
    "time_call",
    "time_query",
]
