"""Printing the figure experiments (shared by the CLI and run_all.py)."""

from __future__ import annotations

import time

from repro.bench.experiments import EXPERIMENTS


def resolve_experiments(names: list[str] | None,
                        ) -> tuple[list[str], list[str]]:
    """(selected, unknown) experiment names; empty input selects all."""
    selected = names or list(EXPERIMENTS)
    unknown = [n for n in selected if n not in EXPERIMENTS]
    return selected, unknown


def run_and_print(names: list[str] | None = None) -> int:
    """Run the named experiments (all by default) and print reports.

    Returns a process exit code (2 on unknown names).
    """
    selected, unknown = resolve_experiments(names)
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {list(EXPERIMENTS)}")
        return 2
    for name in selected:
        start = time.perf_counter()
        outcome = EXPERIMENTS[name]()
        elapsed = time.perf_counter() - start
        reports = outcome if isinstance(outcome, list) else [outcome]
        for report in reports:
            print()
            print(report.to_text())
        print(f"\n[{name} finished in {elapsed:.1f}s]")
    return 0
