"""COHANA's default (vectorized) per-chunk kernel.

Scans one chunk of a :class:`~repro.cohana.planner.CohortPlan`, fully
vectorized with numpy — the Python-level equivalent of the paper's tight
C++ scan loops (the repro hint for this paper: scan-speed claims need
vectorization). The per-chunk algorithm mirrors Algorithms 1-2:

1. walk the RLE user runs and locate each user's birth tuple (the first
   action-``e`` tuple of the run, thanks to the time-ordering property);
2. evaluate the birth condition *once per user* on the birth tuples and
   drop every tuple of unqualified users (push-down + SkipCurUser);
3. evaluate the age condition on the surviving rows, compute normalized
   ages, and aggregate into (cohort, age) buckets.

The kernel honours the plan's ``scan_mode``: under ``compressed`` (and
``auto`` over zone-mapped chunks) the birth-action search compares
bit-packed *chunk-local* codes instead of gathered global ids, and the
birth/age conditions go through
:func:`~repro.cohana.compressed.compressed_mask`, which evaluates
dictionary-column leaves once per distinct chunk value and short-circuits
range leaves against segment MIN/MAX. ``decoded`` keeps the fully
materialized path; both modes produce identical partials.

Chunk iteration, pruning, parallel dispatch and the cross-chunk merge all
live in :mod:`repro.cohana.pipeline`; this module only turns one
:class:`~repro.storage.chunk.Chunk` into a
:class:`~repro.cohana.pipeline.ChunkPartial`. All group keys stay in
global-dictionary id space until the final merge, so nothing is decoded
to strings on the hot path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.cohana.compile import EvalContext, compile_mask
from repro.cohana.compressed import compressed_mask
from repro.cohana.pipeline import (
    ChunkKernel,
    ChunkPartial,
    ExecStats,
    ExecutionConfig,
    chunk_prunable,
    execute,
    register_kernel,
    resolve_scan_mode,
)
from repro.cohana.planner import CohortPlan
from repro.cohort.result import CohortResult
from repro.schema import TIME_UNIT_SECONDS, ColumnRole, LogicalType
from repro.storage.chunk import Chunk
from repro.storage.dictionary import DictEncodedColumn
from repro.storage.reader import CompressedActivityTable

#: Backwards-compatible alias — pruning now lives in the pipeline layer.
_prunable = chunk_prunable


class _RunContext(EvalContext):
    """Evaluation context over user runs (one 'row' per user)."""

    def __init__(self, executor: "_ChunkExecutor", birth_pos: np.ndarray):
        self._ex = executor
        self._birth_pos = birth_pos

    def rows(self) -> int:
        return len(self._birth_pos)

    def plain(self, name: str) -> np.ndarray:
        return self._ex.column(name)[self._birth_pos]

    def birth_value(self, name: str) -> np.ndarray:
        return self.plain(name)

    def age(self) -> np.ndarray:
        return np.zeros(len(self._birth_pos), dtype=np.int64)

    def dictionary_for(self, name: str):
        return self._ex.dictionary_for(name)


class _RowContext(EvalContext):
    """Evaluation context over selected activity rows."""

    def __init__(self, executor: "_ChunkExecutor", sel: np.ndarray,
                 birth_pos_of_row: np.ndarray, ages: np.ndarray):
        self._ex = executor
        self._sel = sel
        self._birth_pos = birth_pos_of_row
        self._ages = ages

    def rows(self) -> int:
        return len(self._sel)

    def plain(self, name: str) -> np.ndarray:
        return self._ex.column(name)[self._sel]

    def birth_value(self, name: str) -> np.ndarray:
        return self._ex.column(name)[self._birth_pos]

    def age(self) -> np.ndarray:
        return self._ages

    def dictionary_for(self, name: str):
        return self._ex.dictionary_for(name)


class _ChunkExecutor:
    """Executes the plan against one chunk, producing partial aggregates.

    Doubles as the chunk accessor for
    :func:`~repro.cohana.compressed.compressed_mask`: the bit-packed
    chunk ids and chunk-dictionary global ids are unpacked at most once
    and shared between the compressed evaluator and any decoded
    fallback (``column`` composes them, so switching domains never
    repeats work). Fixed per-chunk unpacks (RLE user triples, chunk
    dictionaries) live on the storage objects themselves
    (:meth:`RleColumn.arrays`, :meth:`DictEncodedColumn.global_ids`),
    so repeated queries over a resident table pay them once, not once
    per query.
    """

    def __init__(self, table: CompressedActivityTable, chunk: Chunk,
                 plan: CohortPlan):
        self._table = table
        self._chunk = chunk
        self._plan = plan
        self._cache: dict[str, np.ndarray] = {}
        self._local_ids: dict[str, np.ndarray] = {}
        self.schema = table.schema
        self.scan_mode = resolve_scan_mode(plan.scan_mode, chunk)

    def column(self, name: str) -> np.ndarray:
        if name not in self._cache:
            col = self._chunk.columns.get(name)
            if isinstance(col, DictEncodedColumn):
                gids = self.chunk_gids(name)
                self._cache[name] = gids[self.local_ids(name)]
            else:
                self._cache[name] = self._chunk.decode_codes(name)
        return self._cache[name]

    def chunk_column(self, name: str):
        """The encoded (compressed) segment for ``name``, or None."""
        return self._chunk.columns.get(name)

    def local_ids(self, name: str) -> np.ndarray:
        """Per-row chunk-local codes of a dictionary column (cached)."""
        if name not in self._local_ids:
            self._local_ids[name] = \
                self._chunk.columns[name].chunk_ids.unpack()
        return self._local_ids[name]

    def chunk_gids(self, name: str) -> np.ndarray:
        """Sorted distinct global ids of a dictionary column (cached on
        the storage segment, shared across queries)."""
        return self._chunk.columns[name].global_ids()

    def global_dictionary(self, name: str):
        return self._table.dictionary(name)

    def dictionary_for(self, name: str):
        spec = self.schema.column(name)
        if spec.ltype is LogicalType.STRING:
            return self._table.dictionary(name)
        return None

    def _mask(self, condition, ctx, positions: np.ndarray) -> np.ndarray:
        """Condition mask over ``positions``, in the mode's domain."""
        if self.scan_mode == "compressed":
            return compressed_mask(condition, ctx, self, positions)
        return compile_mask(condition, ctx)

    def _action_positions(self, gid: int) -> np.ndarray:
        """Row positions holding the birth action.

        Compressed mode binary-searches the chunk dictionary for the
        action's *local* code and compares the bit-packed chunk ids
        directly — no global-id gather. Decoded mode compares the
        materialized global-id array (and reuses it if the action
        column is needed again later).
        """
        col = self._chunk.columns.get(self.schema.action.name)
        if self.scan_mode == "compressed" and isinstance(
                col, DictEncodedColumn):
            name = self.schema.action.name
            gids = self.chunk_gids(name)
            pos = int(np.searchsorted(gids, gid))
            if pos >= gids.size or int(gids[pos]) != gid:
                return np.empty(0, dtype=np.int64)
            return np.flatnonzero(self.local_ids(name) == pos)
        return np.flatnonzero(self.column(self.schema.action.name) == gid)

    # -- the per-chunk algorithm --------------------------------------------

    def run(self, partial: ChunkPartial) -> None:
        plan = self._plan
        query = plan.query
        chunk = self._chunk
        partial.rows_scanned += chunk.n_rows

        rle = chunk.users
        run_ids, run_starts, run_counts = rle.arrays()
        n_runs = len(run_ids)
        partial.users_seen += n_runs
        if n_runs == 0:
            return

        times = self.column(self.schema.time.name)

        # 1. birth tuples: first action-e position inside each run.
        e_pos = self._action_positions(plan.birth_action_gid)
        if e_pos.size == 0:
            return
        idx = np.searchsorted(e_pos, run_starts)
        idx_c = np.minimum(idx, e_pos.size - 1)
        candidate = e_pos[idx_c]
        has_birth = (idx < e_pos.size) & (candidate
                                          < run_starts + run_counts)
        birth_pos = np.where(has_birth, candidate, 0)
        birth_time = times[birth_pos]

        # 2. birth selection, once per user.
        run_ctx = _RunContext(self, birth_pos)
        birth_mask = self._mask(query.birth_condition, run_ctx, birth_pos)
        qualified = has_birth & birth_mask
        n_qualified = int(qualified.sum())
        partial.users_qualified += n_qualified
        if n_qualified == 0:
            return

        # 3. cohort labels per qualified run (still in id space).
        label_matrix = self._label_matrix(birth_pos, birth_time)
        q_runs = np.flatnonzero(qualified)
        uniq_labels, label_inverse = np.unique(label_matrix[q_runs],
                                               axis=0, return_inverse=True)
        label_keys = [tuple(int(v) for v in row) for row in uniq_labels]
        for key, count in zip(label_keys, np.bincount(label_inverse)):
            partial.add_cohort_size(key, int(count))
        run_label = np.full(n_runs, -1, dtype=np.int64)
        run_label[q_runs] = label_inverse

        # 4. row selection: push-down skips unqualified users' rows now.
        row_run = np.repeat(np.arange(n_runs, dtype=np.int64), run_counts)
        qualified_rows = qualified[row_run]
        if plan.pushdown:
            sel = np.flatnonzero(qualified_rows)
        else:
            sel = np.arange(chunk.n_rows, dtype=np.int64)
        if sel.size == 0:
            return
        row_run_sel = row_run[sel]
        raw_age = times[sel] - birth_time[row_run_sel]
        ages = _normalize_ages(raw_age, query.age_unit)

        row_ctx = _RowContext(self, sel, birth_pos[row_run_sel], ages)
        age_mask = self._mask(query.age_condition, row_ctx, sel)
        agg_mask = (raw_age > 0) & age_mask
        if not plan.pushdown:
            agg_mask &= qualified_rows[sel]
        if not agg_mask.any():
            return
        partial.tuples_aggregated += int(agg_mask.sum())

        # 5. (cohort, age) bucket aggregation.
        agg_rows = sel[agg_mask]
        agg_runs = row_run_sel[agg_mask]
        agg_ages = ages[agg_mask]
        agg_labels = run_label[agg_runs]
        pairs = np.stack([agg_labels, agg_ages], axis=1)
        uniq_pairs, group = np.unique(pairs, axis=0, return_inverse=True)
        n_groups = uniq_pairs.shape[0]
        group_keys = [(label_keys[int(lab)], int(age))
                      for lab, age in uniq_pairs]

        for agg_index, agg in enumerate(query.aggregates):
            partials = self._aggregate(agg, group, n_groups, agg_rows,
                                       run_ids[agg_runs])
            for key, value in zip(group_keys, partials):
                partial.add_partial(key, agg_index, agg.func, value)

    def _label_matrix(self, birth_pos: np.ndarray,
                      birth_time: np.ndarray) -> np.ndarray:
        query = self._plan.query
        cols = []
        for name in query.cohort_by:
            spec = self.schema.column(name)
            if spec.role is ColumnRole.TIME:
                unit = TIME_UNIT_SECONDS[query.cohort_time_bin]
                origin = query.time_bin_origin
                cols.append(origin + ((birth_time - origin) // unit) * unit)
            else:
                cols.append(self.column(name)[birth_pos])
        return np.stack(cols, axis=1)

    def _aggregate(self, agg, group: np.ndarray, n_groups: int,
                   agg_rows: np.ndarray, users: np.ndarray) -> list:
        """Partial aggregate per group for one aggregate spec."""
        func = agg.func
        if func == "COUNT":
            return np.bincount(group, minlength=n_groups).tolist()
        if func == "USERCOUNT":
            pairs = np.unique(np.stack([group, users], axis=1), axis=0)
            return np.bincount(pairs[:, 0],
                               minlength=n_groups).tolist()
        values = self.column(agg.column)[agg_rows]
        if func == "SUM":
            sums = np.bincount(group, weights=values, minlength=n_groups)
            return _maybe_int(sums, self.schema, agg.column)
        if func == "AVG":
            sums = np.bincount(group, weights=values, minlength=n_groups)
            counts = np.bincount(group, minlength=n_groups)
            return list(zip(sums.tolist(), counts.tolist()))
        order = np.argsort(group, kind="stable")
        sorted_vals = values[order]
        boundaries = np.searchsorted(group[order],
                                     np.arange(n_groups, dtype=np.int64))
        if func == "MIN":
            out = np.minimum.reduceat(sorted_vals, boundaries)
        elif func == "MAX":
            out = np.maximum.reduceat(sorted_vals, boundaries)
        else:  # pragma: no cover - validated upstream
            raise ExecutionError(f"unknown aggregate {func!r}")
        return out.tolist()


def _maybe_int(sums: np.ndarray, schema, column: str) -> list:
    if schema.column(column).ltype is LogicalType.INT:
        return [int(round(v)) for v in sums.tolist()]
    return sums.tolist()


def _normalize_ages(raw: np.ndarray, unit_name: str) -> np.ndarray:
    """Vectorized :func:`repro.cohort.concepts.normalize_age`."""
    unit = TIME_UNIT_SECONDS[unit_name]
    positive = (raw + unit - 1) // unit
    negative = -((-raw + unit - 1) // unit)
    return np.where(raw > 0, positive, np.where(raw < 0, negative, 0))


# ---------------------------------------------------------------------------
# Kernel entry points
# ---------------------------------------------------------------------------


def scan_chunk(table: CompressedActivityTable, chunk: Chunk,
               plan: CohortPlan) -> ChunkPartial:
    """The pure per-chunk kernel: one chunk in, one ChunkPartial out."""
    partial = ChunkPartial(n_aggregates=len(plan.query.aggregates))
    _ChunkExecutor(table, chunk, plan).run(partial)
    return partial


KERNEL = register_kernel(ChunkKernel(name="vectorized", scan=scan_chunk,
                                     decoded_labels=False))


def execute_plan(table: CompressedActivityTable,
                 plan: CohortPlan) -> tuple[CohortResult, ExecStats]:
    """Serial execution of ``plan`` (compatibility entry point; the
    pipeline's :func:`~repro.cohana.pipeline.execute` is the real API)."""
    return execute(table, plan, kernel=KERNEL, config=ExecutionConfig())
