"""The COHANA engine facade (Figure 4: parser, catalog, storage manager,
query executor).

Typical use::

    engine = CohanaEngine()
    engine.create_table("GameActions", activity_table)
    result = engine.query('''
        SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
        FROM GameActions
        BIRTH FROM action = "launch" AND role = "dwarf"
        AGE ACTIVITIES IN action = "shop"
        COHORT BY country
    ''')
    print(result.to_text())

Execution goes through the chunk pipeline
(:mod:`repro.cohana.pipeline`): the plan becomes per-chunk scan tasks run
by the selected kernel (``executor='vectorized'`` or ``'iterator'``)
under an :class:`~repro.cohana.pipeline.ExecutionConfig`. The config can
be given explicitly, or via the loose ``jobs`` / ``backend`` options::

    result = engine.query(text, jobs=4)              # auto backend
    result = engine.query(text, jobs=4, backend="processes")
    result = engine.query(text, scan_mode="compressed")
    result, stats = engine.query_with_stats(
        text, config=ExecutionConfig(backend="threads", jobs=2))

``ExecutionConfig(backend, jobs, collect_stats, scan_mode)`` selects the
scan backend (``'serial'``, ``'threads'`` or ``'processes'`` — with
``jobs > 1`` and no explicit backend, tables loaded from a ``.cohana``
file get ``processes``, whose workers reopen the file by path and scan
chunks on real cores; in-memory tables get ``threads``), the worker
count, whether
per-row/user counters are accumulated into ``ExecStats``, and how
predicates are evaluated: ``scan_mode='decoded'`` materializes codes
first (the legacy path), ``'compressed'`` evaluates in the compressed
domain with zone-map pruning, and ``'auto'`` (default) picks compressed
wherever chunks carry persisted zone maps. Results are identical across
modes. Chunk independence (no user spans two chunks) makes the parallel
merge exact.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.errors import CatalogError, ExecutionError
from repro.cohana.binder import bind_cohort_query
from repro.cohana.parser import (
    ParsedCreateView,
    ParsedDropView,
    parse_cohort_query,
    parse_statement,
)
from repro.cohana.pipeline import (
    ChunkScheduler,
    ExecStats,
    ExecutionConfig,
    get_kernel,
)
from repro.cohana.operators import lower_plan
from repro.cohana.planner import CohortPlan, plan_query
# Importing the executor modules registers their kernels with the
# pipeline registry; nothing else is needed from them here.
from repro.cohana import iterator_executor, vectorized  # noqa: F401
from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.storage import compress, load, save
from repro.storage.reader import CompressedActivityTable
from repro.storage.writer import DEFAULT_CHUNK_ROWS
from repro.table import ActivityTable


class CohanaEngine:
    """A catalog of compressed activity tables plus the query pipeline.

    Every registration also stamps a per-table **version token** — the
    file's content digest for tables loaded from ``.cohana`` files, a
    monotonically increasing counter for tables compressed in memory.
    Re-registering a name (``create_table``/``register`` with
    ``replace=True``, or loading a rewritten file) changes the token,
    which is what lets the query service (:mod:`repro.service`) key its
    result cache on ``(bound query, token)`` and never serve a result
    computed against old data.
    """

    def __init__(self):
        self._catalog: dict[str, CompressedActivityTable] = {}
        self._versions: dict[str, str] = {}
        self._mem_version_counter = 0
        #: Guards the catalog / version map / counter as one unit: the
        #: query service registers and replaces tables from concurrent
        #: admission threads, and an unguarded counter bump is a lost
        #: update waiting to happen (two registrations sharing one
        #: ``mem:`` token would let stale cached results survive).
        self._catalog_lock = threading.RLock()
        # Imported here, not at module top: the view catalog pulls in
        # the service-layer fingerprint module, whose package imports
        # this module back.
        from repro.views.catalog import ViewCatalog
        self._view_catalog = ViewCatalog(self)

    # -- storage manager ------------------------------------------------------

    def _stamp_version(self, name: str,
                       table: CompressedActivityTable) -> None:
        """Record the version token of a (re-)registered table.
        Caller holds ``self._catalog_lock``.

        Sharded tables prefer their *logical* digest (the multiset row
        hash that survives compaction) over the physical composed
        digest, so a compaction — new shard files, same rows — keeps
        the token and the service result caches keyed on it warm,
        while an append or retention prune still rolls it. Tables
        without any digest fall back to a per-process counter.
        """
        digest = (getattr(table, "logical_digest", None)
                  or getattr(table, "content_digest", None))
        if digest:
            self._versions[name] = f"sha256:{digest}"
        else:
            self._mem_version_counter += 1
            self._versions[name] = f"mem:{self._mem_version_counter}"

    def version_token(self, name: str) -> str:
        """The current version token of table ``name``.

        Changes whenever the registration changes (``replace=True`` or
        a reloaded file whose bytes differ), so equality of tokens
        implies cached results for the table are still valid.
        """
        with self._catalog_lock:
            self.table(name)  # raises CatalogError on unknown names
            return self._versions[name]

    def create_table(self, name: str, table: ActivityTable,
                     target_chunk_rows: int = DEFAULT_CHUNK_ROWS,
                     replace: bool = False,
                     ) -> CompressedActivityTable:
        """Compress ``table`` and register it under ``name``.

        With ``replace=True`` an existing registration is overwritten
        instead of raising :class:`~repro.errors.CatalogError`.
        """
        with self._catalog_lock:
            # Fail before the O(rows) compression; register()'s own
            # locked check stays authoritative against races.
            if name in self._catalog and not replace:
                raise CatalogError(f"table {name!r} already exists")
        compressed = compress(table, target_chunk_rows=target_chunk_rows)
        self.register(name, compressed, replace=replace)
        return compressed

    def register(self, name: str, compressed: CompressedActivityTable,
                 replace: bool = False) -> None:
        """Register an already-compressed table (``replace`` as above)."""
        with self._catalog_lock:
            if name in self._catalog and not replace:
                raise CatalogError(f"table {name!r} already exists")
            self._catalog[name] = compressed
            self._stamp_version(name, compressed)

    def drop_table(self, name: str) -> None:
        """Remove ``name`` from the catalog, along with every
        materialized view registered over it (their definitions and
        partial files included — no orphaned view state survives)."""
        with self._catalog_lock:
            self.table(name)
            # While the table is still registered, its view store is
            # still reachable (the disk store location derives from the
            # table's source path).
            self._view_catalog.drop_table_views(name)
            del self._catalog[name]
            del self._versions[name]

    def table(self, name: str) -> CompressedActivityTable:
        """Look up a registered table."""
        try:
            return self._catalog[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._catalog)}"
            ) from None

    def tables(self) -> list[str]:
        """All registered table names."""
        return sorted(self._catalog)

    def save_table(self, name: str, path: str | Path) -> int:
        """Persist a table to a ``.cohana`` file; returns bytes written."""
        return save(self.table(name), path)

    def load_table(self, name: str, path: str | Path,
                   replace: bool = False) -> CompressedActivityTable:
        """Load a ``.cohana`` file (or sharded table directory) and
        register it under ``name`` (``replace`` as above).

        Views persisted next to a sharded table's manifest are
        re-attached automatically, with their cached per-shard partials
        intact — a view survives a process restart warm.
        """
        compressed = load(path)
        with self._catalog_lock:
            self.register(name, compressed, replace=replace)
            self._view_catalog.attach(name)
        return compressed

    def refresh_table(self, name: str,
                      refresh_views: bool = True,
                      ) -> CompressedActivityTable:
        """Re-load a disk-backed table from its ``source_path``.

        The canonical way to pick up appended shards (or a rewritten
        file): the reloaded registration gets a fresh version token, so
        the query service invalidates exactly when the bytes changed —
        a byte-identical refresh keeps the same ``sha256:`` token and
        every cached result stays warm.

        Materialized views over the table are refreshed incrementally
        afterwards (``refresh_views=False`` defers that to the next
        serve): partials are keyed by *shard content digest*, so only
        shards new since the last refresh are scanned — zero shards
        for a byte-identical reload.
        """
        source = getattr(self.table(name), "source_path", None)
        if not source:
            raise CatalogError(
                f"table {name!r} was not loaded from disk; re-register "
                f"it instead of refreshing")
        table = self.load_table(name, source, replace=True)
        if refresh_views:
            for view in self._view_catalog.views_of(name):
                self._view_catalog.refresh(view.name)
        return table

    # -- parser / binder -------------------------------------------------------

    def parse(self, text: str, age_unit: str = "day",
              time_bin_origin: int = 0) -> CohortQuery:
        """Parse + bind a cohort query statement against its FROM table."""
        parsed = parse_cohort_query(text)
        schema = self.table(parsed.table).schema
        return bind_cohort_query(parsed, schema, age_unit=age_unit,
                                 time_bin_origin=time_bin_origin)

    # -- materialized views ----------------------------------------------------

    def create_view(self, name: str, query: "CohortQuery | str",
                    replace: bool = False, refresh: bool = True,
                    text: str | None = None,
                    age_unit: str = "day", time_bin_origin: int = 0):
        """Register a materialized view ``name`` over a cohort query.

        ``query`` may be statement text (parsed and bound here; the
        text is persisted next to a sharded table's manifest so the
        view survives restarts) or an already-bound
        :class:`~repro.cohort.query.CohortQuery` (pass ``text`` to make
        it persistable). With ``refresh=True`` (default) the view's
        per-shard partials are computed immediately; cached partials
        from an earlier life of the same definition are reused, so
        recreating a known view over unchanged shards scans nothing.

        Returns the registered
        :class:`~repro.views.catalog.MaterializedView`.
        """
        with self._catalog_lock:
            if isinstance(query, str):
                text = query
                query = self.parse(query, age_unit=age_unit,
                                   time_bin_origin=time_bin_origin)
            view = self._view_catalog.create(name, query, text=text,
                                             replace_existing=replace)
        if refresh:
            self.refresh_view(name)
        return view

    def drop_view(self, name: str, missing_ok: bool = False) -> bool:
        """Unregister a view and delete its persisted definition and
        partial files. Returns True when a view was dropped."""
        with self._catalog_lock:
            return self._view_catalog.drop(name, missing_ok=missing_ok)

    def views(self) -> list[str]:
        """All registered view names."""
        return self._view_catalog.names()

    def view(self, name: str):
        """Look up a registered view."""
        return self._view_catalog.get(name)

    def view_status(self, name: str) -> dict:
        """A JSON-able freshness summary: how many of the table's
        current shards have cached partials for this view."""
        return self._view_catalog.status(name)

    def refresh_view(self, name: str, executor: str = "vectorized",
                     config: ExecutionConfig | None = None) -> ExecStats:
        """Bring a view's partial cache up to date incrementally.

        Scans only shards whose content digest has no cached partial:
        ``stats.shards_scanned`` equals the number of *new* shards (0
        after a byte-identical reload), ``stats.shards_total`` the
        table's current shard count.
        """
        return self._view_catalog.refresh(name, executor=executor,
                                          config=config)

    def serve_view(self, name: str, executor: str = "vectorized",
                   config: ExecutionConfig | None = None,
                   ) -> tuple[CohortResult, ExecStats]:
        """Serve a view: incremental refresh + re-merge of cached
        per-shard partials. Result-identical to executing the view's
        query directly; only the work done differs."""
        return self._view_catalog.serve(name, executor=executor,
                                        config=config)

    def query_view(self, name: str, **kw) -> CohortResult:
        """:meth:`serve_view` without the stats."""
        result, _ = self.serve_view(name, **kw)
        return result

    def execute_statement(self, text: str, age_unit: str = "day",
                          time_bin_origin: int = 0, **exec_kw):
        """Run one statement of the extended language.

        A plain cohort query executes and returns its
        :class:`~repro.cohort.result.CohortResult`; ``CREATE [OR
        REPLACE] MATERIALIZED VIEW`` registers (and refreshes) the view
        and returns the :class:`~repro.views.catalog.MaterializedView`;
        ``DROP MATERIALIZED VIEW [IF EXISTS]`` drops it and returns
        whether a view existed.
        """
        parsed = parse_statement(text)
        if isinstance(parsed, ParsedCreateView):
            schema = self.table(parsed.query.table).schema
            bound = bind_cohort_query(parsed.query, schema,
                                      age_unit=age_unit,
                                      time_bin_origin=time_bin_origin)
            return self.create_view(parsed.name, bound,
                                    replace=parsed.or_replace,
                                    text=parsed.query_text)
        if isinstance(parsed, ParsedDropView):
            return self.drop_view(parsed.name,
                                  missing_ok=parsed.if_exists)
        return self.query(text, age_unit=age_unit,
                          time_bin_origin=time_bin_origin, **exec_kw)

    # -- query executor --------------------------------------------------------

    def plan(self, query: CohortQuery | str, pushdown: bool = True,
             prune: bool = True, scan_mode: str = "auto",
             **parse_kw) -> CohortPlan:
        """Build the physical plan (push-down + pruning decisions)."""
        if isinstance(query, str):
            query = self.parse(query, **parse_kw)
        return plan_query(query, self.table(query.table),
                          pushdown=pushdown, prune=prune,
                          scan_mode=scan_mode)

    def query_with_stats(self, query: CohortQuery | str,
                         executor: str = "vectorized",
                         pushdown: bool = True, prune: bool = True,
                         jobs: int = 1, backend: str | None = None,
                         collect_stats: bool = True,
                         scan_mode: str = "auto",
                         config: ExecutionConfig | None = None,
                         **parse_kw) -> tuple[CohortResult, ExecStats]:
        """Execute and also return execution statistics.

        ``executor`` picks the per-chunk kernel family; ``jobs`` /
        ``backend`` / ``scan_mode`` (or a full ``config``) pick how the
        scheduler runs the chunk scans.
        """
        if isinstance(query, str):
            query = self.parse(query, **parse_kw)
        kernel = get_kernel(executor)
        table = self.table(query.table)
        if config is None:
            config = ExecutionConfig.resolve(jobs=jobs, backend=backend,
                                             collect_stats=collect_stats,
                                             scan_mode=scan_mode,
                                             table=table)
        elif (jobs != 1 or backend is not None or not collect_stats
                or scan_mode != "auto"):
            raise ExecutionError(
                "pass either config= or the loose jobs=/backend=/"
                "collect_stats=/scan_mode= options, not both")
        plan = plan_query(query, table, pushdown=pushdown, prune=prune)
        return ChunkScheduler(table, plan, kernel, config).run()

    def query(self, query: CohortQuery | str,
              executor: str = "vectorized", **kw) -> CohortResult:
        """Execute a cohort query and return its result relation."""
        result, _ = self.query_with_stats(query, executor=executor, **kw)
        return result

    def explain(self, query: CohortQuery | str, pushdown: bool = True,
                prune: bool = True, scan_mode: str = "auto",
                jobs: int = 1, backend: str | None = None,
                config: ExecutionConfig | None = None,
                executor: str = "vectorized", analyze: bool = False,
                **parse_kw) -> str:
        """The physical operator tree, one line per operator (EXPLAIN).

        Includes the resolved :class:`ExecutionConfig` line, so the
        ``jobs`` / ``backend`` / ``scan_mode`` a query would run with
        are visible without executing it. With ``analyze=True`` the
        query is actually executed and each operator line carries its
        rows-in/rows-out and prune counters.
        """
        if isinstance(query, str):
            query = self.parse(query, **parse_kw)
        if config is None:
            config = ExecutionConfig.resolve(
                jobs=jobs, backend=backend, scan_mode=scan_mode,
                table=self.table(query.table))
        elif jobs != 1 or backend is not None or scan_mode != "auto":
            raise ExecutionError(
                "pass either config= or the loose jobs=/backend=/"
                "scan_mode= options, not both")
        plan = self.plan(query, pushdown=pushdown, prune=prune,
                         scan_mode=config.scan_mode)
        physical = lower_plan(plan, get_kernel(executor))
        if analyze:
            result, stats = self.query_with_stats(
                query, executor=executor, pushdown=pushdown, prune=prune,
                config=config)
            tree = physical.describe(stats=stats, result=result)
        else:
            tree = physical.describe()
        return f"{tree}\n{config.describe()}"
