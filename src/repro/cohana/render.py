"""Rendering bound cohort queries back to the query language.

The inverse of parse+bind (up to formatting): useful for logging, for
EXPLAIN-style tooling, and as a strong parser test — the round-trip
``bind(parse(render(q))) == q`` holds for every valid query and is
property-tested in ``tests/test_render.py``.

Timestamp literals are rendered as raw epoch integers, which the binder
coerces back losslessly.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.cohort.conditions import (
    AgeRef,
    And,
    AttrRef,
    Between,
    BirthRef,
    Compare,
    Condition,
    InList,
    Literal,
    Not,
    Operand,
    Or,
    TrueCondition,
)
from repro.cohort.query import CohortQuery


def render_operand(operand: Operand) -> str:
    """One comparison operand in query-language syntax."""
    if isinstance(operand, Literal):
        return render_literal(operand.raw)
    if isinstance(operand, AttrRef):
        return operand.name
    if isinstance(operand, BirthRef):
        return f"Birth({operand.name})"
    if isinstance(operand, AgeRef):
        return "AGE"
    raise QueryError(f"cannot render operand {operand!r}")


def render_literal(value) -> str:
    if isinstance(value, str):
        escaped = value.replace('"', '""')
        return f'"{escaped}"'
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def render_condition(cond: Condition) -> str:
    """A condition in query-language syntax (fully parenthesized where
    nesting requires it)."""
    if isinstance(cond, TrueCondition):
        raise QueryError("TrueCondition has no surface syntax; omit the "
                         "clause instead")
    if isinstance(cond, Compare):
        return (f"{render_operand(cond.left)} {cond.op} "
                f"{render_operand(cond.right)}")
    if isinstance(cond, Between):
        return (f"{render_operand(cond.operand)} BETWEEN "
                f"{render_operand(cond.low)} AND "
                f"{render_operand(cond.high)}")
    if isinstance(cond, InList):
        inner = ", ".join(render_literal(v) for v in cond.values)
        return f"{render_operand(cond.operand)} IN [{inner}]"
    if isinstance(cond, And):
        return " AND ".join(_wrap(p) for p in cond.parts)
    if isinstance(cond, Or):
        return " OR ".join(_wrap(p) for p in cond.parts)
    if isinstance(cond, Not):
        return f"NOT {_wrap(cond.inner)}"
    raise QueryError(f"cannot render condition {cond!r}")


def _wrap(cond: Condition) -> str:
    text = render_condition(cond)
    if isinstance(cond, (And, Or)):
        return f"({text})"
    return text


def render_query(query: CohortQuery, action_column: str = "action") -> str:
    """A complete cohort query statement for ``query``.

    Args:
        action_column: name of the Ae column (the BIRTH FROM clause
            spells the birth action as ``<action_column> = <e>``).
    """
    if query.table is None:
        raise QueryError("query has no table name to render FROM")
    select = list(query.cohort_by) + ["COHORTSIZE", "AGE"]
    for agg in query.aggregates:
        if agg.func == "USERCOUNT":
            call = "UserCount()"
        elif agg.column is None:
            call = f"{agg.func.capitalize()}(*)"
        else:
            call = f"{agg.func.capitalize()}({agg.column})"
        select.append(f"{call} AS {agg.alias}")
    birth = f"{action_column} = {render_literal(query.birth_action)}"
    if not isinstance(query.birth_condition, TrueCondition):
        # _wrap keeps an OR condition grouped under the implicit AND
        # with the action conjunct.
        birth += f" AND {_wrap(query.birth_condition)}"
    lines = [
        f"SELECT {', '.join(select)}",
        f"FROM {query.table}",
        f"BIRTH FROM {birth}",
    ]
    if not isinstance(query.age_condition, TrueCondition):
        lines.append("AGE ACTIVITIES IN "
                     f"{render_condition(query.age_condition)}")
    if query.sessionize is not None:
        gap = query.sessionize.gap
        if float(gap).is_integer():
            gap = int(gap)
        lines.append(f"SESSIONIZE (GAP = {gap} seconds) "
                     f"AS {query.sessionize.column}")
    cohort = f"COHORT BY {', '.join(query.cohort_by)}"
    lines.append(f"{cohort} UNIT {query.cohort_time_bin}")
    return "\n".join(lines)
