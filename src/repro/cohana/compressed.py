"""Compressed-domain predicate evaluation for the vectorized kernel.

The decoded scan path materializes every referenced column to a per-row
code array and evaluates conditions with :func:`~repro.cohana.compile
.compile_mask`. This module evaluates the same conditions *against the
compressed structures* instead, tuple semantics unchanged:

* **dictionary columns** — a leaf predicate over one dictionary-encoded
  column and literals is evaluated once per *distinct* chunk value (the
  chunk dictionary, ``cardinality`` entries) and then mapped through the
  bit-packed per-row chunk ids. Cost drops from ``O(rows)`` comparisons
  plus a global-id gather to ``O(cardinality)`` comparisons plus a table
  lookup;
* **integer / float columns** — a leaf range predicate is first checked
  against the segment's MIN/MAX: a segment entirely inside the range is
  all-true and one entirely outside is all-false, with no decode at all.
  Only straddling segments fall back to the decoded comparison;
* **everything else** — ``Birth()`` references, ``AGE``, cross-column
  comparisons and disjunction arms that mix columns fall back to the
  decoded evaluator leaf by leaf, so any query shape still runs and the
  two scan modes produce identical masks bit for bit.

The boolean connectives (AND/OR/NOT) recurse here so that *each leaf*
independently picks the cheapest domain it can be evaluated in.
"""

from __future__ import annotations

import numpy as np

from repro.cohana.compile import EvalContext, compile_mask
from repro.cohort.conditions import (
    And,
    AttrRef,
    Between,
    Compare,
    Condition,
    InList,
    Literal,
    Not,
    Or,
    TrueCondition,
)
from repro.storage.delta import DeltaEncodedColumn
from repro.storage.dictionary import DictEncodedColumn
from repro.storage.raw import RawFloatColumn


class _DictDomainContext(EvalContext):
    """Evaluation context over a chunk dictionary's distinct global ids.

    One "row" per distinct value present in the chunk; only reached for
    leaf conditions over a single plain attribute, so ``birth_value`` /
    ``age`` are never called.
    """

    def __init__(self, gids: np.ndarray, dictionary):
        self._gids = gids
        self._dictionary = dictionary

    def rows(self) -> int:
        return len(self._gids)

    def plain(self, name: str) -> np.ndarray:
        return self._gids

    def dictionary_for(self, name: str):
        return self._dictionary


def single_attr_name(cond: Condition) -> str | None:
    """The one plain attribute a leaf constrains against literals, or
    None when the leaf is not of that shape (and must be evaluated on
    decoded rows)."""
    if isinstance(cond, Compare):
        if (isinstance(cond.left, AttrRef)
                and isinstance(cond.right, Literal)):
            return cond.left.name
        if (isinstance(cond.right, AttrRef)
                and isinstance(cond.left, Literal)):
            return cond.right.name
        return None
    if isinstance(cond, Between):
        if (isinstance(cond.operand, AttrRef)
                and isinstance(cond.low, Literal)
                and isinstance(cond.high, Literal)):
            return cond.operand.name
        return None
    if isinstance(cond, InList) and isinstance(cond.operand, AttrRef):
        return cond.operand.name
    return None


def leaf_value_range(cond: Condition, integral: bool = False):
    """``(low, high, exact)`` for a numeric leaf, or None.

    ``[low, high]`` is an inclusive necessary range for the leaf to
    hold; ``exact`` means the leaf is *equivalent* to membership in the
    range (so a segment entirely inside it satisfies every row). IN
    lists are necessary-only (gaps), hence ``exact=False``.

    ``integral`` declares the *column* domain integer-valued: only then
    are strict bounds tightened by one (and equivalent to inclusive
    membership). Over a float column, ``x < 5`` keeps the conservative
    inclusive bound ``high=5`` with ``exact=False`` — values like 4.5
    sit strictly between 4 and 5, so the integer rewrite would be
    wrong.
    """
    if isinstance(cond, Compare):
        if isinstance(cond.left, AttrRef) and isinstance(cond.right,
                                                         Literal):
            op, raw = cond.op, cond.right.raw
        elif isinstance(cond.right, AttrRef) and isinstance(cond.left,
                                                            Literal):
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
                  "!=": "!="}[cond.op]
            raw = cond.left.raw
        else:
            return None
        if not isinstance(raw, (int, float)):
            return None
        strict_int = integral and isinstance(raw, int)
        if op == "=":
            return (raw, raw, True)
        if op == "<":
            return (None, raw - 1 if strict_int else raw, strict_int)
        if op == "<=":
            return (None, raw, True)
        if op == ">":
            return (raw + 1 if strict_int else raw, None, strict_int)
        if op == ">=":
            return (raw, None, True)
        return None
    if isinstance(cond, Between):
        if not (isinstance(cond.operand, AttrRef)
                and isinstance(cond.low, Literal)
                and isinstance(cond.high, Literal)):
            return None
        lo, hi = cond.low.raw, cond.high.raw
        if not (isinstance(lo, (int, float))
                and isinstance(hi, (int, float))):
            return None
        return (lo, hi, True)
    if isinstance(cond, InList):
        values = [v for v in cond.values if isinstance(v, (int, float))]
        if not values or len(values) != len(cond.values):
            return None
        return (min(values), max(values), False)
    return None


def compressed_mask(cond: Condition, ctx: EvalContext, access,
                    positions: np.ndarray) -> np.ndarray:
    """Evaluate ``cond`` at ``positions`` of a chunk, compressed-domain
    where possible.

    ``ctx`` is the decoded fallback context over the same positions
    (the kernel's run/row context); ``access`` is the kernel's chunk
    accessor exposing ``schema``, ``chunk_column``, ``chunk_gids``,
    ``local_ids`` and ``global_dictionary``. The returned mask equals
    ``compile_mask(cond, ctx)`` exactly.
    """
    n = len(positions)
    if isinstance(cond, TrueCondition):
        return np.ones(n, dtype=bool)
    if isinstance(cond, And):
        mask = np.ones(n, dtype=bool)
        for part in cond.parts:
            mask &= compressed_mask(part, ctx, access, positions)
        return mask
    if isinstance(cond, Or):
        mask = np.zeros(n, dtype=bool)
        for part in cond.parts:
            mask |= compressed_mask(part, ctx, access, positions)
        return mask
    if isinstance(cond, Not):
        return ~compressed_mask(cond.inner, ctx, access, positions)
    return _leaf_mask(cond, ctx, access, positions)


def _leaf_mask(cond: Condition, ctx: EvalContext, access,
               positions: np.ndarray) -> np.ndarray:
    name = single_attr_name(cond)
    if name is not None and name in access.schema:
        col = access.chunk_column(name)
        if isinstance(col, DictEncodedColumn):
            small = compile_mask(
                cond, _DictDomainContext(access.chunk_gids(name),
                                         access.global_dictionary(name)))
            return small[access.local_ids(name)[positions]]
        if isinstance(col, (DeltaEncodedColumn, RawFloatColumn)):
            rng = leaf_value_range(
                cond, integral=isinstance(col, DeltaEncodedColumn))
            if rng is not None and len(col):
                low, high, exact = rng
                if not col.overlaps(low, high):
                    return np.zeros(len(positions), dtype=bool)
                if exact and _segment_within(col, low, high):
                    return np.ones(len(positions), dtype=bool)
    return compile_mask(cond, ctx)


def _segment_within(col, low, high) -> bool:
    """Does the whole segment fall inside ``[low, high]``?"""
    if low is not None and col.min_value < low:
        return False
    if high is not None and col.max_value > high:
        return False
    return True
