"""COHANA: the columnar cohort query engine (Section 4)."""

from repro.cohana.binder import bind_cohort_query
from repro.cohana.engine import EXECUTORS, CohanaEngine
from repro.cohana.parser import ParsedCohortQuery, parse_cohort_query
from repro.cohana.pipeline import (
    BACKENDS,
    KERNELS,
    ChunkKernel,
    ChunkPartial,
    ChunkScheduler,
    ExecStats,
    ExecutionConfig,
    register_kernel,
)
from repro.cohana.render import render_condition, render_query
from repro.cohana.planner import (
    SCAN_MODES,
    CohortPlan,
    ColumnBound,
    extract_birth_bounds,
    extract_time_bounds,
    plan_query,
    required_columns,
)
from repro.cohana.tablescan import ChunkScan, LazyRow

__all__ = [
    "BACKENDS",
    "ChunkKernel",
    "ChunkPartial",
    "ChunkScan",
    "ChunkScheduler",
    "CohanaEngine",
    "CohortPlan",
    "ColumnBound",
    "EXECUTORS",
    "ExecStats",
    "ExecutionConfig",
    "KERNELS",
    "LazyRow",
    "ParsedCohortQuery",
    "SCAN_MODES",
    "bind_cohort_query",
    "extract_birth_bounds",
    "extract_time_bounds",
    "parse_cohort_query",
    "plan_query",
    "register_kernel",
    "render_condition",
    "render_query",
    "required_columns",
]
