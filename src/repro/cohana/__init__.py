"""COHANA: the columnar cohort query engine (Section 4)."""

from repro.cohana.binder import bind_cohort_query
from repro.cohana.engine import CohanaEngine
from repro.cohana.operators import (
    KernelOp,
    PhysicalPlan,
    SessionizeOp,
    TableScanOp,
    lower_plan,
)
from repro.cohana.parser import ParsedCohortQuery, parse_cohort_query
from repro.cohana.pipeline import (
    BACKENDS,
    KERNELS,
    ChunkKernel,
    ChunkPartial,
    ChunkScheduler,
    ExecStats,
    ExecutionConfig,
    register_kernel,
)
from repro.cohana.render import render_condition, render_query
from repro.cohana.planner import (
    SCAN_MODES,
    CohortPlan,
    ColumnBound,
    LogicalOp,
    extract_birth_bounds,
    extract_time_bounds,
    plan_query,
    required_columns,
)
from repro.cohana.tablescan import ChunkScan, LazyRow

__all__ = [
    "BACKENDS",
    "ChunkKernel",
    "ChunkPartial",
    "ChunkScan",
    "ChunkScheduler",
    "CohanaEngine",
    "CohortPlan",
    "ColumnBound",
    "ExecStats",
    "ExecutionConfig",
    "KERNELS",
    "KernelOp",
    "LazyRow",
    "LogicalOp",
    "ParsedCohortQuery",
    "PhysicalPlan",
    "SCAN_MODES",
    "SessionizeOp",
    "TableScanOp",
    "bind_cohort_query",
    "extract_birth_bounds",
    "extract_time_bounds",
    "lower_plan",
    "parse_cohort_query",
    "plan_query",
    "register_kernel",
    "render_condition",
    "render_query",
    "required_columns",
]
