"""The faithful tuple-at-a-time executor (Algorithms 1 and 2).

This executor follows the paper's pseudocode as closely as Python allows:
user-block processing through the modified TableScan, ``GetBirthTuple``
scanning each block for the first birth-action tuple, ``SkipCurUser`` on
unqualified users, and array-based hash aggregation.

It produces bit-identical results to the vectorized executor and the
oracle, but runs one tuple at a time — the benchmark suite uses the gap
between the two executors as an ablation showing why the paper's scan
throughput needs compiled/vectorized loops (Python-level iteration is the
"interpreted overhead" case).
"""

from __future__ import annotations

from repro.cohana.aggregate import (
    ArrayAggregateTable,
    CohortCodec,
    CohortSizeTable,
)
from repro.cohana.planner import CohortPlan
from repro.cohana.tablescan import ChunkScan, LazyRow
from repro.cohana.vectorized import ExecStats, _prunable
from repro.cohort.concepts import normalize_age
from repro.cohort.operators import cohort_label
from repro.cohort.result import CohortResult
from repro.storage.reader import CompressedActivityTable


def execute_plan(table: CompressedActivityTable,
                 plan: CohortPlan) -> tuple[CohortResult, ExecStats]:
    """Run ``plan`` tuple-at-a-time over every (non-pruned) chunk."""
    query = plan.query
    stats = ExecStats(chunks_total=table.n_chunks)
    codec = CohortCodec()
    sizes = CohortSizeTable()
    totals = ArrayAggregateTable(query.aggregates)
    if plan.birth_action_gid is not None:
        for chunk in table.chunks:
            if plan.prune and _prunable(table, chunk, plan):
                stats.chunks_pruned += 1
                continue
            stats.chunks_scanned += 1
            stats.rows_scanned += chunk.n_rows
            partial = ArrayAggregateTable(query.aggregates)
            _scan_chunk(table, chunk, plan, codec, sizes, partial, stats)
            totals.merge(partial)

    rows = []
    order = sorted(
        ((code, age, cell) for code, age, cell in totals.buckets()),
        key=lambda item: (tuple(str(v) for v in codec.label(item[0])),
                          item[1]))
    for code, age, cell in order:
        rows.append((*codec.label(code), sizes.count(code), age,
                     *(acc.result() for acc in cell)))
    return (CohortResult(columns=query.output_columns, rows=rows,
                         n_cohort_columns=len(query.cohort_by)),
            stats)


def _scan_chunk(table, chunk, plan: CohortPlan, codec: CohortCodec,
                sizes: CohortSizeTable, aggregates: ArrayAggregateTable,
                stats: ExecStats) -> None:
    """Algorithm 2's Open() loop, fused with Algorithm 1's skipping."""
    query = plan.query
    scan = ChunkScan(table, chunk)
    schema = table.schema
    time_name = schema.time.name
    while scan.has_more_users():
        gid, first, count = scan.get_next_user()
        stats.users_seen += 1
        birth_row = _get_birth_tuple(scan, plan.birth_action_gid)
        if birth_row is None:
            scan.skip_cur_user()
            continue
        # Birth selection on the single birth tuple (Algorithm 1 line 17).
        if plan.pushdown and not query.birth_condition.evaluate_row(
                birth_row, birth_row, None):
            scan.skip_cur_user()
            continue
        if not plan.pushdown and not query.birth_condition.evaluate_row(
                birth_row, birth_row, None):
            # Without push-down the user is still fully scanned (the age
            # selection runs first), then discarded — the cost the
            # optimization avoids.
            for _ in scan.peek_block_rows():
                pass
            scan.skip_cur_user()
            continue
        stats.users_qualified += 1
        label = cohort_label(birth_row, query, schema)
        code = codec.code(label)
        sizes.increment(code)
        birth_time = birth_row[time_name]
        scan.rewind_current_user()
        row = scan.get_next()
        while row is not None:
            raw = row[time_name] - birth_time
            if raw > 0:
                age = normalize_age(raw, query.age_unit)
                if query.age_condition.evaluate_row(row, birth_row, age):
                    aggregates.update(code, age, row, gid)
                    stats.tuples_aggregated += 1
            row = scan.get_next()


def _get_birth_tuple(scan: ChunkScan, birth_gid: int) -> LazyRow | None:
    """Algorithm 1's GetBirthTuple: the block's first birth-action tuple.

    Uses the action column's chunk ids directly (no string decode) and the
    time-ordering property: the first match is the minimum-time match.
    """
    for row in scan.peek_block_rows():
        if scan.action_gid_at(row.position) == birth_gid:
            return row
    return None
