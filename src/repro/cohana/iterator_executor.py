"""The faithful tuple-at-a-time per-chunk kernel (Algorithms 1 and 2).

This kernel follows the paper's pseudocode as closely as Python allows:
user-block processing through the modified TableScan, ``GetBirthTuple``
scanning each block for the first birth-action tuple, ``SkipCurUser`` on
unqualified users, and array-based hash aggregation.

It produces bit-identical results to the vectorized kernel and the
oracle, but runs one tuple at a time — the benchmark suite uses the gap
between the two kernels as an ablation showing why the paper's scan
throughput needs compiled/vectorized loops (Python-level iteration is the
"interpreted overhead" case).

Like every kernel, it only sees one chunk at a time: chunk iteration,
pruning and the cross-chunk merge live in :mod:`repro.cohana.pipeline`.
At the end of a chunk scan, the array-based accumulators are drained into
the pipeline's canonical partial-state protocol (USERCOUNT drains to a
plain count — exact because no user spans two chunks, Section 4.5).
"""

from __future__ import annotations

from repro.cohana.aggregate import (
    ArrayAggregateTable,
    CohortCodec,
    CohortSizeTable,
)
from repro.cohana.pipeline import (
    ChunkKernel,
    ChunkPartial,
    ExecStats,
    ExecutionConfig,
    execute,
    register_kernel,
)
from repro.cohana.planner import CohortPlan
from repro.cohana.tablescan import ChunkScan, LazyRow
from repro.cohort.concepts import normalize_age
from repro.cohort.operators import cohort_label
from repro.cohort.result import CohortResult
from repro.storage.chunk import Chunk
from repro.storage.reader import CompressedActivityTable


def scan_chunk(table: CompressedActivityTable, chunk: Chunk,
               plan: CohortPlan) -> ChunkPartial:
    """The pure per-chunk kernel: one chunk in, one ChunkPartial out."""
    query = plan.query
    partial = ChunkPartial(n_aggregates=len(query.aggregates))
    partial.rows_scanned += chunk.n_rows
    codec = CohortCodec()
    sizes = CohortSizeTable()
    aggregates = ArrayAggregateTable(query.aggregates)
    _scan_chunk(table, chunk, plan, codec, sizes, aggregates, partial)

    for code, label in enumerate(codec.labels()):
        count = sizes.count(code)
        if count:
            partial.add_cohort_size(label, count)
    for code, age, cell in aggregates.buckets():
        key = (codec.label(code), age)
        for agg_index, (agg, acc) in enumerate(zip(query.aggregates,
                                                   cell)):
            partial.add_partial(key, agg_index, agg.func,
                                _drain_accumulator(agg.func, acc))
    return partial


def _drain_accumulator(func: str, acc):
    """An accumulator's state in the pipeline's canonical partial form."""
    if func == "AVG":
        return (acc.total, acc.count)
    return acc.result()


def _scan_chunk(table, chunk, plan: CohortPlan, codec: CohortCodec,
                sizes: CohortSizeTable, aggregates: ArrayAggregateTable,
                partial: ChunkPartial) -> None:
    """Algorithm 2's Open() loop, fused with Algorithm 1's skipping."""
    query = plan.query
    scan = ChunkScan(table, chunk)
    schema = table.schema
    time_name = schema.time.name
    while scan.has_more_users():
        gid, first, count = scan.get_next_user()
        partial.users_seen += 1
        birth_row = _get_birth_tuple(scan, plan.birth_action_gid)
        if birth_row is None:
            scan.skip_cur_user()
            continue
        # Birth selection on the single birth tuple (Algorithm 1 line 17).
        if plan.pushdown and not query.birth_condition.evaluate_row(
                birth_row, birth_row, None):
            scan.skip_cur_user()
            continue
        if not plan.pushdown and not query.birth_condition.evaluate_row(
                birth_row, birth_row, None):
            # Without push-down the user is still fully scanned (the age
            # selection runs first), then discarded — the cost the
            # optimization avoids.
            for _ in scan.peek_block_rows():
                pass
            scan.skip_cur_user()
            continue
        partial.users_qualified += 1
        label = cohort_label(birth_row, query, schema)
        code = codec.code(label)
        sizes.increment(code)
        birth_time = birth_row[time_name]
        scan.rewind_current_user()
        row = scan.get_next()
        while row is not None:
            raw = row[time_name] - birth_time
            if raw > 0:
                age = normalize_age(raw, query.age_unit)
                if query.age_condition.evaluate_row(row, birth_row, age):
                    aggregates.update(code, age, row, gid)
                    partial.tuples_aggregated += 1
            row = scan.get_next()


def _get_birth_tuple(scan: ChunkScan, birth_gid: int) -> LazyRow | None:
    """Algorithm 1's GetBirthTuple: the block's first birth-action tuple.

    Uses the action column's chunk ids directly (no string decode) and the
    time-ordering property: the first match is the minimum-time match.
    """
    for row in scan.peek_block_rows():
        if scan.action_gid_at(row.position) == birth_gid:
            return row
    return None


KERNEL = register_kernel(ChunkKernel(name="iterator", scan=scan_chunk,
                                     decoded_labels=True))


def execute_plan(table: CompressedActivityTable,
                 plan: CohortPlan) -> tuple[CohortResult, ExecStats]:
    """Serial execution of ``plan`` (compatibility entry point; the
    pipeline's :func:`~repro.cohana.pipeline.execute` is the real API)."""
    return execute(table, plan, kernel=KERNEL, config=ExecutionConfig())
