"""Query planning for COHANA (Section 4.2).

The logical plan of a cohort query is the fixed operator chain
``TableScan → σ^b → σ^g → γ^c`` (Figure 5). Planning decides:

* **push-down** — birth selections are always evaluated below age
  selections (Equation 1 makes this safe), letting the scan skip every
  tuple of unqualified users;
* **chunk pruning** — the birth action's global id is looked up once; any
  chunk whose action chunk-dictionary lacks it is skipped, and any chunk
  whose time range misses the birth condition's time bounds is skipped
  (a user's tuples live in one chunk, so its birth tuple does too);
* **coded-domain rewrite** — every sargable birth-condition conjunct is
  translated into the *coded* domain once, at plan time
  (:func:`extract_birth_bounds`): equality and IN on dictionary-encoded
  columns become global-id sets, string ranges become global-id ranges
  (sorted dictionaries make id order lexicographic order), and integer
  ranges stay as-is. The resulting :class:`ColumnBound` list drives
  zone-map pruning in the scheduler and predicate short-circuits in the
  compressed scan path, with no per-chunk dictionary lookups;
* **column pruning** — only columns referenced by the query are decoded.

One deliberate deviation from Section 4.1's prose: the paper also prunes
chunks via *age*-selection ranges. We restrict range pruning to the
*birth* condition, because a chunk with no in-range age tuples still
contributes its users to cohort sizes (birth tuples are always retained
by σ^g, and cohort sizes span chunks), so skipping it would under-count
``COHORTSIZE``. Birth-condition pruning is always safe: a user's birth
tuple lives in the same chunk as the user.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.cohana.binder import split_conjuncts
from repro.cohort.conditions import (
    And,
    AttrRef,
    Between,
    Compare,
    Condition,
    InList,
    Literal,
)
from repro.cohort.query import CohortQuery
from repro.schema import ActivitySchema, ColumnRole
from repro.storage.chunk import encoded_column_kind
from repro.storage.reader import CompressedActivityTable


#: Valid values of the ``scan_mode`` knob (plan- and config-level).
SCAN_MODES = ("auto", "decoded", "compressed")


@dataclass(frozen=True)
class ColumnBound:
    """Coded-domain constraints one birth-condition column must satisfy.

    ``low``/``high`` are an inclusive necessary range in the *coded*
    domain — global-dictionary ids for string columns (sorted
    dictionaries make id order value order), plain values for integer
    and float columns. ``gids`` is an exact membership set for
    dictionary columns constrained by ``=`` / ``IN``: the chunk must
    contain at least one of these global ids to host a qualifying birth
    tuple.

    Attributes:
        column: the constrained column.
        kind: its encoder family (``'dict'``, ``'delta'`` or ``'raw'``).
        low, high: inclusive coded-domain bounds (None = unbounded).
        gids: exact global-id membership set, or None when the
            constraint is range-only.
    """

    column: str
    kind: str
    low: int | float | None = None
    high: int | float | None = None
    gids: tuple[int, ...] | None = None

    def describe(self) -> str:
        """Compact rendering for EXPLAIN output."""
        if self.gids is not None:
            return f"{self.column} IN ids{list(self.gids)}"
        return f"{self.column} in [{self.low}, {self.high}]"


@dataclass(frozen=True)
class LogicalOp:
    """One node of the logical operator tree.

    The logical plan is a single-child chain (cohort queries have no
    joins yet): ``Aggregate → CohortProject → AgeSelect → BirthSelect
    [→ Sessionize] → TableScan``, root first. ``detail`` is the node's
    parameter rendering; ``annotation`` an optional trailing note
    (e.g. the push-down marker).
    """

    name: str
    detail: str
    annotation: str | None = None
    child: "LogicalOp | None" = None

    def chain(self) -> list["LogicalOp"]:
        """The operator chain from this node down to the leaf."""
        nodes, node = [], self
        while node is not None:
            nodes.append(node)
            node = node.child
        return nodes

    def label(self) -> str:
        """`Name(detail) [annotation]` — one EXPLAIN line, unindented."""
        text = f"{self.name}({self.detail})"
        if self.annotation:
            text += f" [{self.annotation}]"
        return text


@dataclass(frozen=True)
class CohortPlan:
    """A planned cohort query, ready for execution.

    Attributes:
        query: the validated cohort query.
        birth_action_gid: global id of the birth action, or None when the
            action appears nowhere in the table (empty result).
        time_low, time_high: birth-time bounds extracted from the birth
            condition for chunk pruning (None = unbounded).
        columns: every non-user column the executors must decode.
        pushdown: evaluate σ^b before σ^g (the paper's optimization).
        prune: skip chunks via action dictionaries / time ranges / zone
            maps.
        birth_bounds: coded-domain bounds per birth-condition column
            (:class:`ColumnBound`), used for zone-map pruning.
        birth_satisfiable: False when some birth conjunct can match no
            value anywhere in the table (e.g. equality with a string
            absent from the global dictionary) — the result is provably
            empty and every chunk is prunable.
        scan_mode: ``'decoded'`` (materialize codes, then filter),
            ``'compressed'`` (evaluate predicates in the compressed
            domain and use zone-map/metadata pruning), or ``'auto'``
            (compressed wherever the chunk carries zone maps).
    """

    query: CohortQuery
    birth_action_gid: int | None
    time_low: int | None
    time_high: int | None
    columns: tuple[str, ...]
    pushdown: bool = True
    prune: bool = True
    birth_bounds: tuple[ColumnBound, ...] = ()
    birth_satisfiable: bool = True
    scan_mode: str = "auto"

    def logical(self) -> LogicalOp:
        """The logical operator tree for this plan, root first.

        ``Aggregate → CohortProject → AgeSelect → BirthSelect
        [→ Sessionize] → TableScan``. The planner lowers this chain to a
        physical operator tree (:func:`repro.cohana.operators.lower_plan`)
        that the chunk scheduler drives.
        """
        q = self.query
        bounds = ", ".join(b.describe() for b in self.birth_bounds)
        if not self.birth_satisfiable:
            bounds = "unsatisfiable"
        node = LogicalOp(
            "TableScan",
            f"columns={list(self.columns)}, "
            f"prune={'on' if self.prune else 'off'}, "
            f"scan_mode={self.scan_mode}, "
            f"birth_gid={self.birth_action_gid}, "
            f"time_range=[{self.time_low}, {self.time_high}], "
            f"bounds=[{bounds}]")
        if q.sessionize is not None:
            gap = q.sessionize.gap
            if float(gap).is_integer():
                gap = int(gap)
            node = LogicalOp(
                "Sessionize",
                f"gap={gap}s, column={q.sessionize.column!r}",
                child=node)
        node = LogicalOp(
            "BirthSelect", str(q.birth_condition),
            ("pushed below age selection" if self.pushdown
             else "not pushed"), node)
        node = LogicalOp("AgeSelect", str(q.age_condition), None, node)
        node = LogicalOp(
            "CohortProject",
            f"L={list(q.cohort_by)}, time_bin={q.cohort_time_bin}",
            None, node)
        return LogicalOp(
            "CohortAggregate",
            f"L={list(q.cohort_by)}, e={q.birth_action!r}, "
            f"f={[str(a) for a in q.aggregates]}",
            None, node)

    def describe(self) -> str:
        """A human-readable plan, in the spirit of EXPLAIN."""
        root, *rest = self.logical().chain()
        return "\n".join([root.label()]
                         + [f"  {node.label()}" for node in rest])


def plan_query(query: CohortQuery, table: CompressedActivityTable,
               pushdown: bool = True, prune: bool = True,
               scan_mode: str = "auto") -> CohortPlan:
    """Build the physical plan for ``query`` over ``table``."""
    schema = table.schema
    query.validate(schema)
    # Derived columns (sessionize) are visible to column pruning but
    # carry no storage statistics, so bound extraction keeps the stored
    # schema: a derived name simply is not sargable.
    effective = query.effective_schema(schema)
    gid = table.global_id(schema.action.name, query.birth_action)
    low, high = extract_time_bounds(query.birth_condition,
                                    schema.time.name)
    bounds, satisfiable = extract_birth_bounds(query.birth_condition,
                                               schema, table)
    return CohortPlan(
        query=query,
        birth_action_gid=gid,
        time_low=low,
        time_high=high,
        columns=tuple(required_columns(query, effective)),
        pushdown=pushdown,
        prune=prune,
        birth_bounds=bounds,
        birth_satisfiable=satisfiable,
        scan_mode=scan_mode,
    )


def required_columns(query: CohortQuery,
                     schema: ActivitySchema) -> list[str]:
    """The non-user columns a cohort query touches, in schema order."""
    needed = {schema.time.name, schema.action.name}
    needed.update(query.cohort_by)
    for cond in (query.birth_condition, query.age_condition):
        needed.update(cond.plain_attributes())
        needed.update(cond.birth_attributes())
    for agg in query.aggregates:
        if agg.column:
            needed.add(agg.column)
    needed.discard(schema.user.name)
    return [c.name for c in schema
            if c.name in needed and c.role is not ColumnRole.USER]


def extract_time_bounds(condition: Condition,
                        time_column: str) -> tuple[int | None, int | None]:
    """Derive conservative [low, high] birth-time bounds from a birth
    condition's top-level conjuncts.

    Only conjunctive constraints are used (a disjunction could admit
    births outside any single bound). The bounds are *necessary*
    conditions, so pruning with them never drops qualifying chunks.
    """
    conjuncts = condition.parts if isinstance(condition, And) else (
        condition,)
    low: int | None = None
    high: int | None = None

    def tighten(new_low, new_high):
        nonlocal low, high
        if new_low is not None:
            low = new_low if low is None else max(low, new_low)
        if new_high is not None:
            high = new_high if high is None else min(high, new_high)

    for part in conjuncts:
        if isinstance(part, Between) and _is_time_attr(part.operand,
                                                       time_column):
            if isinstance(part.low, Literal) and isinstance(part.high,
                                                            Literal):
                tighten(int(part.low.raw), int(part.high.raw))
        elif isinstance(part, Compare):
            bounds = _compare_bounds(part, time_column)
            if bounds is not None:
                tighten(*bounds)
        elif (isinstance(part, InList)
              and _is_time_attr(part.operand, time_column)
              and part.values):
            tighten(int(min(part.values)), int(max(part.values)))
    return low, high


# ---------------------------------------------------------------------------
# Coded-domain birth bounds (zone-map pruning / compressed scans)
# ---------------------------------------------------------------------------


class _Accumulator:
    """Per-column intersection of conjunct constraints (coded domain)."""

    def __init__(self, kind: str):
        self.kind = kind
        self.low = None
        self.high = None
        self.gids: set[int] | None = None
        self.satisfiable = True

    def tighten(self, low, high) -> None:
        if low is not None:
            self.low = low if self.low is None else max(self.low, low)
        if high is not None:
            self.high = high if self.high is None else min(self.high, high)
        if (self.low is not None and self.high is not None
                and self.low > self.high):
            self.satisfiable = False

    def restrict_gids(self, gids: set[int]) -> None:
        self.gids = gids if self.gids is None else (self.gids & gids)
        if not self.gids:
            self.satisfiable = False
            return
        self.tighten(min(self.gids), max(self.gids))


def extract_birth_bounds(condition: Condition, schema: ActivitySchema,
                         table: CompressedActivityTable,
                         ) -> tuple[tuple[ColumnBound, ...], bool]:
    """Rewrite the birth condition's sargable conjuncts into the coded
    domain.

    Returns ``(bounds, satisfiable)``. Each :class:`ColumnBound` is a
    *necessary* constraint on one column: string literals are translated
    to global-dictionary ids once, here (equality/IN become id sets,
    ordered comparisons become id ranges via the sorted dictionary), and
    integer/float literals stay as values. ``satisfiable=False`` means
    some conjunct provably matches nothing in this table (the result is
    empty without scanning).

    Only top-level conjuncts over a single plain attribute and literals
    are used; anything else (disjunctions, ``Birth()`` refs, ``!=``,
    cross-column comparisons) is simply not rewritten — the bounds stay
    conservative, so pruning with them never drops qualifying chunks.
    """
    accs: dict[str, _Accumulator] = {}

    def acc_for(name: str) -> _Accumulator | None:
        if name not in schema or name == schema.user.name:
            return None
        spec = schema.column(name)
        if spec.role is ColumnRole.USER:
            return None
        if name not in accs:
            accs[name] = _Accumulator(encoded_column_kind(schema, name))
        return accs[name]

    for part in split_conjuncts(condition):
        _fold_conjunct(part, schema, table, acc_for)

    satisfiable = all(a.satisfiable for a in accs.values())
    bounds = tuple(
        ColumnBound(column=name, kind=acc.kind, low=acc.low, high=acc.high,
                    gids=(tuple(sorted(acc.gids))
                          if acc.gids is not None else None))
        for name, acc in sorted(accs.items())
        if acc.low is not None or acc.high is not None
        or acc.gids is not None)
    return bounds, satisfiable


def _fold_conjunct(part: Condition, schema, table, acc_for) -> None:
    """Fold one conjunct into the per-column accumulators (no-op when
    the conjunct is not sargable)."""
    if isinstance(part, Compare):
        attr, op, literal = _attr_op_literal(part)
        if attr is None:
            return
        acc = acc_for(attr)
        if acc is None:
            return
        if acc.kind == "dict":
            _fold_string_compare(acc, op, literal, table, attr)
        else:
            _fold_numeric_compare(acc, op, literal)
    elif isinstance(part, Between):
        if not (isinstance(part.operand, AttrRef)
                and isinstance(part.low, Literal)
                and isinstance(part.high, Literal)):
            return
        acc = acc_for(part.operand.name)
        if acc is None:
            return
        if acc.kind == "dict":
            _fold_string_compare(acc, ">=", part.low.raw, table,
                                 part.operand.name)
            _fold_string_compare(acc, "<=", part.high.raw, table,
                                 part.operand.name)
        else:
            _fold_numeric_compare(acc, ">=", part.low.raw)
            _fold_numeric_compare(acc, "<=", part.high.raw)
    elif isinstance(part, InList):
        if not isinstance(part.operand, AttrRef) or not part.values:
            return
        acc = acc_for(part.operand.name)
        if acc is None:
            return
        if acc.kind == "dict":
            gids = {table.global_id(part.operand.name, v)
                    for v in part.values if isinstance(v, str)}
            gids.discard(None)
            acc.restrict_gids({int(g) for g in gids})
        else:
            values = [v for v in part.values
                      if isinstance(v, (int, float))]
            if values:
                acc.tighten(min(values), max(values))


def _attr_op_literal(part: Compare):
    """Normalize a comparison to (attr_name, op, literal), attr left."""
    if isinstance(part.left, AttrRef) and isinstance(part.right, Literal):
        return part.left.name, part.op, part.right.raw
    if isinstance(part.right, AttrRef) and isinstance(part.left, Literal):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
                   "!=": "!="}[part.op]
        return part.right.name, flipped, part.left.raw
    return None, None, None


def _fold_string_compare(acc: _Accumulator, op: str, literal, table,
                         column: str) -> None:
    """Translate one string comparison into global-id space."""
    if not isinstance(literal, str):
        return
    values = table.dictionary(column).values
    if op == "=":
        gid = table.global_id(column, literal)
        if gid is None:
            acc.satisfiable = False
            return
        acc.restrict_gids({int(gid)})
    elif op == "<":
        acc.tighten(None, bisect.bisect_left(values, literal) - 1)
    elif op == "<=":
        acc.tighten(None, bisect.bisect_right(values, literal) - 1)
    elif op == ">":
        acc.tighten(bisect.bisect_right(values, literal), None)
    elif op == ">=":
        acc.tighten(bisect.bisect_left(values, literal), None)
    # '!=' carries no range information.
    if acc.high is not None and acc.high < 0:
        acc.satisfiable = False
    if acc.low is not None and acc.low >= len(values):
        acc.satisfiable = False


def _fold_numeric_compare(acc: _Accumulator, op: str, literal) -> None:
    """Fold one integer/float comparison into value-domain bounds.

    Strict bounds are tightened by one only when both the column domain
    (``'delta'`` = integers) and the literal are integral; a raw
    (float) column keeps the literal itself as a conservative inclusive
    bound, since values may fall strictly between ``literal - 1`` and
    ``literal``.
    """
    if not isinstance(literal, (int, float)):
        return
    integral = acc.kind == "delta" and isinstance(literal, int)
    if op == "=":
        acc.tighten(literal, literal)
    elif op == "<":
        acc.tighten(None, literal - 1 if integral else literal)
    elif op == "<=":
        acc.tighten(None, literal)
    elif op == ">":
        acc.tighten(literal + 1 if integral else literal, None)
    elif op == ">=":
        acc.tighten(literal, None)


def _is_time_attr(operand, time_column: str) -> bool:
    return isinstance(operand, AttrRef) and operand.name == time_column


def _compare_bounds(part: Compare, time_column: str):
    if _is_time_attr(part.left, time_column) and isinstance(part.right,
                                                            Literal):
        value = int(part.right.raw)
        op = part.op
    elif _is_time_attr(part.right, time_column) and isinstance(part.left,
                                                               Literal):
        value = int(part.left.raw)
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
              "!=": "!="}[part.op]
    else:
        return None
    if op == "=":
        return (value, value)
    if op in ("<", "<="):
        return (None, value)
    if op in (">", ">="):
        return (value, None)
    return None
