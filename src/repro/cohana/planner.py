"""Query planning for COHANA (Section 4.2).

The logical plan of a cohort query is the fixed operator chain
``TableScan → σ^b → σ^g → γ^c`` (Figure 5). Planning decides:

* **push-down** — birth selections are always evaluated below age
  selections (Equation 1 makes this safe), letting the scan skip every
  tuple of unqualified users;
* **chunk pruning** — the birth action's global id is looked up once; any
  chunk whose action chunk-dictionary lacks it is skipped, and any chunk
  whose time range misses the birth condition's time bounds is skipped
  (a user's tuples live in one chunk, so its birth tuple does too);
* **column pruning** — only columns referenced by the query are decoded.

One deliberate deviation from Section 4.1's prose: the paper also prunes
chunks via *age*-selection ranges. We restrict range pruning to the
*birth* condition, because a chunk with no in-range age tuples still
contributes its users to cohort sizes (birth tuples are always retained
by σ^g, and cohort sizes span chunks), so skipping it would under-count
``COHORTSIZE``. Birth-condition pruning is always safe: a user's birth
tuple lives in the same chunk as the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cohort.conditions import (
    And,
    AttrRef,
    Between,
    Compare,
    Condition,
    InList,
    Literal,
)
from repro.cohort.query import CohortQuery
from repro.schema import ActivitySchema, ColumnRole
from repro.storage.reader import CompressedActivityTable


@dataclass(frozen=True)
class CohortPlan:
    """A planned cohort query, ready for execution.

    Attributes:
        query: the validated cohort query.
        birth_action_gid: global id of the birth action, or None when the
            action appears nowhere in the table (empty result).
        time_low, time_high: birth-time bounds extracted from the birth
            condition for chunk pruning (None = unbounded).
        columns: every non-user column the executors must decode.
        pushdown: evaluate σ^b before σ^g (the paper's optimization).
        prune: skip chunks via action dictionaries / time ranges.
    """

    query: CohortQuery
    birth_action_gid: int | None
    time_low: int | None
    time_high: int | None
    columns: tuple[str, ...]
    pushdown: bool = True
    prune: bool = True

    def describe(self) -> str:
        """A human-readable plan, in the spirit of EXPLAIN."""
        q = self.query
        lines = [
            f"CohortAggregate(L={list(q.cohort_by)}, e={q.birth_action!r}, "
            f"f={[str(a) for a in q.aggregates]})",
            f"  AgeSelect({q.age_condition})",
            f"  BirthSelect({q.birth_condition}) "
            f"[{'pushed below age selection' if self.pushdown else 'not pushed'}]",
            f"  TableScan(columns={list(self.columns)}, "
            f"prune={'on' if self.prune else 'off'}, "
            f"birth_gid={self.birth_action_gid}, "
            f"time_range=[{self.time_low}, {self.time_high}])",
        ]
        return "\n".join(lines)


def plan_query(query: CohortQuery, table: CompressedActivityTable,
               pushdown: bool = True, prune: bool = True) -> CohortPlan:
    """Build the physical plan for ``query`` over ``table``."""
    schema = table.schema
    query.validate(schema)
    gid = table.global_id(schema.action.name, query.birth_action)
    low, high = extract_time_bounds(query.birth_condition,
                                    schema.time.name)
    return CohortPlan(
        query=query,
        birth_action_gid=gid,
        time_low=low,
        time_high=high,
        columns=tuple(required_columns(query, schema)),
        pushdown=pushdown,
        prune=prune,
    )


def required_columns(query: CohortQuery,
                     schema: ActivitySchema) -> list[str]:
    """The non-user columns a cohort query touches, in schema order."""
    needed = {schema.time.name, schema.action.name}
    needed.update(query.cohort_by)
    for cond in (query.birth_condition, query.age_condition):
        needed.update(cond.plain_attributes())
        needed.update(cond.birth_attributes())
    for agg in query.aggregates:
        if agg.column:
            needed.add(agg.column)
    needed.discard(schema.user.name)
    return [c.name for c in schema
            if c.name in needed and c.role is not ColumnRole.USER]


def extract_time_bounds(condition: Condition,
                        time_column: str) -> tuple[int | None, int | None]:
    """Derive conservative [low, high] birth-time bounds from a birth
    condition's top-level conjuncts.

    Only conjunctive constraints are used (a disjunction could admit
    births outside any single bound). The bounds are *necessary*
    conditions, so pruning with them never drops qualifying chunks.
    """
    conjuncts = condition.parts if isinstance(condition, And) else (
        condition,)
    low: int | None = None
    high: int | None = None

    def tighten(new_low, new_high):
        nonlocal low, high
        if new_low is not None:
            low = new_low if low is None else max(low, new_low)
        if new_high is not None:
            high = new_high if high is None else min(high, new_high)

    for part in conjuncts:
        if isinstance(part, Between) and _is_time_attr(part.operand,
                                                       time_column):
            if isinstance(part.low, Literal) and isinstance(part.high,
                                                            Literal):
                tighten(int(part.low.raw), int(part.high.raw))
        elif isinstance(part, Compare):
            bounds = _compare_bounds(part, time_column)
            if bounds is not None:
                tighten(*bounds)
        elif isinstance(part, InList) and _is_time_attr(part.operand,
                                                        time_column):
            if part.values:
                tighten(int(min(part.values)), int(max(part.values)))
    return low, high


def _is_time_attr(operand, time_column: str) -> bool:
    return isinstance(operand, AttrRef) and operand.name == time_column


def _compare_bounds(part: Compare, time_column: str):
    if _is_time_attr(part.left, time_column) and isinstance(part.right,
                                                            Literal):
        value = int(part.right.raw)
        op = part.op
    elif _is_time_attr(part.right, time_column) and isinstance(part.left,
                                                               Literal):
        value = int(part.left.raw)
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
              "!=": "!="}[part.op]
    else:
        return None
    if op == "=":
        return (value, value)
    if op in ("<", "<="):
        return (None, value)
    if op in (">", ">="):
        return (value, None)
    return None
