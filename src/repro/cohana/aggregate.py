"""Array-based hash tables for cohort aggregation (Section 4.4).

The paper follows [10, 11] and replaces generic hash maps with arrays in
the aggregation inner loop: cohorts get small dense integer codes, ages
are small integers, so the (cohort, age) bucket state lives in a
2-D ragged array indexed ``[cohort_code][age]``. Modern CPUs pipeline the
array accesses; in Python the win is smaller but the structure is the
same, and the iterator executor uses it verbatim.
"""

from __future__ import annotations

from repro.cohort.aggregates import AggregateSpec, make_accumulator


class CohortCodec:
    """Assigns dense integer codes to cohort label tuples."""

    def __init__(self):
        self._codes: dict[tuple, int] = {}
        self._labels: list[tuple] = []

    def code(self, label: tuple) -> int:
        """The dense code for ``label``, allocating on first sight."""
        found = self._codes.get(label)
        if found is None:
            found = len(self._labels)
            self._codes[label] = found
            self._labels.append(label)
        return found

    def label(self, code: int) -> tuple:
        return self._labels[code]

    def __len__(self) -> int:
        return len(self._labels)

    def labels(self) -> list[tuple]:
        return list(self._labels)


class ArrayAggregateTable:
    """The ``Hg`` of Algorithm 2: per-(cohort, age) accumulator arrays."""

    def __init__(self, aggregates: tuple[AggregateSpec, ...]):
        self._aggregates = aggregates
        # _cells[cohort_code] is a list indexed by age; each cell is a
        # list of accumulators (one per aggregate) or None.
        self._cells: list[list] = []

    def update(self, cohort_code: int, age: int, row, user) -> None:
        """Fold one qualifying age activity tuple into its bucket."""
        while cohort_code >= len(self._cells):
            self._cells.append([])
        ages = self._cells[cohort_code]
        while age >= len(ages):
            ages.append(None)
        cell = ages[age]
        if cell is None:
            cell = [make_accumulator(a.func) for a in self._aggregates]
            ages[age] = cell
        for acc, agg in zip(cell, self._aggregates):
            value = row[agg.column] if agg.column else None
            acc.add(value, user)

    def merge(self, other: "ArrayAggregateTable") -> None:
        """Merge another table's buckets (used across chunks)."""
        for code, ages in enumerate(other._cells):
            for age, cell in enumerate(ages):
                if cell is None:
                    continue
                while code >= len(self._cells):
                    self._cells.append([])
                mine = self._cells[code]
                while age >= len(mine):
                    mine.append(None)
                if mine[age] is None:
                    mine[age] = [make_accumulator(a.func)
                                 for a in self._aggregates]
                for acc, partial in zip(mine[age], cell):
                    acc.merge(partial)

    def buckets(self):
        """Yield ``(cohort_code, age, accumulators)`` for non-empty cells."""
        for code, ages in enumerate(self._cells):
            for age, cell in enumerate(ages):
                if cell is not None:
                    yield code, age, cell


class CohortSizeTable:
    """The ``Hc`` of Algorithm 2: per-cohort user counts."""

    def __init__(self):
        self._counts: list[int] = []

    def increment(self, cohort_code: int) -> None:
        while cohort_code >= len(self._counts):
            self._counts.append(0)
        self._counts[cohort_code] += 1

    def count(self, cohort_code: int) -> int:
        if cohort_code >= len(self._counts):
            return 0
        return self._counts[cohort_code]
