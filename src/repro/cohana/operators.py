"""The physical operator tree the chunk scheduler drives.

The planner's logical chain (:meth:`~repro.cohana.planner.CohortPlan
.logical`) is *lowered* here into a small tree of executors with one
uniform protocol — ``execute(ctx) -> ChunkPartial | None`` over a
mutable per-chunk :class:`ChunkContext`:

* :class:`TableScanOp` — the leaf; the context already carries the
  (table, chunk) pair the scheduler selected, so the leaf just anchors
  the tree (and owns the pruning/scan-mode annotations in EXPLAIN);
* :class:`SessionizeOp` — derives the gap-based session-ordinal column
  and swaps transparent table/chunk *views* into the context, so every
  kernel downstream sees the derived column as if it were stored;
* :class:`KernelOp` — the fused implementation of ``BirthSelect →
  AgeSelect → CohortProject → CohortAggregate``: it wraps one
  registered :class:`~repro.cohana.pipeline.ChunkKernel` (vectorized or
  iterator, each honouring the plan's decoded/compressed scan mode) and
  returns the chunk's partial aggregates.

Lowering (:func:`lower_plan`) is cheap, pure object construction — the
``processes`` backend re-lowers in each worker from the picklable plan,
so physical operators never cross a process boundary.

Adding an operator (funnel steps, hash joins against dimension tables,
window functions) means adding one executor class here plus a logical
node in the planner; the three kernel files, the scheduler's backends,
pruning, sharded fan-out and the merge protocol are untouched — exactly
how :class:`SessionizeOp` landed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cohana.planner import CohortPlan, LogicalOp
from repro.cohort.query import SessionizeSpec
from repro.storage.chunk import Chunk
from repro.storage.reader import CompressedActivityTable


@dataclass
class ChunkContext:
    """Mutable per-chunk execution state threaded through the tree.

    Operators below the kernel refine ``table``/``chunk`` (possibly to
    derived-column views); the kernel consumes whatever the context
    holds when execution reaches it.
    """

    table: CompressedActivityTable
    chunk: Chunk
    plan: CohortPlan


# ---------------------------------------------------------------------------
# Derived-column views (how SESSIONIZE reaches unmodified kernels)
# ---------------------------------------------------------------------------


class DerivedSegment:
    """An in-memory int64 column segment for a derived column.

    Quacks just enough like a stored segment for every kernel access
    path: bulk decode for the vectorized kernel, random-access
    ``value_at`` for the iterator kernel's :class:`~repro.cohana
    .tablescan.LazyRow`. It is deliberately *not* a
    Dict/Delta/Raw-encoded column, so the compressed evaluator's
    ``_leaf_mask`` falls through to the decoded path for predicates
    over it — bit-identical masks in every scan mode.
    """

    def __init__(self, values: np.ndarray):
        self._values = values

    def __len__(self) -> int:
        return len(self._values)

    @property
    def nbytes(self) -> int:
        return self._values.nbytes

    def decode(self) -> np.ndarray:
        return self._values

    def value_at(self, position: int) -> int:
        return int(self._values[position])


class SessionChunk:
    """A chunk view adding one derived column; everything else delegates.

    Derived columns carry no zone maps (``zone_map`` answers None for
    them), so metadata pruning never reasons about values it cannot
    prove.
    """

    def __init__(self, base: Chunk, name: str, values: np.ndarray):
        self._base = base
        self._name = name
        self._segment = DerivedSegment(values)
        self.columns = {**base.columns, name: self._segment}

    def column(self, name: str):
        if name == self._name:
            return self._segment
        return self._base.column(name)

    def decode_codes(self, name: str) -> np.ndarray:
        if name == self._name:
            return self._segment.decode()
        return self._base.decode_codes(name)

    def zone_map(self, name: str):
        if name == self._name:
            return None
        return self._base.zone_map(name)

    def __getattr__(self, name: str):
        return getattr(self._base, name)


class SessionTable:
    """A table view whose schema includes the derived session column."""

    def __init__(self, base: CompressedActivityTable, schema):
        self._base = base
        self.schema = schema

    def __getattr__(self, name: str):
        return getattr(self._base, name)


def session_values(chunk: Chunk, time_name: str,
                   gap: float) -> np.ndarray:
    """Per-row session ordinals for one chunk, vectorized.

    Exploits the storage invariants the whole pipeline rests on: a
    user's tuples live in exactly one chunk, as one time-ordered run.
    The first tuple of each run opens session 1; a tuple opens a new
    session exactly when its gap to the previous tuple *exceeds*
    ``gap`` seconds (a gap equal to ``gap`` stays in the session).
    """
    times = chunk.decode_codes(time_name)
    n = len(times)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    _, run_starts, run_counts = chunk.users.arrays()
    diffs = np.empty(n, dtype=np.int64)
    diffs[0] = 0
    diffs[1:] = times[1:] - times[:-1]
    new_session = diffs > gap
    new_session[run_starts] = False  # runs always open a session
    boundary = np.cumsum(new_session)
    # Rebase each run so its first tuple counts as session 1.
    run_base = np.repeat(boundary[run_starts], run_counts)
    return (1 + boundary - run_base).astype(np.int64)


# ---------------------------------------------------------------------------
# Physical operators
# ---------------------------------------------------------------------------


class PhysicalOp:
    """One executor node; the uniform protocol every operator obeys."""

    #: The logical node(s) this operator implements, root-last.
    stages: tuple[LogicalOp, ...] = ()

    def execute(self, ctx: ChunkContext):
        """Run over ``ctx``; return a ChunkPartial or None (context-only
        operators refine ``ctx`` for the operators above them)."""
        raise NotImplementedError


class TableScanOp(PhysicalOp):
    """The leaf: anchors the (table, chunk) pair the scheduler chose.

    Pruning happened before this chunk was ever dispatched (the
    scheduler proves skips from metadata alone), so executing the leaf
    is a no-op — it exists so the tree's shape matches the logical
    plan and EXPLAIN can hang scan/prune counters off it.
    """

    def __init__(self, stage: LogicalOp):
        self.stages = (stage,)

    def execute(self, ctx: ChunkContext) -> None:
        return


class SessionizeOp(PhysicalOp):
    """Derive the session column; downstream operators see it as stored."""

    def __init__(self, spec: SessionizeSpec, stage: LogicalOp):
        self.spec = spec
        self.stages = (stage,)

    def execute(self, ctx: ChunkContext) -> None:
        base_schema = ctx.table.schema
        values = session_values(ctx.chunk, base_schema.time.name,
                                self.spec.gap)
        ctx.chunk = SessionChunk(ctx.chunk, self.spec.column, values)
        ctx.table = SessionTable(
            ctx.table, ctx.plan.query.effective_schema(base_schema))


class KernelOp(PhysicalOp):
    """BirthSelect → AgeSelect → CohortProject → CohortAggregate, fused.

    The registered chunk kernels *are* the physical implementations of
    this fused pipeline — ``vectorized`` (array-at-a-time, id-space
    labels) and ``iterator`` (tuple-at-a-time, value-space labels) —
    each internally honouring the plan's scan mode (decoded /
    compressed). EXPLAIN expands this node back into its four logical
    stage lines, tagged with the kernel that fuses them.
    """

    def __init__(self, kernel, stages: tuple[LogicalOp, ...]):
        self.kernel = kernel
        self.stages = tuple(stages)

    def execute(self, ctx: ChunkContext):
        return self.kernel.scan(ctx.table, ctx.chunk, ctx.plan)


@dataclass(frozen=True)
class PhysicalPlan:
    """The lowered operator tree for one plan, leaf-first.

    ``execute_chunk`` is the scheduler's unit of work: it threads one
    :class:`ChunkContext` bottom-up through the operators and returns
    the chunk's partial aggregates.
    """

    plan: CohortPlan
    ops: tuple[PhysicalOp, ...]

    def execute_chunk(self, table: CompressedActivityTable,
                      chunk: Chunk):
        ctx = ChunkContext(table=table, chunk=chunk, plan=self.plan)
        partial = None
        for op in self.ops:
            produced = op.execute(ctx)
            if produced is not None:
                partial = produced
        return partial

    @property
    def kernel(self):
        """The chunk kernel the tree's KernelOp wraps."""
        for op in self.ops:
            if isinstance(op, KernelOp):
                return op.kernel
        raise LookupError("physical plan has no KernelOp")

    def describe(self, stats=None, result=None) -> str:
        """Render the tree, root-first, one line per operator stage.

        Without ``stats`` this is the static EXPLAIN form; with the
        :class:`~repro.cohana.pipeline.ExecStats` (and optionally the
        result) of an actual run, each line carries its rows-in /
        rows-out and prune counters (EXPLAIN ANALYZE form).
        """
        annotations = _stage_annotations(self, stats, result)
        lines = []
        for op in reversed(self.ops):  # root-first
            tag = (f" [kernel={op.kernel.name}]"
                   if isinstance(op, KernelOp) else "")
            for stage in reversed(op.stages):
                note = annotations.get(stage.name, "")
                lines.append(f"{stage.label()}{tag}{note}")
                tag = ""
        return "\n".join(line if i == 0 else f"  {line}"
                         for i, line in enumerate(lines))


def _stage_annotations(physical: PhysicalPlan, stats, result) -> dict:
    """Per-stage counter annotations for EXPLAIN ANALYZE."""
    if stats is None:
        return {}
    notes = {
        "TableScan": (
            f" chunks={stats.chunks_scanned}/{stats.chunks_total}"
            f" pruned={stats.chunks_pruned}"
            f" (zone={stats.chunks_pruned_zone})"
            f" rows_out={stats.rows_scanned}"),
        "Sessionize": f" rows_in={stats.rows_scanned}"
                      f" rows_out={stats.rows_scanned}",
        "BirthSelect": f" users_in={stats.users_seen}"
                       f" users_out={stats.users_qualified}",
        "AgeSelect": f" rows_in={stats.rows_scanned}"
                     f" rows_out={stats.tuples_aggregated}",
    }
    if result is not None:
        n_label = result.n_cohort_columns
        cohorts = {row[:n_label] for row in result.rows}
        notes["CohortProject"] = (
            f" rows_in={stats.tuples_aggregated} cohorts={len(cohorts)}")
        notes["CohortAggregate"] = f" rows_out={len(result.rows)}"
    return notes


def lower_plan(plan: CohortPlan, kernel) -> PhysicalPlan:
    """Lower a plan's logical chain to its physical operator tree.

    The logical chain is matched leaf-up: ``TableScan`` becomes the
    leaf operator, a ``Sessionize`` node (if present) becomes
    :class:`SessionizeOp`, and the remaining ``BirthSelect → AgeSelect
    → CohortProject → CohortAggregate`` stages fuse into one
    :class:`KernelOp` wrapping ``kernel``.
    """
    leaf_first = list(reversed(plan.logical().chain()))
    ops: list[PhysicalOp] = [TableScanOp(leaf_first[0])]
    i = 1
    if plan.query.sessionize is not None:
        ops.append(SessionizeOp(plan.query.sessionize, leaf_first[i]))
        i += 1
    ops.append(KernelOp(kernel, tuple(leaf_first[i:])))
    return PhysicalPlan(plan=plan, ops=tuple(ops))
