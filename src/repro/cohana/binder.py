"""Binding parsed cohort queries against an activity schema.

The binder turns a schema-independent :class:`ParsedCohortQuery` into a
validated :class:`~repro.cohort.CohortQuery`:

* extracts the mandatory ``action = <e>`` conjunct from the BIRTH FROM
  clause (the query's birth action);
* coerces literals to the compared column's type (so time literals like
  ``"2013-05-21"`` become epoch seconds);
* resolves SELECT-list items against the COHORT BY attributes and builds
  :class:`~repro.cohort.AggregateSpec` entries with stable aliases.

Binding is also where predicates become *rewritable into the coded
domain*: once literals carry the compared column's type, the planner can
translate each top-level conjunct (see :func:`split_conjuncts`) into
global-dictionary-id or integer bounds
(:func:`repro.cohana.planner.extract_birth_bounds`) that drive zone-map
pruning and compressed-domain scans.
"""

from __future__ import annotations

from repro.errors import BindError
from repro.cohort.aggregates import AGGREGATE_FUNCTIONS, AggregateSpec
from repro.cohort.conditions import (
    AgeRef,
    And,
    AttrRef,
    Between,
    BirthRef,
    Compare,
    Condition,
    InList,
    Literal,
    Not,
    Operand,
    Or,
    TrueCondition,
    conjoin,
)
from repro.cohort.query import CohortQuery, SessionizeSpec
from repro.cohana.parser import ParsedCohortQuery
from repro.schema import (
    ActivitySchema,
    ColumnRole,
    ColumnSpec,
    LogicalType,
    coerce_value,
)


def bind_cohort_query(parsed: ParsedCohortQuery, schema: ActivitySchema,
                      age_unit: str = "day",
                      time_bin_origin: int = 0) -> CohortQuery:
    """Bind ``parsed`` against ``schema`` and validate the result.

    Raises:
        BindError: on missing birth action, unknown columns/functions, or
            SELECT items inconsistent with COHORT BY.
    """
    base_schema = schema
    sessionize = None
    if parsed.sessionize is not None:
        try:
            sessionize = SessionizeSpec(column=parsed.sessionize.column,
                                        gap=parsed.sessionize.gap_seconds)
        except Exception as exc:
            raise BindError(str(exc)) from None
        if sessionize.column in schema:
            raise BindError(
                f"SESSIONIZE column {sessionize.column!r} collides with "
                "a stored column; pick another name with AS")
        # Derived columns bind like stored ones from here on.
        schema = ActivitySchema(schema.columns + (ColumnSpec(
            sessionize.column, LogicalType.INT, ColumnRole.MEASURE),))
    birth_action, birth_condition = _extract_birth_action(
        parsed.birth_clause, schema)
    birth_condition = _coerce_literals(birth_condition, schema)
    age_condition = _coerce_literals(parsed.age_clause, schema)
    aggregates = _bind_select(parsed, schema)
    query = CohortQuery(
        birth_action=birth_action,
        cohort_by=tuple(parsed.cohort_by),
        aggregates=tuple(aggregates),
        birth_condition=birth_condition,
        age_condition=age_condition,
        age_unit=age_unit,
        cohort_time_bin=parsed.cohort_time_bin or "week",
        time_bin_origin=time_bin_origin,
        table=parsed.table,
        sessionize=sessionize,
    )
    try:
        query.validate(base_schema)
    except Exception as exc:
        raise BindError(str(exc)) from None
    return query


def split_conjuncts(condition: Condition) -> list[Condition]:
    """The top-level conjuncts of ``condition``.

    An ``And`` yields its parts, ``TrueCondition`` yields nothing, and
    any other node is a single conjunct. Each returned conjunct is a
    *necessary* condition, which is what makes per-conjunct rewrites
    (birth-action extraction here, coded-domain bounds in the planner)
    safe: anything a conjunct rules out, the whole condition rules out.
    """
    if isinstance(condition, And):
        return list(condition.parts)
    if isinstance(condition, TrueCondition):
        return []
    return [condition]


def _extract_birth_action(clause: Condition,
                          schema: ActivitySchema) -> tuple[str, Condition]:
    """Pull the ``action = e`` conjunct out of the BIRTH FROM clause."""
    action_name = schema.action.name
    birth_action = None
    rest = []
    for part in split_conjuncts(clause):
        if (birth_action is None
                and isinstance(part, Compare) and part.op == "="
                and isinstance(part.left, AttrRef)
                and part.left.name == action_name
                and isinstance(part.right, Literal)):
            birth_action = str(part.right.raw)
        else:
            rest.append(part)
    if birth_action is None:
        raise BindError(
            f"BIRTH FROM must contain a conjunct "
            f"'{action_name} = <birth action>'")
    return birth_action, conjoin(*rest)


def _bind_select(parsed: ParsedCohortQuery,
                 schema: ActivitySchema) -> list[AggregateSpec]:
    aggregates: list[AggregateSpec] = []
    for item in parsed.select_items:
        if item.kind == "attr":
            if item.name not in parsed.cohort_by:
                raise BindError(
                    f"SELECT attribute {item.name!r} must appear in "
                    f"COHORT BY (got {parsed.cohort_by})")
        elif item.kind == "agg":
            if item.func not in AGGREGATE_FUNCTIONS:
                raise BindError(f"unknown aggregate function {item.func!r}")
            if item.column is not None and item.column not in schema:
                raise BindError(f"unknown aggregate column {item.column!r}")
            alias = item.alias or _default_alias(item.func, item.column,
                                                 aggregates)
            aggregates.append(AggregateSpec(item.func, item.column, alias))
        # COHORTSIZE / AGE are implicit output columns; nothing to bind.
    if not aggregates:
        raise BindError("the SELECT list needs at least one aggregate "
                        "(e.g. Sum(gold) or UserCount())")
    return aggregates


def _default_alias(func: str, column: str | None, existing) -> str:
    base = f"{func.lower()}_{column}" if column else func.lower()
    alias = base
    suffix = 2
    taken = {a.alias for a in existing}
    while alias in taken:
        alias = f"{base}_{suffix}"
        suffix += 1
    return alias


# ---------------------------------------------------------------------------
# Literal coercion
# ---------------------------------------------------------------------------


def _operand_type(operand: Operand,
                  schema: ActivitySchema) -> LogicalType | None:
    if isinstance(operand, (AttrRef, BirthRef)):
        if operand.name not in schema:
            raise BindError(f"unknown column {operand.name!r}")
        return schema.column(operand.name).ltype
    if isinstance(operand, AgeRef):
        return LogicalType.INT
    return None


def _coerce_operand(operand: Operand, target: LogicalType | None) -> Operand:
    if isinstance(operand, Literal) and target is not None:
        return Literal(coerce_value(operand.raw, target))
    return operand


def _coerce_literals(cond: Condition,
                     schema: ActivitySchema) -> Condition:
    """Rebuild ``cond`` with literals coerced to compared-column types."""
    if isinstance(cond, TrueCondition):
        return cond
    if isinstance(cond, Compare):
        target = (_operand_type(cond.left, schema)
                  or _operand_type(cond.right, schema))
        return Compare(_coerce_operand(cond.left, target), cond.op,
                       _coerce_operand(cond.right, target))
    if isinstance(cond, Between):
        target = _operand_type(cond.operand, schema)
        return Between(_coerce_operand(cond.operand, target),
                       _coerce_operand(cond.low, target),
                       _coerce_operand(cond.high, target))
    if isinstance(cond, InList):
        target = _operand_type(cond.operand, schema)
        if target is None:
            return cond
        return InList(cond.operand,
                      tuple(coerce_value(v, target) for v in cond.values))
    if isinstance(cond, And):
        return And(tuple(_coerce_literals(p, schema) for p in cond.parts))
    if isinstance(cond, Or):
        return Or(tuple(_coerce_literals(p, schema) for p in cond.parts))
    if isinstance(cond, Not):
        return Not(_coerce_literals(cond.inner, schema))
    raise BindError(f"cannot bind condition node {type(cond).__name__}")
