"""Compiling condition ASTs to vectorized numpy masks.

The COHANA executors evaluate conditions over *encoded* chunk columns:
string columns stay as global dictionary ids. Because global dictionaries
are sorted (Section 4.1), id order equals lexicographic order, so every
comparison — including ranges — runs directly on the integer codes:

* ``col = 'x'``  → ``codes == global_id('x')`` (or all-false if absent),
* ``col < 'x'``  → ``codes < bisect_left(dict, 'x')``,
* ``col IN [..]`` → ``np.isin(codes, present_ids)``,

and so on. Two dictionary-encoded operands from the *same* column (e.g.
``role = Birth(role)``) compare by code; operands from different columns
fall back to decoded string comparison.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.cohort.conditions import (
    AgeRef,
    And,
    AttrRef,
    Between,
    BirthRef,
    Compare,
    Condition,
    InList,
    Literal,
    Not,
    Operand,
    Or,
    TrueCondition,
)
from repro.storage.dictionary import GlobalDictionary


class EvalContext:
    """Arrays a condition is evaluated against.

    Implementations provide per-row (or per-user) arrays; see
    :class:`repro.cohana.vectorized` for the chunk-level context.
    """

    def rows(self) -> int:
        raise NotImplementedError

    def plain(self, name: str) -> np.ndarray:
        """Per-row values of ``name`` (dictionary codes for strings)."""
        raise NotImplementedError

    def birth_value(self, name: str) -> np.ndarray:
        """Per-row birth-tuple values of ``name`` (codes for strings)."""
        raise NotImplementedError

    def age(self) -> np.ndarray:
        """Per-row normalized ages."""
        raise NotImplementedError

    def dictionary_for(self, name: str) -> GlobalDictionary | None:
        """The column's global dictionary, if it is a string column."""
        raise NotImplementedError


@dataclass
class _Resolved:
    """A resolved operand: either a constant or an array (+ dictionary)."""

    array: np.ndarray | None
    literal: object = None
    dictionary: GlobalDictionary | None = None
    dict_name: str | None = None

    @property
    def is_literal(self) -> bool:
        return self.array is None


def _resolve(operand: Operand, ctx: EvalContext) -> _Resolved:
    if isinstance(operand, Literal):
        return _Resolved(array=None, literal=operand.raw)
    if isinstance(operand, AttrRef):
        return _Resolved(array=ctx.plain(operand.name),
                         dictionary=ctx.dictionary_for(operand.name),
                         dict_name=operand.name)
    if isinstance(operand, BirthRef):
        return _Resolved(array=ctx.birth_value(operand.name),
                         dictionary=ctx.dictionary_for(operand.name),
                         dict_name=operand.name)
    if isinstance(operand, AgeRef):
        return _Resolved(array=ctx.age())
    raise ExecutionError(f"cannot resolve operand {operand!r}")


def compile_mask(cond: Condition, ctx: EvalContext) -> np.ndarray:
    """Evaluate ``cond`` over ``ctx``, returning a boolean row mask."""
    n = ctx.rows()
    if isinstance(cond, TrueCondition):
        return np.ones(n, dtype=bool)
    if isinstance(cond, And):
        mask = np.ones(n, dtype=bool)
        for part in cond.parts:
            mask &= compile_mask(part, ctx)
        return mask
    if isinstance(cond, Or):
        mask = np.zeros(n, dtype=bool)
        for part in cond.parts:
            mask |= compile_mask(part, ctx)
        return mask
    if isinstance(cond, Not):
        return ~compile_mask(cond.inner, ctx)
    if isinstance(cond, Compare):
        return _compare(cond, ctx)
    if isinstance(cond, Between):
        return _between(cond, ctx)
    if isinstance(cond, InList):
        return _in_list(cond, ctx)
    raise ExecutionError(f"cannot compile condition {type(cond).__name__}")


# -- comparison dispatch -------------------------------------------------------

_NUMERIC_OPS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _compare(cond: Compare, ctx: EvalContext) -> np.ndarray:
    left = _resolve(cond.left, ctx)
    right = _resolve(cond.right, ctx)
    n = ctx.rows()
    if left.is_literal and right.is_literal:
        from repro.cohort.conditions import _COMPARATORS
        value = bool(_COMPARATORS[cond.op](left.literal, right.literal))
        return np.full(n, value, dtype=bool)
    if left.is_literal:
        return _compare(Compare(cond.right, _flip(cond.op), cond.left), ctx)
    if right.is_literal:
        return _array_vs_literal(left, cond.op, right.literal, n)
    return _array_vs_array(left, cond.op, right)


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<",
            ">=": "<="}[op]


def _array_vs_literal(operand: _Resolved, op: str, literal,
                      n: int) -> np.ndarray:
    if operand.dictionary is None:
        return _NUMERIC_OPS[op](operand.array, literal)
    if not isinstance(literal, str):
        raise ExecutionError(
            f"cannot compare string column {operand.dict_name!r} with "
            f"non-string literal {literal!r}")
    values = operand.dictionary.values
    codes = operand.array
    if op == "=":
        gid = operand.dictionary.global_id(literal)
        if gid is None:
            return np.zeros(n, dtype=bool)
        return codes == gid
    if op == "!=":
        gid = operand.dictionary.global_id(literal)
        if gid is None:
            return np.ones(n, dtype=bool)
        return codes != gid
    # Ordered comparisons use the sorted-dictionary boundary trick.
    if op == "<":
        return codes < bisect.bisect_left(values, literal)
    if op == "<=":
        return codes < bisect.bisect_right(values, literal)
    if op == ">":
        return codes >= bisect.bisect_right(values, literal)
    if op == ">=":
        return codes >= bisect.bisect_left(values, literal)
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _array_vs_array(left: _Resolved, op: str,
                    right: _Resolved) -> np.ndarray:
    if (left.dictionary is not None and right.dictionary is not None
            and left.dict_name != right.dict_name):
        # Different dictionaries: codes are incomparable — decode.
        lhs = left.dictionary.decode(left.array)
        rhs = right.dictionary.decode(right.array)
        return _object_compare(lhs, op, rhs)
    if (left.dictionary is None) != (right.dictionary is None):
        raise ExecutionError(
            "cannot compare a string column with a numeric operand")
    return _NUMERIC_OPS[op](left.array, right.array)


def _object_compare(lhs: np.ndarray, op: str, rhs: np.ndarray) -> np.ndarray:
    out = np.fromiter(
        (_PY_OPS[op](a, b) for a, b in zip(lhs, rhs)),
        dtype=bool, count=len(lhs))
    return out


_PY_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _between(cond: Between, ctx: EvalContext) -> np.ndarray:
    low = Compare(cond.operand, ">=", cond.low)
    high = Compare(cond.operand, "<=", cond.high)
    return compile_mask(low, ctx) & compile_mask(high, ctx)


def _in_list(cond: InList, ctx: EvalContext) -> np.ndarray:
    operand = _resolve(cond.operand, ctx)
    n = ctx.rows()
    if operand.is_literal:
        return np.full(n, operand.literal in cond.values, dtype=bool)
    if operand.dictionary is None:
        return np.isin(operand.array, np.asarray(list(cond.values)))
    gids = [operand.dictionary.global_id(v) for v in cond.values
            if isinstance(v, str)]
    gids = [g for g in gids if g is not None]
    if not gids:
        return np.zeros(n, dtype=bool)
    return np.isin(operand.array, np.asarray(gids, dtype=np.int64))
