"""Parser for the paper's cohort query language (Section 3.4).

Accepts statements of the form::

    SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
    FROM GameActions
    BIRTH FROM action = "launch" AND role = "dwarf"
    AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
    COHORT BY country [UNIT week]

The BIRTH FROM and AGE ACTIVITIES IN clauses may appear in either order
(the paper: "the order ... is irrelevant") and both selection conditions
are optional. Parsing is schema-independent; :mod:`repro.cohana.binder`
resolves the result against a concrete activity schema.

Beyond plain queries, :func:`parse_statement` accepts the materialized
view DDL layered on top of the language::

    CREATE [OR REPLACE] MATERIALIZED VIEW weekly AS SELECT ... COHORT BY ...
    DROP MATERIALIZED VIEW [IF EXISTS] weekly
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import NUMBER, STRING, TokenStream, tokenize
from repro.errors import ParseError
from repro.schema import TIME_UNIT_SECONDS
from repro.cohort.conditions import (
    AgeRef,
    And,
    Between,
    Compare,
    Condition,
    InList,
    Literal,
    Not,
    Operand,
    Or,
    AttrRef,
    BirthRef,
    TrueCondition,
)


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list.

    kind is 'attr' (a cohort attribute), 'cohortsize', 'age' or 'agg'.
    """

    kind: str
    name: str | None = None        # attr name for 'attr'
    func: str | None = None        # aggregate function for 'agg'
    column: str | None = None      # aggregate argument for 'agg'
    alias: str | None = None


@dataclass(frozen=True)
class ParsedSessionize:
    """``SESSIONIZE (GAP = <number> [<unit>]) [AS <column>]``.

    ``gap_seconds`` is the gap threshold converted to seconds; the
    derived session-ordinal column is named ``column``.
    """

    gap_seconds: float
    column: str = "session"


@dataclass
class ParsedCohortQuery:
    """The raw parse of a cohort query, before schema binding."""

    select_items: list[SelectItem]
    table: str
    birth_clause: Condition = field(default_factory=TrueCondition)
    age_clause: Condition = field(default_factory=TrueCondition)
    cohort_by: list[str] = field(default_factory=list)
    cohort_time_bin: str | None = None
    sessionize: ParsedSessionize | None = None


@dataclass(frozen=True)
class ParsedCreateView:
    """``CREATE [OR REPLACE] MATERIALIZED VIEW <name> AS <query>``.

    ``query_text`` is the raw source text of the inner query (the
    statement from ``AS`` onwards) — what the view catalog persists so
    the view can be re-parsed and re-bound after a restart.
    """

    name: str
    query: ParsedCohortQuery
    query_text: str
    or_replace: bool = False


@dataclass(frozen=True)
class ParsedDropView:
    """``DROP MATERIALIZED VIEW [IF EXISTS] <name>``."""

    name: str
    if_exists: bool = False


#: Union of everything :func:`parse_statement` can produce.
ParsedStatement = ParsedCohortQuery | ParsedCreateView | ParsedDropView


def parse_statement(text: str) -> ParsedStatement:
    """Parse one statement: a cohort query or materialized-view DDL.

    Raises:
        ParseError: on any syntax error.
    """
    stream = TokenStream(tokenize(text))
    if stream.peek_is_keyword("CREATE"):
        stream.next()
        or_replace = False
        if stream.accept_keyword("OR"):
            stream.expect_keyword("REPLACE")
            or_replace = True
        stream.expect_keyword("MATERIALIZED")
        stream.expect_keyword("VIEW")
        name = stream.expect_ident().text
        stream.expect_keyword("AS")
        start = stream.peek().position
        query = _parse_query(stream)
        # The persisted definition is the query exactly as written
        # after AS, minus the statement terminator.
        query_text = text[start:].strip().rstrip(";").rstrip()
        return ParsedCreateView(name=name, query=query,
                                query_text=query_text,
                                or_replace=or_replace)
    if stream.peek_is_keyword("DROP"):
        stream.next()
        stream.expect_keyword("MATERIALIZED")
        stream.expect_keyword("VIEW")
        if_exists = False
        if stream.accept_keyword("IF"):
            stream.expect_keyword("EXISTS")
            if_exists = True
        name = stream.expect_ident().text
        stream.accept_symbol(";")
        if not stream.at_end():
            token = stream.peek()
            raise ParseError(f"unexpected token {token.text!r} after "
                             "DROP MATERIALIZED VIEW", token.position)
        return ParsedDropView(name=name, if_exists=if_exists)
    return _parse_query(stream)


def parse_cohort_query(text: str) -> ParsedCohortQuery:
    """Parse a cohort query statement.

    Raises:
        ParseError: on any syntax error.
    """
    return _parse_query(TokenStream(tokenize(text)))


def _parse_query(stream: TokenStream) -> ParsedCohortQuery:
    """Parse a cohort query from an open token stream."""
    stream.expect_keyword("SELECT")
    select_items = _parse_select_list(stream)
    stream.expect_keyword("FROM")
    table = stream.expect_ident().text

    birth_clause: Condition = TrueCondition()
    age_clause: Condition = TrueCondition()
    cohort_by: list[str] = []
    time_bin: str | None = None
    sessionize: ParsedSessionize | None = None
    saw_birth = saw_age = saw_cohort = False
    while not stream.at_end():
        if stream.accept_symbol(";"):
            break
        if stream.peek_is_keyword("BIRTH"):
            if saw_birth:
                raise ParseError("duplicate BIRTH FROM clause",
                                 stream.peek().position)
            stream.next()
            stream.expect_keyword("FROM")
            birth_clause = _parse_condition(stream)
            saw_birth = True
        elif stream.peek_is_keyword("AGE"):
            if saw_age:
                raise ParseError("duplicate AGE ACTIVITIES clause",
                                 stream.peek().position)
            stream.next()
            stream.expect_keyword("ACTIVITIES")
            stream.expect_keyword("IN")
            age_clause = _parse_condition(stream)
            saw_age = True
        elif stream.peek_is_keyword("COHORT"):
            if saw_cohort:
                raise ParseError("duplicate COHORT BY clause",
                                 stream.peek().position)
            stream.next()
            stream.expect_keyword("BY")
            cohort_by.append(stream.expect_ident().text)
            while stream.accept_symbol(","):
                cohort_by.append(stream.expect_ident().text)
            if stream.accept_keyword("UNIT"):
                time_bin = stream.expect_ident().text.lower()
            saw_cohort = True
        elif stream.peek_is_keyword("SESSIONIZE"):
            if sessionize is not None:
                raise ParseError("duplicate SESSIONIZE clause",
                                 stream.peek().position)
            stream.next()
            sessionize = _parse_sessionize(stream)
        else:
            token = stream.peek()
            raise ParseError(
                f"unexpected token {token.text!r}; expected BIRTH FROM, "
                "AGE ACTIVITIES IN, SESSIONIZE or COHORT BY",
                token.position)
    if not saw_birth:
        raise ParseError("cohort query requires a BIRTH FROM clause")
    if not saw_cohort:
        raise ParseError("cohort query requires a COHORT BY clause")
    return ParsedCohortQuery(
        select_items=select_items,
        table=table,
        birth_clause=birth_clause,
        age_clause=age_clause,
        cohort_by=cohort_by,
        cohort_time_bin=time_bin,
        sessionize=sessionize,
    )


def _parse_sessionize(stream: TokenStream) -> ParsedSessionize:
    """Parse ``(GAP = <number> [<unit>]) [AS <column>]`` after SESSIONIZE."""
    stream.expect_symbol("(")
    stream.expect_keyword("GAP")
    stream.expect_symbol("=")
    token = stream.next()
    if token.kind != NUMBER:
        raise ParseError(f"expected a number for the SESSIONIZE gap, got "
                         f"{token.text!r}", token.position)
    gap = float(token.text) if "." in token.text else int(token.text)
    seconds = float(gap)
    if not (stream.peek().kind == "SYMBOL" and stream.peek().text == ")"):
        unit_token = stream.expect_ident()
        unit = unit_token.text.lower()
        if unit not in TIME_UNIT_SECONDS and unit.endswith("s"):
            unit = unit[:-1]
        if unit not in TIME_UNIT_SECONDS:
            raise ParseError(
                f"unknown SESSIONIZE gap unit {unit_token.text!r}; "
                f"expected one of {sorted(TIME_UNIT_SECONDS)}",
                unit_token.position)
        seconds = float(gap) * TIME_UNIT_SECONDS[unit]
    stream.expect_symbol(")")
    if seconds <= 0:
        raise ParseError("SESSIONIZE gap must be positive",
                         token.position)
    column = "session"
    if stream.accept_keyword("AS"):
        column = stream.expect_ident().text
    return ParsedSessionize(gap_seconds=seconds, column=column)


def _parse_select_list(stream: TokenStream) -> list[SelectItem]:
    items = [_parse_select_item(stream)]
    while stream.accept_symbol(","):
        items.append(_parse_select_item(stream))
    return items


def _parse_select_item(stream: TokenStream) -> SelectItem:
    token = stream.expect_ident()
    upper = token.text.upper()
    if upper == "COHORTSIZE":
        return SelectItem(kind="cohortsize")
    if upper == "AGE" and not (stream.peek().kind == "SYMBOL"
                               and stream.peek().text == "("):
        return SelectItem(kind="age")
    if stream.accept_symbol("("):
        column = None
        if not stream.accept_symbol(")"):
            if stream.accept_symbol("*"):
                pass
            else:
                column = stream.expect_ident().text
            stream.expect_symbol(")")
        alias = None
        if stream.accept_keyword("AS"):
            alias = stream.expect_ident().text
        func = "USERCOUNT" if upper == "USERCOUNT" else upper
        return SelectItem(kind="agg", func=func, column=column, alias=alias)
    return SelectItem(kind="attr", name=token.text)


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


def _parse_condition(stream: TokenStream) -> Condition:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> Condition:
    parts = [_parse_and(stream)]
    while stream.accept_keyword("OR"):
        parts.append(_parse_and(stream))
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


def _parse_and(stream: TokenStream) -> Condition:
    parts = [_parse_unary(stream)]
    while stream.accept_keyword("AND"):
        parts.append(_parse_unary(stream))
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def _parse_unary(stream: TokenStream) -> Condition:
    if stream.accept_keyword("NOT"):
        return Not(_parse_unary(stream))
    if stream.accept_symbol("("):
        inner = _parse_condition(stream)
        stream.expect_symbol(")")
        return inner
    return _parse_predicate(stream)


def _parse_predicate(stream: TokenStream) -> Condition:
    operand = _parse_operand(stream)
    if stream.accept_keyword("BETWEEN"):
        low = _parse_operand(stream)
        stream.expect_keyword("AND")
        high = _parse_operand(stream)
        return Between(operand, low, high)
    if stream.accept_keyword("IN"):
        return InList(operand, tuple(_parse_literal_list(stream)))
    token = stream.next()
    if token.kind != "SYMBOL" or token.text not in ("=", "!=", "<", "<=",
                                                    ">", ">="):
        raise ParseError(f"expected a comparison operator, got "
                         f"{token.text!r}", token.position)
    right = _parse_operand(stream)
    return Compare(operand, token.text, right)


def _parse_operand(stream: TokenStream) -> Operand:
    token = stream.peek()
    if token.kind == "SYMBOL" and token.text == "-":
        stream.next()
        number = stream.next()
        if number.kind != NUMBER:
            raise ParseError("expected a number after unary minus",
                             number.position)
        value = float(number.text) if "." in number.text \
            else int(number.text)
        return Literal(-value)
    if token.kind == NUMBER:
        stream.next()
        value = float(token.text) if "." in token.text else int(token.text)
        return Literal(value)
    if token.kind == STRING:
        stream.next()
        return Literal(token.text)
    if token.matches_keyword("AGE"):
        stream.next()
        return AgeRef()
    if token.matches_keyword("BIRTH") and stream.peek(1).text == "(":
        stream.next()
        stream.expect_symbol("(")
        name = stream.expect_ident().text
        stream.expect_symbol(")")
        return BirthRef(name)
    ident = stream.expect_ident()
    return AttrRef(ident.text)


def _parse_literal_list(stream: TokenStream) -> list:
    open_token = stream.next()
    if open_token.text not in ("[", "("):
        raise ParseError(f"expected a literal list, got "
                         f"{open_token.text!r}", open_token.position)
    closer = "]" if open_token.text == "[" else ")"
    values = []
    if not stream.accept_symbol(closer):
        values.append(_expect_literal(stream))
        while stream.accept_symbol(","):
            values.append(_expect_literal(stream))
        stream.expect_symbol(closer)
    return values


def _expect_literal(stream: TokenStream):
    token = stream.next()
    if token.kind == NUMBER:
        return float(token.text) if "." in token.text else int(token.text)
    if token.kind == STRING:
        return token.text
    raise ParseError(f"expected a literal, got {token.text!r}",
                     token.position)
