"""The chunk-pipeline execution core: scheduling, kernels, merging.

COHANA's storage invariant — all tuples of a user live in exactly one
chunk (Section 4.1) — makes chunks *independent* units of work: per-chunk
partial aggregates merge exactly, including distinct-user counts
(Section 4.5). This module exploits that invariant once, centrally,
instead of each executor hand-rolling its own chunk loop:

* :class:`ChunkScheduler` turns a :class:`~repro.cohana.planner.CohortPlan`
  into per-chunk scan tasks, makes every pruning decision exactly once,
  dispatches the tasks through a pluggable backend, and streams the
  resulting :class:`ChunkPartial`\\ s through the merge protocol;
* :class:`ChunkKernel` is the pluggable per-chunk scan: a pure function
  ``(table, chunk, plan) -> ChunkPartial``. The ``vectorized`` and
  ``iterator`` executors register themselves here and contain *only*
  per-chunk logic;
* :class:`ExecutionConfig` selects the backend (``serial``, ``threads``
  or ``processes`` via :mod:`concurrent.futures`), the worker count, and
  the ``scan_mode`` (``decoded`` | ``compressed`` | ``auto``).

The ``processes`` backend sidesteps the GIL entirely: the parent never
ships chunk data to workers — each task is just ``(path, kernel name,
plan, chunk index)``, the worker reopens the ``.cohana`` file by path
(memory-mapped and lazy for version-3 files, so it deserializes only the
chunks it actually scans) and returns a :class:`ChunkPartial`. Only
picklable partial aggregates cross the process boundary, and the
streaming merge stays single-threaded in the parent, exactly as in the
other backends. It therefore requires a table with a ``source_path``
(loaded from disk, not built in memory). Two deliberate costs of the
current design: the parent's pruning pass touches every chunk's
metadata, which on a lazy table parses each chunk once in the parent,
and the pool lives for one query, so worker-side table caches do not
survive across queries — a resident worker pool is the obvious next
step if query-dispatch overhead ever dominates.

Pruning is metadata-exact, not heuristic: every skip is proven from
persisted storage metadata — the action chunk dictionary, the birth
condition's coded-domain bounds against persisted per-chunk zone maps
(:mod:`repro.storage.zonemap`), and chunk-dictionary membership for
equality/IN constraints — so pruned chunks can contain no qualifying
birth tuple and results are identical with pruning on or off.

Because kernels are pure (they share no mutable state and only read the
immutable compressed table), running them concurrently over chunks is
safe; the merge itself stays single-threaded in the scheduler, so no
locking is needed anywhere.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import CatalogError, ExecutionError
from repro.cohana.operators import lower_plan
from repro.cohana.planner import SCAN_MODES, CohortPlan, plan_query
from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.schema import ColumnRole, LogicalType, format_timestamp
from repro.storage.chunk import Chunk
from repro.storage.dictionary import DictEncodedColumn
from repro.storage.reader import CompressedActivityTable

#: Backends the scheduler can dispatch scan tasks through.
BACKENDS = ("serial", "threads", "processes")


@dataclass
class ExecStats:
    """Counters describing what one execution actually touched.

    ``chunks_pruned_zone`` counts the subset of ``chunks_pruned`` that
    only the coded-domain metadata path (persisted zone maps /
    chunk-dictionary membership on non-action birth bounds) could
    prove prunable; the invariant
    ``chunks_pruned + chunks_scanned == chunks_total`` always holds.
    ``shards_total`` / ``shards_scanned`` describe sharded tables
    (``shards_scanned`` counts shards with at least one surviving scan
    task); both stay zero for single-file tables.

    The ``cache_*`` counters are filled in by the query service
    (:mod:`repro.service`) when a query goes through its result cache;
    direct engine executions leave them at zero. ``cache_disposition``
    records how the service answered this call: ``'hit'`` (served from
    cache), ``'miss'`` (executed and cached), ``'bypass'`` (caching
    disabled for the call), ``'invalidated'`` (a cached result
    existed but its table version token no longer matches — executed
    and re-cached) or ``'refresh'`` (a materialized view was served
    after incrementally scanning newly appended shards; see
    :mod:`repro.views`). On a hit the scan counters describe the
    *original* cold execution that produced the cached result.

    The serving-tier fields are stamped by the HTTP frontend
    (:mod:`repro.service.http`) into the stats it puts on the wire:
    ``admission_wait_seconds`` is how long *this* request waited for
    an execution slot, and the ``http_*`` fields snapshot the server's
    aggregate admitted/shed/timeout/drained counters at response time
    (also served by ``GET /stats``). Off-wire executions leave all of
    them at zero.
    """

    chunks_total: int = 0
    chunks_scanned: int = 0
    chunks_pruned: int = 0
    chunks_pruned_zone: int = 0
    shards_total: int = 0
    shards_scanned: int = 0
    rows_scanned: int = 0
    users_seen: int = 0
    users_qualified: int = 0
    tuples_aggregated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    cache_disposition: str | None = None
    admission_wait_seconds: float = 0.0
    http_admitted: int = 0
    http_shed: int = 0
    http_timeouts: int = 0
    http_drained: int = 0


@dataclass(frozen=True)
class ExecutionConfig:
    """How the scheduler runs a plan's scan tasks.

    Attributes:
        backend: ``'serial'`` (in-process loop), ``'threads'``
            (:class:`concurrent.futures.ThreadPoolExecutor`) or
            ``'processes'`` (:class:`concurrent.futures.ProcessPoolExecutor`
            over a table loaded from a ``.cohana`` file; workers reopen
            the file by path). An explicitly requested parallel backend
            is honoured even at ``jobs=1``.
        jobs: worker count for parallel backends (ignored by ``serial``).
        collect_stats: accumulate the per-chunk row/user counters into
            :class:`ExecStats`; chunk-level counters are always kept.
        scan_mode: ``'decoded'`` (legacy path: materialize codes, then
            filter; pruning limited to the action dictionary and birth
            time range), ``'compressed'`` (coded-domain predicate
            evaluation plus zone-map/metadata pruning), or ``'auto'``
            (compressed wherever chunks carry zone maps). Results are
            identical across modes; only the work done differs.
    """

    backend: str = "serial"
    jobs: int = 1
    collect_stats: bool = True
    scan_mode: str = "auto"

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {self.backend!r}; have {BACKENDS}")
        if self.jobs < 1:
            raise ExecutionError(f"jobs must be >= 1, got {self.jobs}")
        if self.scan_mode not in SCAN_MODES:
            raise ExecutionError(
                f"unknown scan_mode {self.scan_mode!r}; have {SCAN_MODES}")

    @classmethod
    def resolve(cls, jobs: int = 1, backend: str | None = None,
                collect_stats: bool = True,
                scan_mode: str = "auto",
                table: "CompressedActivityTable | None" = None,
                ) -> "ExecutionConfig":
        """Build a config from loose options.

        ``backend=None`` picks ``serial`` at ``jobs=1``; at ``jobs > 1``
        it picks ``processes`` when ``table`` is known to live on disk
        (it has a ``source_path``, so workers can reopen it by path) and
        ``threads`` otherwise.
        """
        if backend is None:
            if jobs > 1:
                on_disk = (table is not None
                           and getattr(table, "source_path", None))
                backend = "processes" if on_disk else "threads"
            else:
                backend = "serial"
        return cls(backend=backend, jobs=jobs, collect_stats=collect_stats,
                   scan_mode=scan_mode)

    def describe(self) -> str:
        """Compact one-line rendering for EXPLAIN output."""
        return (f"Execution(backend={self.backend}, jobs={self.jobs}, "
                f"scan_mode={self.scan_mode})")


@dataclass
class ChunkPartial:
    """One chunk's contribution: partial aggregates plus scan counters.

    ``buckets`` maps ``(label, age)`` to one partial state per aggregate
    in the query's SELECT list; ``cohort_sizes`` maps labels to qualified
    user counts. Partial states follow the protocol of
    :func:`merge_partial` / :func:`finalize_partial` regardless of which
    kernel produced them, so the scheduler can merge partials from any
    kernel family the same way.
    """

    n_aggregates: int
    cohort_sizes: dict = field(default_factory=dict)
    buckets: dict = field(default_factory=dict)
    rows_scanned: int = 0
    users_seen: int = 0
    users_qualified: int = 0
    tuples_aggregated: int = 0

    def add_cohort_size(self, label: tuple, count: int) -> None:
        """Count ``count`` qualified users born into cohort ``label``."""
        self.cohort_sizes[label] = self.cohort_sizes.get(label, 0) + count

    def add_partial(self, key: tuple, agg_index: int, func: str,
                    partial) -> None:
        """Fold one partial state into the ``(label, age)`` bucket's
        slot for the ``agg_index``-th aggregate of the SELECT list."""
        slots = self.buckets.setdefault(key, [None] * self.n_aggregates)
        slots[agg_index] = merge_partial(func, slots[agg_index], partial)


def merge_partial(func: str, state, partial):
    """Fold one partial aggregate state into another (both canonical)."""
    if state is None:
        return partial
    if func in ("SUM", "COUNT", "USERCOUNT"):
        return state + partial
    if func == "AVG":
        return (state[0] + partial[0], state[1] + partial[1])
    if func == "MIN":
        return min(state, partial)
    if func == "MAX":
        return max(state, partial)
    raise ExecutionError(f"unknown aggregate {func!r}")


def finalize_partial(func: str, state):
    """Turn a fully merged partial state into the output value."""
    if state is None:
        return None
    if func == "AVG":
        total, count = state
        return total / count if count else None
    return state


@dataclass(frozen=True)
class ChunkKernel:
    """A per-chunk scan implementation.

    Attributes:
        name: registry key (``'vectorized'``, ``'iterator'``, ...).
        scan: pure function ``(table, chunk, plan) -> ChunkPartial``.
        decoded_labels: True when the kernel emits already-decoded cohort
            labels (strings / formatted timestamps); False when labels
            stay in global-dictionary id space until row building.
    """

    name: str
    scan: Callable[[CompressedActivityTable, Chunk, CohortPlan],
                   ChunkPartial]
    decoded_labels: bool = False


#: Kernel registry: executors register themselves at import time.
KERNELS: dict[str, ChunkKernel] = {}


def register_kernel(kernel: ChunkKernel) -> ChunkKernel:
    """Add ``kernel`` to the registry (last registration wins)."""
    KERNELS[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> ChunkKernel:
    """Look up a registered kernel; unknown names raise CatalogError
    (the same contract the engine's executor option always had)."""
    try:
        return KERNELS[name]
    except KeyError:
        raise CatalogError(f"unknown executor {name!r}; "
                           f"have {sorted(KERNELS)}") from None


# ---------------------------------------------------------------------------
# Chunk pruning (decided once, in the scheduler)
# ---------------------------------------------------------------------------


def chunk_prunable(table: CompressedActivityTable, chunk: Chunk,
                   plan: CohortPlan) -> bool:
    """Can ``chunk`` be skipped without changing the result?

    Every check is exact, proven from storage metadata alone (no segment
    is decoded): a pruned chunk cannot host a qualifying birth tuple,
    and since a user's tuples never span chunks, it cannot contribute
    anything to the result. See :func:`prune_reason` for which evidence
    applies in which ``scan_mode``.
    """
    return prune_reason(table, chunk, plan) is not None


def prune_reason(table: CompressedActivityTable, chunk: Chunk,
                 plan: CohortPlan) -> str | None:
    """Why ``chunk`` is prunable — or None when it must be scanned.

    * ``'action'`` — the birth action's global id is absent from the
      chunk's action dictionary (Section 4.1; all modes);
    * ``'time'`` — the birth condition's time bounds miss the chunk's
      time MIN/MAX (Section 4.1; all modes);
    * ``'zonemap'`` — a coded-domain birth bound is disjoint from the
      chunk's persisted zone map, an equality/IN constraint has no
      member in the chunk dictionary, or the birth condition is
      unsatisfiable table-wide. Only applied when
      ``plan.scan_mode != 'decoded'`` (``decoded`` is the legacy
      baseline the benchmarks compare against).
    """
    if not table.chunk_may_contain_action(chunk, plan.birth_action_gid):
        return "action"
    if plan.time_low is not None or plan.time_high is not None:
        time_name = table.schema.time.name
        if not table.chunk_overlaps_range(chunk, time_name, plan.time_low,
                                          plan.time_high):
            return "time"
    if plan.scan_mode != "decoded":
        if not plan.birth_satisfiable:
            return "zonemap"
        for bound in plan.birth_bounds:
            col = chunk.columns.get(bound.column)
            if (bound.gids is not None
                    and isinstance(col, DictEncodedColumn)
                    and not col.contains_any_global_id(bound.gids)):
                return "zonemap"
            zone = chunk.zone_map(bound.column)
            if zone is not None and not zone.overlaps(bound.low,
                                                      bound.high):
                return "zonemap"
    return None


def resolve_scan_mode(plan_mode: str, chunk: Chunk) -> str:
    """The effective scan mode for one chunk: ``auto`` picks
    ``compressed`` when the chunk carries persisted zone maps and
    ``decoded`` otherwise (version-1 files)."""
    if plan_mode == "auto":
        return "compressed" if chunk.has_zone_maps else "decoded"
    return plan_mode


# ---------------------------------------------------------------------------
# Streaming merge
# ---------------------------------------------------------------------------


class MergeState:
    """Accumulates ChunkPartials into table-wide totals, streaming."""

    def __init__(self, query: CohortQuery):
        self.query = query
        self.cohort_sizes: dict[tuple, int] = {}
        self.buckets: dict[tuple, list] = {}

    def absorb(self, partial: ChunkPartial, stats: ExecStats,
               collect_stats: bool = True) -> None:
        """Merge one chunk's partial in (order-independent: every merge
        operator is commutative and associative, so threaded completion
        order does not change the result)."""
        for label, count in partial.cohort_sizes.items():
            self.cohort_sizes[label] = (self.cohort_sizes.get(label, 0)
                                        + count)
        n_aggs = len(self.query.aggregates)
        funcs = [agg.func for agg in self.query.aggregates]
        for key, slots in partial.buckets.items():
            mine = self.buckets.setdefault(key, [None] * n_aggs)
            for i in range(n_aggs):
                if slots[i] is not None:
                    mine[i] = merge_partial(funcs[i], mine[i], slots[i])
        if collect_stats:
            stats.rows_scanned += partial.rows_scanned
            stats.users_seen += partial.users_seen
            stats.users_qualified += partial.users_qualified
            stats.tuples_aggregated += partial.tuples_aggregated


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanTask:
    """One unit of scan work: a chunk that survived pruning."""

    chunk: Chunk
    index: int


#: Per-shard plan cache. Shards have independent global dictionaries,
#: so a sharded query replans each shard; the plan depends only on the
#: bound query, the shard's *content* and the planning knobs — keying
#: by the shard's content digest (not the table object) means plans of
#: untouched shards stay warm across appends and table reloads, while
#: a rewritten shard can never reuse a stale plan.
_SHARD_PLAN_CACHE: OrderedDict[tuple, CohortPlan] = OrderedDict()
_SHARD_PLAN_CACHE_BOUND = 512
_SHARD_PLAN_LOCK = threading.Lock()
#: Cumulative cache counters (observable by tests and benchmarks).
SHARD_PLAN_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_shard_plan_cache() -> None:
    """Drop every cached per-shard plan (counters keep accumulating)."""
    with _SHARD_PLAN_LOCK:
        _SHARD_PLAN_CACHE.clear()


def shard_plan(shard: CompressedActivityTable, query: CohortQuery,
               pushdown: bool, prune: bool, scan_mode: str) -> CohortPlan:
    """Plan ``query`` against one shard, through the per-shard cache."""
    digest = getattr(shard, "content_digest", None)
    key = None
    if digest:
        key = (digest, repr(query), pushdown, prune, scan_mode)
        with _SHARD_PLAN_LOCK:
            plan = _SHARD_PLAN_CACHE.get(key)
            if plan is not None:
                SHARD_PLAN_CACHE_STATS["hits"] += 1
                _SHARD_PLAN_CACHE.move_to_end(key)
                return plan
            SHARD_PLAN_CACHE_STATS["misses"] += 1
    plan = plan_query(query, shard, pushdown=pushdown, prune=prune,
                      scan_mode=scan_mode)
    if key is not None:
        with _SHARD_PLAN_LOCK:
            _SHARD_PLAN_CACHE[key] = plan
            while len(_SHARD_PLAN_CACHE) > _SHARD_PLAN_CACHE_BOUND:
                _SHARD_PLAN_CACHE.popitem(last=False)
    return plan


def _decode_partial(shard: CompressedActivityTable, query: CohortQuery,
                    partial: ChunkPartial) -> ChunkPartial:
    """Translate a partial's cohort labels from the shard's global-id
    space into value space.

    Shards carry independent dictionaries, so the same global id means
    different values in different shards; decoding before the
    cross-shard merge is what makes the merge meaningful. Within one
    shard distinct ids decode to distinct values, so no information is
    lost.
    """
    schema = query.effective_schema(shard.schema)
    decoded: dict[tuple, tuple] = {}

    def value_label(label: tuple) -> tuple:
        hit = decoded.get(label)
        if hit is None:
            hit = decoded[label] = decode_label(shard, schema, query,
                                                label)
        return hit

    out = ChunkPartial(
        n_aggregates=partial.n_aggregates,
        rows_scanned=partial.rows_scanned,
        users_seen=partial.users_seen,
        users_qualified=partial.users_qualified,
        tuples_aggregated=partial.tuples_aggregated,
    )
    for label, count in partial.cohort_sizes.items():
        out.add_cohort_size(value_label(label), count)
    funcs = [agg.func for agg in query.aggregates]
    for (label, age), slots in partial.buckets.items():
        mine = out.buckets.setdefault((value_label(label), age),
                                      [None] * partial.n_aggregates)
        for i, slot in enumerate(slots):
            if slot is not None:
                mine[i] = merge_partial(funcs[i], mine[i], slot)
    return out


def fold_partial(into: ChunkPartial, partial: ChunkPartial,
                 funcs: list[str]) -> None:
    """Merge one partial into another, counters included.

    Both partials must carry their labels in the same space (both
    id-space from the same table, or both value space); ``funcs`` is the
    per-slot aggregate function list from the query's SELECT order.
    """
    into.rows_scanned += partial.rows_scanned
    into.users_seen += partial.users_seen
    into.users_qualified += partial.users_qualified
    into.tuples_aggregated += partial.tuples_aggregated
    for label, count in partial.cohort_sizes.items():
        into.add_cohort_size(label, count)
    for key, slots in partial.buckets.items():
        mine = into.buckets.setdefault(key, [None] * into.n_aggregates)
        for i, slot in enumerate(slots):
            if slot is not None:
                mine[i] = merge_partial(funcs[i], mine[i], slot)


def shard_value_partial(shard: CompressedActivityTable, query: CohortQuery,
                        kernel: "ChunkKernel | str" = "vectorized",
                        config: ExecutionConfig | None = None,
                        pushdown: bool = True, prune: bool = True,
                        stats: ExecStats | None = None) -> ChunkPartial:
    """Scan one shard into a single *value-space* :class:`ChunkPartial`.

    This is the unit of work the materialized-view store caches: because
    no user spans a chunk (writer invariant) and no user spans shards
    (:func:`~repro.storage.sharded.append_shard` invariant), the returned
    partial merges exactly with any other shard's partial — including
    USERCOUNT. Labels are decoded through the owning shard's dictionaries
    (shards have independent id spaces), so partials from different
    shards, or from the same shard cached at different times, are
    directly comparable.

    ``stats``, when given, accumulates the chunk/row counters of this
    scan (``chunks_total``/``chunks_pruned``/``chunks_scanned`` plus the
    per-row counters), mirroring what a full sharded run would have
    recorded for this shard.
    """
    kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
    config = config or ExecutionConfig()
    stats = stats if stats is not None else ExecStats()
    merged = ChunkPartial(n_aggregates=len(query.aggregates))
    stats.chunks_total += shard.n_chunks
    plan = shard_plan(shard, query, pushdown, prune, config.scan_mode)
    if plan.birth_action_gid is None and prune:
        # Shard-level action miss: nothing to scan (see _run_sharded).
        stats.chunks_pruned += shard.n_chunks
        return merged
    scheduler = ChunkScheduler(shard, plan, kernel, config)
    funcs = [agg.func for agg in query.aggregates]
    for partial in scheduler._scan(scheduler.tasks(stats)):
        if not kernel.decoded_labels:
            partial = _decode_partial(shard, query, partial)
        fold_partial(merged, partial, funcs)
    stats.rows_scanned += merged.rows_scanned
    stats.users_seen += merged.users_seen
    stats.users_qualified += merged.users_qualified
    stats.tuples_aggregated += merged.tuples_aggregated
    return merged


#: Per-worker-process table cache: one lazy table per ``.cohana`` path,
#: reused across every task this worker runs for its pool (pools are
#: per-query, so the cache's useful lifetime is one query's scan).
_WORKER_TABLES: dict[str, CompressedActivityTable] = {}


def _scan_chunk_in_worker(path: str, kernel_name: str, plan: CohortPlan,
                          chunk_index: int) -> ChunkPartial:
    """Scan one chunk inside a worker process.

    The task carries only the file path, the kernel name, the (picklable)
    plan and a chunk index; the worker opens the table by path — lazily
    memory-mapped for version-3 files, so only the chunks this worker is
    asked to scan are ever deserialized here — and caches it for the
    pool's lifetime.
    """
    table = _WORKER_TABLES.get(path)
    if table is None:
        # Imported here: storage.format is a leaf module, but the kernel
        # registry is populated by the executor modules, which import
        # this module back at their import time.
        from repro.storage.format import load
        from repro.cohana import iterator_executor, vectorized  # noqa: F401
        table = _WORKER_TABLES[path] = load(path)
    # Re-lower in the worker: the task ships only picklable data (path,
    # kernel name, plan); lowering is cheap object construction.
    physical = lower_plan(plan, get_kernel(kernel_name))
    return physical.execute_chunk(table, table.chunks[chunk_index])


class ChunkScheduler:
    """Runs a plan: prune once, drive the physical operator tree per
    chunk, stream-merge partials.

    The scheduler lowers the plan's logical chain once
    (:func:`~repro.cohana.operators.lower_plan`) and dispatches
    ``physical.execute_chunk`` as the per-chunk unit of work on every
    backend; the ``processes`` backend ships only the picklable plan and
    re-lowers inside each worker.

    A non-``auto`` ``config.scan_mode`` overrides the plan's, so the
    same :class:`~repro.cohana.planner.CohortPlan` can be executed in
    either mode without replanning.
    """

    def __init__(self, table: CompressedActivityTable, plan: CohortPlan,
                 kernel: ChunkKernel | str,
                 config: ExecutionConfig | None = None):
        self.table = table
        self.config = config or ExecutionConfig()
        if (self.config.scan_mode != "auto"
                and plan.scan_mode != self.config.scan_mode):
            plan = replace(plan, scan_mode=self.config.scan_mode)
        self.plan = plan
        self.kernel = (get_kernel(kernel) if isinstance(kernel, str)
                       else kernel)
        self.physical = lower_plan(self.plan, self.kernel)

    def tasks(self, stats: ExecStats | None = None) -> list[ScanTask]:
        """The scan tasks left after pruning (the single place pruning
        decisions are made and counted)."""
        stats = stats if stats is not None else ExecStats()
        tasks: list[ScanTask] = []
        if self.plan.birth_action_gid is None:
            return tasks
        for i, chunk in enumerate(self.table.chunks):
            if self.plan.prune:
                reason = prune_reason(self.table, chunk, self.plan)
                if reason is not None:
                    stats.chunks_pruned += 1
                    if reason == "zonemap":
                        stats.chunks_pruned_zone += 1
                    continue
            stats.chunks_scanned += 1
            tasks.append(ScanTask(chunk=chunk, index=i))
        return tasks

    def run(self) -> tuple[CohortResult, ExecStats]:
        """Execute the plan and build the result relation."""
        if getattr(self.table, "is_sharded", False):
            return self._run_sharded()
        query = self.plan.query
        stats = ExecStats(chunks_total=self.table.n_chunks)
        state = MergeState(query)
        tasks = self.tasks(stats)
        for partial in self._scan(tasks):
            state.absorb(partial, stats, self.config.collect_stats)
        rows = build_rows(self.table, state, self.kernel.decoded_labels)
        return (CohortResult(columns=query.output_columns, rows=rows,
                             n_cohort_columns=len(query.cohort_by)),
                stats)

    # -- sharded execution ----------------------------------------------------

    def _run_sharded(self) -> tuple[CohortResult, ExecStats]:
        """Execute over a sharded table: plan each shard against its
        own dictionaries, prune per shard, scan across all shards on
        the configured backend, and merge in *value* space.

        Shards carry independent global dictionaries (the append path
        never re-encodes old shards), so gid-space partials from
        different shards are not comparable — each shard's partials
        have their cohort labels decoded through the owning shard
        before they reach the shared :class:`MergeState`. Row building
        then runs with ``decoded_labels=True`` regardless of kernel.
        """
        query = self.plan.query
        stats = ExecStats(chunks_total=self.table.n_chunks,
                          shards_total=len(self.table.shards))
        state = MergeState(query)
        work: list[tuple] = []  # (shard, shard plan, surviving tasks)
        for shard in self.table.shards:
            plan = shard_plan(shard, query, self.plan.pushdown,
                              self.plan.prune, self.plan.scan_mode)
            if plan.birth_action_gid is None and self.plan.prune:
                # The birth action is absent from this shard's global
                # dictionary — the shard-level form of the action
                # chunk-dictionary miss. Count its chunks as pruned so
                # chunks_pruned + chunks_scanned == chunks_total keeps
                # holding across shards.
                stats.chunks_pruned += shard.n_chunks
                continue
            tasks = ChunkScheduler(shard, plan, self.kernel,
                                   self.config).tasks(stats)
            if tasks:
                stats.shards_scanned += 1
                work.append((shard, plan, tasks))
        for shard, partial in self._scan_shards(work):
            if not self.kernel.decoded_labels:
                partial = _decode_partial(shard, query, partial)
            state.absorb(partial, stats, self.config.collect_stats)
        rows = build_rows(self.table, state, decoded_labels=True)
        return (CohortResult(columns=query.output_columns, rows=rows,
                             n_cohort_columns=len(query.cohort_by)),
                stats)

    def _scan_shards(self, work):
        """Yield ``(shard, ChunkPartial)`` pairs across all shards.

        Same backend semantics as :meth:`_scan`, but the fan-out unit
        spans shards: one pool serves every shard's tasks, and a
        ``processes`` worker opens only the shard file that owns its
        chunk (each shard is an ordinary ``.cohana`` file, so the
        worker-side per-path table cache applies per shard).
        """
        if not work:
            return
        if self.config.backend == "serial":
            for shard, plan, tasks in work:
                physical = lower_plan(plan, self.kernel)
                for task in tasks:
                    yield shard, physical.execute_chunk(shard, task.chunk)
            return
        n_tasks = sum(len(tasks) for _, _, tasks in work)
        workers = min(self.config.jobs, n_tasks)
        owners: dict = {}
        if self.config.backend == "threads":
            pool = ThreadPoolExecutor(max_workers=workers)
            for shard, plan, tasks in work:
                physical = lower_plan(plan, self.kernel)
                for task in tasks:
                    future = pool.submit(physical.execute_chunk, shard,
                                         task.chunk)
                    owners[future] = shard
        else:
            pool = ProcessPoolExecutor(max_workers=workers)
            for shard, plan, tasks in work:
                path = getattr(shard, "source_path", None)
                if not path:
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise ExecutionError(
                        "the 'processes' backend needs shards loaded "
                        "from .cohana files (workers reopen them by "
                        "path); use backend='threads'")
                for task in tasks:
                    future = pool.submit(_scan_chunk_in_worker, path,
                                         self.kernel.name, plan,
                                         task.index)
                    owners[future] = shard
        yield from _drain_pool_keyed(pool, owners)

    def _scan(self, tasks: list[ScanTask]):
        """Yield ChunkPartials as scan tasks complete, per the backend.

        An explicitly requested parallel backend is honoured even at
        ``jobs=1`` or with a single surviving task, so backend-specific
        code paths are exercised whenever the caller asked for them;
        only ``backend='serial'`` (or an empty task list) runs inline.
        """
        if not tasks:
            return
        execute_chunk = self.physical.execute_chunk
        if self.config.backend == "serial":
            for task in tasks:
                yield execute_chunk(self.table, task.chunk)
            return
        workers = min(self.config.jobs, len(tasks))
        if self.config.backend == "threads":
            pool = ThreadPoolExecutor(max_workers=workers)
            futures = [pool.submit(execute_chunk, self.table, task.chunk)
                       for task in tasks]
        else:
            path = self._require_source_path()
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = [pool.submit(_scan_chunk_in_worker, path,
                                   self.kernel.name, self.plan, task.index)
                       for task in tasks]
        yield from _drain_pool(pool, futures)

    def _require_source_path(self) -> str:
        path = getattr(self.table, "source_path", None)
        if not path:
            raise ExecutionError(
                "the 'processes' backend needs a table loaded from a "
                ".cohana file (workers reopen it by path); save the "
                "table and load it, or use backend='threads'")
        return path


def _drain_pool(pool, futures):
    """Yield results as futures complete; on any failure (or the
    consumer abandoning the scan) cancel every queued task and shut the
    pool down deterministically before the exception propagates, so no
    orphaned worker keeps scanning after the query has already failed."""
    try:
        for future in as_completed(futures):
            yield future.result()
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


def _drain_pool_keyed(pool, futures: dict):
    """Like :func:`_drain_pool`, for futures mapped to an owner key
    (the shard that submitted them): yields ``(owner, result)``."""
    try:
        for future in as_completed(futures):
            yield futures[future], future.result()
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


def execute(table: CompressedActivityTable, plan: CohortPlan,
            kernel: ChunkKernel | str = "vectorized",
            config: ExecutionConfig | None = None,
            ) -> tuple[CohortResult, ExecStats]:
    """Convenience wrapper: schedule + run in one call."""
    return ChunkScheduler(table, plan, kernel, config).run()


# ---------------------------------------------------------------------------
# Row building (shared by all kernels)
# ---------------------------------------------------------------------------


def build_rows(table: CompressedActivityTable, state: MergeState,
               decoded_labels: bool) -> list[tuple]:
    """Finalize merged buckets into sorted result rows."""
    query = state.query
    schema = query.effective_schema(table.schema)
    if decoded_labels:
        decoded = {label: label for label in state.cohort_sizes}
    else:
        decoded = {label: decode_label(table, schema, query, label)
                   for label in state.cohort_sizes}

    def sort_key(item):
        label, age = item
        return (tuple(str(v) for v in decoded[label]), age)

    rows = []
    for (label, age) in sorted(state.buckets, key=sort_key):
        slots = state.buckets[(label, age)]
        finals = [finalize_partial(agg.func, slot)
                  for agg, slot in zip(query.aggregates, slots)]
        rows.append((*decoded[label], state.cohort_sizes[label], age,
                     *finals))
    return rows


def decode_label(table: CompressedActivityTable, schema,
                 query: CohortQuery, label: tuple) -> tuple:
    """Map an id-space cohort label to its output values."""
    out = []
    for name, value in zip(query.cohort_by, label):
        spec = schema.column(name)
        if spec.role is ColumnRole.TIME:
            out.append(format_timestamp(int(value)))
        elif spec.ltype is LogicalType.STRING:
            out.append(table.value_of(name, int(value)))
        else:
            out.append(int(value))
    return tuple(out)
