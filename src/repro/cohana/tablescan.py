"""The modified TableScan operator (Section 4.3).

A standard columnar TableScan augmented with the two functions the paper
adds for cohort processing:

* :meth:`ChunkScan.get_next_user` — position at the next user's activity
  tuple block, returning its RLE triple ``(u, f, n)``;
* :meth:`ChunkScan.skip_cur_user` — advance every column's cursor past the
  current user's remaining tuples in O(1).

Row values are decoded on demand via the encoders' random-access reads —
the ability the fixed-width bit packing exists to provide. A
:class:`LazyRow` behaves like a ``{column: value}`` mapping so the same
:class:`~repro.cohort.Condition` AST used by the oracle evaluates directly
against compressed data.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import ExecutionError
from repro.schema import ColumnRole
from repro.storage.chunk import Chunk
from repro.storage.dictionary import DictEncodedColumn
from repro.storage.reader import CompressedActivityTable


class LazyRow(Mapping):
    """A read-only row view decoding column values on first access."""

    def __init__(self, scan: "ChunkScan", position: int, user: str):
        self._scan = scan
        self._position = position
        self._user = user
        self._cache: dict[str, object] = {}

    def __getitem__(self, name: str):
        if name == self._scan.user_column:
            return self._user
        if name not in self._cache:
            self._cache[name] = self._scan.decode_value(name,
                                                        self._position)
        return self._cache[name]

    def __iter__(self):
        return iter(self._scan.schema.names())

    def __len__(self):
        return len(self._scan.schema)

    @property
    def position(self) -> int:
        """Row position within the chunk."""
        return self._position


class ChunkScan:
    """Scan one compressed chunk user-block by user-block."""

    def __init__(self, table: CompressedActivityTable, chunk: Chunk):
        self._table = table
        self._chunk = chunk
        self.schema = table.schema
        self.user_column = self.schema.user.name
        self._n_runs = chunk.users.n_users
        self._run = -1
        self._pos = 0
        self._run_end = 0
        self._current_user: str | None = None
        self._current_gid: int | None = None

    # -- user block navigation ----------------------------------------------

    def has_more_users(self) -> bool:
        """More user blocks left in this chunk?"""
        return self._run + 1 < self._n_runs

    def get_next_user(self) -> tuple[int, int, int]:
        """Advance to the next user's block; returns its (u, f, n) triple.

        ``u`` is the user's global id; the scan's cursor moves to ``f``.
        """
        if not self.has_more_users():
            raise ExecutionError("no more users in chunk")
        self._run += 1
        gid, first, count = self._chunk.users.triple(self._run)
        self._pos = first
        self._run_end = first + count
        self._current_gid = gid
        self._current_user = self._table.user_name(gid)
        return gid, first, count

    def skip_cur_user(self) -> int:
        """Skip the current user's remaining tuples; returns how many."""
        remaining = self._run_end - self._pos
        self._pos = self._run_end
        return remaining

    # -- tuple access -----------------------------------------------------------

    def get_next(self) -> LazyRow | None:
        """The next tuple of the *current user*, or None at block end."""
        if self._run < 0:
            raise ExecutionError("call get_next_user() before get_next()")
        if self._pos >= self._run_end:
            return None
        row = LazyRow(self, self._pos, self._current_user)
        self._pos += 1
        return row

    def peek_block_rows(self) -> Iterator[LazyRow]:
        """Iterate the current user's whole block without consuming it."""
        gid, first, count = self._chunk.users.triple(self._run)
        for pos in range(first, first + count):
            yield LazyRow(self, pos, self._current_user)

    def rewind_current_user(self) -> None:
        """Reset the cursor to the start of the current user's block."""
        _, first, _ = self._chunk.users.triple(self._run)
        self._pos = first

    # -- decoding ------------------------------------------------------------

    def decode_value(self, name: str, position: int):
        """Random-access decode of one cell (no neighbouring decode)."""
        spec = self.schema.column(name)
        if spec.role is ColumnRole.USER:
            return self._current_user
        column = self._chunk.column(name)
        if isinstance(column, DictEncodedColumn):
            return self._table.value_of(name, column.global_id_at(position))
        return column.value_at(position)

    def action_gid_at(self, position: int) -> int:
        """The action column's global id at ``position`` (no decode)."""
        column = self._chunk.column(self.schema.action.name)
        return column.global_id_at(position)
