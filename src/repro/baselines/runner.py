"""A uniform runner over every (scheme × engine) evaluation combination.

The paper's comparative study (Figure 11) runs five systems:

====================  =======================================
label                 meaning here
====================  =======================================
``COHANA``            the cohort engine, vectorized executor
``COHANA-ITER``       ablation: tuple-at-a-time executor
``MONET-S``           SQL scheme on the columnar engine
``MONET-M``           MV scheme on the columnar engine
``PG-S``              SQL scheme on the row engine
``PG-M``              MV scheme on the row engine
====================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.cohana.engine import CohanaEngine
from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.relational.database import Database
from repro.baselines.mv_scheme import MvScheme
from repro.baselines.sql_scheme import SqlScheme
from repro.table import ActivityTable

#: Figure 11's system labels.
SYSTEMS = ("COHANA", "COHANA-ITER", "MONET-S", "MONET-M", "PG-S", "PG-M")


@dataclass
class PreparedSystem:
    """One ready-to-query evaluation system.

    Attributes:
        label: one of :data:`SYSTEMS`.
        runner: object with ``run(CohortQuery) -> CohortResult``.
    """

    label: str
    runner: object

    def run(self, query: CohortQuery) -> CohortResult:
        return self.runner.run(query)


class _CohanaRunner:
    def __init__(self, engine: CohanaEngine, table: str, executor: str):
        self.engine = engine
        self.table = table
        self.executor = executor

    def run(self, query: CohortQuery) -> CohortResult:
        if query.table is None:
            query = query.__class__(**{**query.__dict__,
                                       "table": self.table})
        return self.engine.query(query, executor=self.executor)


def prepare_system(label: str, table: ActivityTable,
                   birth_actions: tuple[str, ...] = (),
                   table_name: str = "D",
                   chunk_rows: int = 65536) -> PreparedSystem:
    """Load ``table`` into the system named ``label``.

    For the MV schemes, ``birth_actions`` lists the actions to
    materialize views for (queries may only use these).
    """
    if label in ("COHANA", "COHANA-ITER"):
        engine = CohanaEngine()
        engine.create_table(table_name, table,
                            target_chunk_rows=chunk_rows)
        executor = "vectorized" if label == "COHANA" else "iterator"
        return PreparedSystem(label, _CohanaRunner(engine, table_name,
                                                   executor))
    if label in ("MONET-S", "MONET-M", "PG-S", "PG-M"):
        executor = "columnar" if label.startswith("MONET") else "rows"
        db = Database(executor=executor)
        db.register_activity_table(table_name, table)
        if label.endswith("-S"):
            return PreparedSystem(label, SqlScheme(db, table_name,
                                                   table.schema))
        scheme = MvScheme(db, table_name, table.schema)
        for action in birth_actions:
            scheme.prepare(action)
        return PreparedSystem(label, scheme)
    raise QueryError(f"unknown system label {label!r}; have {SYSTEMS}")


def run_everywhere(table: ActivityTable, query: CohortQuery,
                   systems: tuple[str, ...] = SYSTEMS,
                   chunk_rows: int = 65536) -> dict[str, CohortResult]:
    """Evaluate ``query`` on every requested system (correctness tool)."""
    out: dict[str, CohortResult] = {}
    for label in systems:
        system = prepare_system(label, table,
                                birth_actions=(query.birth_action,),
                                chunk_rows=chunk_rows)
        out[label] = system.run(query)
    return out
