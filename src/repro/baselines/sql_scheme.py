"""The SQL scheme: cohort queries as plain SQL over the activity table
(Section 2, Figure 2).

The generated statement mirrors the paper's four sub-queries plus outer
aggregation:

* ``birth``        — each user's birth time for the birth action,
* ``birth_tuples`` — the birth activity tuples with the birth attributes,
* ``qualified``    — birth selection applied to the birth tuples,
* ``cohort_t``     — every activity tuple of qualified users joined with
  its birth attributes and raw age (two joins — the scheme's cost),
* ``labeled`` / ``cohort_size`` / outer — cohort labels, sizes and the
  per-(cohort, age) aggregation.
"""

from __future__ import annotations

from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.relational.database import Database
from repro.schema import ActivitySchema
from repro.baselines.translate import (
    birth_attributes_needed,
    condition_to_sql,
    label_sql,
    outer_query_sql,
    quote,
    size_cte_sql,
    to_cohort_result,
)


def cohort_query_to_sql(query: CohortQuery, schema: ActivitySchema,
                        table: str) -> str:
    """Translate ``query`` into one SQL statement over ``table``."""
    u = schema.user.name
    t = schema.time.name
    a = schema.action.name
    e = quote(query.birth_action)
    battrs = birth_attributes_needed(query, schema)

    birth_cols = ", ".join([f"D.{u} AS p", "birth.bt AS bt"]
                           + [f"D.{name} AS b_{name}" for name in battrs])
    birth_cond = condition_to_sql(
        query.birth_condition,
        plain=lambda name: "bt" if name == t else f"b_{name}",
        birth=lambda name: f"b_{name}",
        age_sql=None,
    )
    carried = [c.name for c in schema if c.name != u]
    cohort_cols = ", ".join(
        [f"D.{u} AS p"]
        + [f"D.{name} AS {name}" for name in carried]
        + ["q.bt AS bt"]
        + [f"q.b_{name} AS b_{name}" for name in battrs]
        + [f"TimeDiff(D.{t}, q.bt) AS rawage"])
    labels = label_sql(query, schema, birth_col=lambda name: f"b_{name}")
    label_items = ", ".join(f"{expr} AS cohort_{i}"
                            for i, expr in enumerate(labels))
    return (
        f"WITH birth AS (\n"
        f"  SELECT {u} AS p, Min({t}) AS bt FROM {table}\n"
        f"  WHERE {a} = {e} GROUP BY {u}\n"
        f"),\n"
        f"birth_tuples AS (\n"
        f"  SELECT {birth_cols}\n"
        f"  FROM {table} D, birth\n"
        f"  WHERE D.{u} = birth.p AND D.{t} = birth.bt AND D.{a} = {e}\n"
        f"),\n"
        f"qualified AS (\n"
        f"  SELECT * FROM birth_tuples WHERE {birth_cond}\n"
        f"),\n"
        f"cohort_t AS (\n"
        f"  SELECT {cohort_cols}\n"
        f"  FROM {table} D, qualified q\n"
        f"  WHERE D.{u} = q.p\n"
        f"),\n"
        f"labeled AS (\n"
        f"  SELECT *, {label_items} FROM cohort_t\n"
        f"),\n"
        f"cohort_size AS (\n"
        f"  {size_cte_sql(query)}\n"
        f")\n"
        f"{outer_query_sql(query)}"
    )


class SqlScheme:
    """Runs cohort queries as generated SQL against a Database.

    Args:
        db: the database holding the activity table.
        table: the registered activity-table name.
        schema: the activity schema (drives the translation).
    """

    name = "sql"

    def __init__(self, db: Database, table: str, schema: ActivitySchema):
        self.db = db
        self.table = table
        self.schema = schema

    def translate(self, query: CohortQuery) -> str:
        """The SQL text that would be executed for ``query``."""
        query.validate(self.schema)
        return cohort_query_to_sql(query, self.schema, self.table)

    def run(self, query: CohortQuery) -> CohortResult:
        """Execute ``query`` and return its cohort result."""
        rel = self.db.execute(self.translate(query))
        return to_cohort_result(rel, query, self.schema)
