"""The materialized-view scheme (Section 2 and Figure 3).

One MV per birth action: every activity tuple joined with its user's
birth time (``bt``), the birth value of *every* dimension attribute
(``b_<dim>`` — the paper materializes time, role, country and city), and
the precomputed raw age. Queries then need a single join (against the
cohort-size relation) instead of the SQL scheme's multi-join pipeline —
but the MV costs two joins to build and roughly doubles storage, which is
what Figure 10 measures.
"""

from __future__ import annotations

from repro.errors import CatalogError, QueryError
from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.relational.database import Database
from repro.schema import ActivitySchema, ColumnRole
from repro.baselines.translate import (
    condition_to_sql,
    label_sql,
    outer_query_sql,
    quote,
    size_cte_sql,
    to_cohort_result,
)


def mv_name_for(table: str, birth_action: str) -> str:
    """Canonical MV name for (table, birth action)."""
    safe = "".join(ch if ch.isalnum() else "_" for ch in birth_action)
    return f"{table}_mv_{safe}"


def mv_creation_sql(schema: ActivitySchema, table: str,
                    birth_action: str) -> str:
    """The ``CREATE TABLE AS`` body materializing the view."""
    u = schema.user.name
    t = schema.time.name
    a = schema.action.name
    e = quote(birth_action)
    dims = [c.name for c in schema if c.role is ColumnRole.DIMENSION]
    carried = [c.name for c in schema if c.name != u]
    birth_cols = ", ".join([f"D.{u} AS p", "birth.bt AS bt"]
                           + [f"D.{name} AS b_{name}" for name in dims])
    mv_cols = ", ".join(
        [f"D.{u} AS p"]
        + [f"D.{name} AS {name}" for name in carried]
        + ["b.bt AS bt"]
        + [f"b.b_{name} AS b_{name}" for name in dims]
        + [f"TimeDiff(D.{t}, b.bt) AS rawage"])
    return (
        f"WITH birth AS (\n"
        f"  SELECT {u} AS p, Min({t}) AS bt FROM {table}\n"
        f"  WHERE {a} = {e} GROUP BY {u}\n"
        f"),\n"
        f"births AS (\n"
        f"  SELECT {birth_cols}\n"
        f"  FROM {table} D, birth\n"
        f"  WHERE D.{u} = birth.p AND D.{t} = birth.bt AND D.{a} = {e}\n"
        f")\n"
        f"SELECT {mv_cols}\n"
        f"FROM {table} D, births b\n"
        f"WHERE D.{u} = b.p"
    )


def mv_query_sql(query: CohortQuery, schema: ActivitySchema,
                 mv: str) -> str:
    """The Figure 3-style query over a materialized view."""
    t = schema.time.name
    birth_cond = condition_to_sql(
        query.birth_condition,
        plain=lambda name: "bt" if name == t else f"b_{name}",
        birth=lambda name: f"b_{name}",
        age_sql=None,
    )
    labels = label_sql(query, schema, birth_col=lambda name: f"b_{name}")
    label_items = ", ".join(f"{expr} AS cohort_{i}"
                            for i, expr in enumerate(labels))
    return (
        f"WITH birthView AS (\n"
        f"  SELECT * FROM {mv} WHERE {birth_cond}\n"
        f"),\n"
        f"labeled AS (\n"
        f"  SELECT *, {label_items} FROM birthView\n"
        f"),\n"
        f"cohort_size AS (\n"
        f"  {size_cte_sql(query)}\n"
        f")\n"
        f"{outer_query_sql(query)}"
    )


class MvScheme:
    """Builds MVs per birth action and runs cohort queries against them."""

    name = "mv"

    def __init__(self, db: Database, table: str, schema: ActivitySchema):
        self.db = db
        self.table = table
        self.schema = schema
        self._views: dict[str, str] = {}

    def prepare(self, birth_action: str) -> str:
        """Materialize (once) the view for ``birth_action``.

        This is the expensive step Figure 10 measures. Returns the MV's
        table name.
        """
        if birth_action in self._views:
            return self._views[birth_action]
        mv = mv_name_for(self.table, birth_action)
        sql = mv_creation_sql(self.schema, self.table, birth_action)
        try:
            self.db.create_table_as(mv, sql)
        except CatalogError:
            pass  # already materialized in this database
        self._views[birth_action] = mv
        return mv

    def translate(self, query: CohortQuery) -> str:
        """The SQL text for ``query`` (requires a prepared MV)."""
        query.validate(self.schema)
        if query.birth_action not in self._views:
            raise QueryError(
                f"no materialized view for birth action "
                f"{query.birth_action!r}; call prepare() first — the MV "
                f"scheme is per birth action (Section 2)")
        return mv_query_sql(query, self.schema,
                            self._views[query.birth_action])

    def run(self, query: CohortQuery) -> CohortResult:
        """Execute ``query`` against its birth action's MV."""
        rel = self.db.execute(self.translate(query))
        return to_cohort_result(rel, query, self.schema)
