"""Shared machinery for translating cohort queries to SQL (Section 3.6).

Both non-intrusive schemes express the three cohort operators as SQL over
a relational engine; they differ only in whether the birth attributes are
computed on the fly (the SQL scheme, Figure 2) or read from a materialized
view (the MV scheme, Figure 3). This module renders condition ASTs to SQL
text and builds the shared outer aggregation query.

Naming conventions in generated SQL:

* ``p`` / ``bt`` — the user and its birth time,
* ``b_<attr>`` — the user's birth value of ``<attr>``,
* ``rawage`` — seconds since birth (``TimeDiff(t, bt)``),
* ``cohort_<i>`` — the i-th cohort label attribute,
* ``CeilDiv(rawage, unit)`` — the normalized age.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import QueryError
from repro.cohort.conditions import (
    AgeRef,
    And,
    AttrRef,
    Between,
    BirthRef,
    Compare,
    Condition,
    InList,
    Literal,
    Not,
    Operand,
    Or,
    TrueCondition,
)
from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.relational.rows import RelTable
from repro.schema import (
    TIME_UNIT_SECONDS,
    ActivitySchema,
    ColumnRole,
    format_timestamp,
)


def quote(value) -> str:
    """Render a literal for SQL text."""
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def condition_to_sql(cond: Condition, plain: Callable[[str], str],
                     birth: Callable[[str], str],
                     age_sql: str | None) -> str:
    """Render a condition AST as a SQL boolean expression.

    Args:
        plain: maps a plain attribute name to its SQL column expression.
        birth: maps a ``Birth(attr)`` name to its SQL column expression.
        age_sql: SQL text for the ``AGE`` keyword (None forbids it).
    """
    def operand(op: Operand) -> str:
        if isinstance(op, Literal):
            return quote(op.raw)
        if isinstance(op, AttrRef):
            return plain(op.name)
        if isinstance(op, BirthRef):
            return birth(op.name)
        if isinstance(op, AgeRef):
            if age_sql is None:
                raise QueryError("AGE is not available in this context")
            return age_sql
        raise QueryError(f"cannot translate operand {op!r}")

    def walk(c: Condition) -> str:
        if isinstance(c, TrueCondition):
            return "1 = 1"
        if isinstance(c, Compare):
            return f"{operand(c.left)} {c.op} {operand(c.right)}"
        if isinstance(c, Between):
            return (f"{operand(c.operand)} BETWEEN {operand(c.low)} "
                    f"AND {operand(c.high)}")
        if isinstance(c, InList):
            inner = ", ".join(quote(v) for v in c.values)
            return f"{operand(c.operand)} IN ({inner})"
        if isinstance(c, And):
            return " AND ".join(f"({walk(p)})" for p in c.parts)
        if isinstance(c, Or):
            return " OR ".join(f"({walk(p)})" for p in c.parts)
        if isinstance(c, Not):
            return f"NOT ({walk(c.inner)})"
        raise QueryError(f"cannot translate condition {c!r}")

    return walk(cond)


def birth_attributes_needed(query: CohortQuery,
                            schema: ActivitySchema) -> list[str]:
    """Birth attributes the SQL scheme must compute for ``query``.

    The cohort attributes, every plain attribute of the birth condition,
    and every ``Birth()`` reference of the age condition. The birth time
    is always carried separately as ``bt``.
    """
    time_name = schema.time.name
    needed = set(query.cohort_by)
    needed |= query.birth_condition.plain_attributes()
    needed |= query.age_condition.birth_attributes()
    needed.discard(time_name)
    needed.discard(schema.user.name)
    return [c.name for c in schema if c.name in needed]


def label_sql(query: CohortQuery, schema: ActivitySchema,
              birth_col: Callable[[str], str]) -> list[str]:
    """SQL expressions computing each cohort label attribute."""
    out = []
    for name in query.cohort_by:
        spec = schema.column(name)
        if spec.role is ColumnRole.TIME:
            unit = TIME_UNIT_SECONDS[query.cohort_time_bin]
            out.append(f"TimeBin(bt, {unit}, {query.time_bin_origin})")
        else:
            out.append(birth_col(name))
    return out


def age_sql_expr(query: CohortQuery, rawage: str = "rawage") -> str:
    """SQL for the normalized age of an age tuple (rawage > 0)."""
    unit = TIME_UNIT_SECONDS[query.age_unit]
    return f"CeilDiv({rawage}, {unit})"


def aggregate_sql(query: CohortQuery, user_col: str,
                  prefix: str = "") -> list[str]:
    """Outer SELECT aggregate expressions, one per AggregateSpec."""
    out = []
    for agg in query.aggregates:
        if agg.func == "USERCOUNT":
            out.append(f"Count(DISTINCT {prefix}{user_col}) "
                       f"AS {agg.alias}")
        elif agg.func == "COUNT":
            out.append(f"Count(*) AS {agg.alias}")
        else:
            out.append(f"{agg.func.capitalize()}({prefix}{agg.column}) "
                       f"AS {agg.alias}")
    return out


def outer_query_sql(query: CohortQuery, labeled: str = "labeled") -> str:
    """The shared outer aggregation (Figure 2e / Figure 3d).

    Expects a CTE ``labeled`` with columns ``p``, ``cohort_<i>``,
    ``rawage``, the ``b_<attr>`` birth attributes and the original
    measure/dimension columns, plus a CTE ``cohort_size`` keyed by the
    cohort labels.
    """
    k = len(query.cohort_by)
    label_cols = [f"cohort_{i}" for i in range(k)]
    age = age_sql_expr(query, "l.rawage")
    join = " AND ".join(f"l.{c} = s.{c}" for c in label_cols)
    age_cond = condition_to_sql(
        query.age_condition,
        plain=lambda name: f"l.{name}",
        birth=lambda name: f"l.b_{name}",
        age_sql=age,
    )
    select_labels = ", ".join(f"l.{c} AS {c}" for c in label_cols)
    aggs = ", ".join(aggregate_sql(query, "p", "l."))
    group = ", ".join([f"l.{c}" for c in label_cols]
                      + ["s.cohort_size", f"{age} AS age"])
    return (
        f"SELECT {select_labels}, s.cohort_size AS cohort_size, "
        f"{age} AS age, {aggs}\n"
        f"FROM {labeled} l, cohort_size s\n"
        f"WHERE {join} AND l.rawage > 0 AND ({age_cond})\n"
        f"GROUP BY {group}"
    )


def size_cte_sql(query: CohortQuery, labeled: str = "labeled") -> str:
    """The cohort_size CTE over the labeled tuples."""
    k = len(query.cohort_by)
    label_cols = ", ".join(f"cohort_{i}" for i in range(k))
    return (f"SELECT {label_cols}, Count(DISTINCT p) AS cohort_size "
            f"FROM {labeled} GROUP BY {label_cols}")


def to_cohort_result(rel: RelTable, query: CohortQuery,
                     schema: ActivitySchema) -> CohortResult:
    """Convert a scheme's relational output into a CohortResult.

    Renames columns to the query's canonical output, formats time-binned
    cohort labels as dates, and applies the canonical sort order.
    """
    k = len(query.cohort_by)
    rows = []
    time_positions = [i for i, name in enumerate(query.cohort_by)
                      if schema.column(name).role is ColumnRole.TIME]
    for row in rel.rows:
        label = list(row[:k])
        for i in time_positions:
            label[i] = format_timestamp(int(label[i]))
        size, age = row[k], row[k + 1]
        measures = row[k + 2:]
        rows.append((*label, size, age, *measures))
    result = CohortResult(columns=query.output_columns, rows=rows,
                          n_cohort_columns=k)
    return result.sorted()
