"""The paper's non-intrusive cohort evaluation schemes (Section 2)."""

from repro.baselines.mv_scheme import (
    MvScheme,
    mv_creation_sql,
    mv_name_for,
    mv_query_sql,
)
from repro.baselines.runner import (
    SYSTEMS,
    PreparedSystem,
    prepare_system,
    run_everywhere,
)
from repro.baselines.sql_scheme import SqlScheme, cohort_query_to_sql
from repro.baselines.translate import condition_to_sql, to_cohort_result

__all__ = [
    "MvScheme",
    "PreparedSystem",
    "SYSTEMS",
    "SqlScheme",
    "cohort_query_to_sql",
    "condition_to_sql",
    "mv_creation_sql",
    "mv_name_for",
    "mv_query_sql",
    "prepare_system",
    "run_everywhere",
    "to_cohort_result",
]
