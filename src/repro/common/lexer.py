"""A small shared lexer for the cohort query language and the SQL subset.

Produces a flat token stream of identifiers, numbers, strings and
punctuation. Keywords are not distinguished here — parsers match
identifiers case-insensitively — but identifier case is preserved so
column names stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

#: Token kinds.
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
END = "END"

_SYMBOLS = ("<=", ">=", "!=", "<>", "(", ")", "[", "]", ",", "*", "=",
            "<", ">", ".", ";", "+", "-", "/")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: IDENT, NUMBER, STRING, SYMBOL or END.
        text: the raw text (string tokens hold the unquoted value).
        position: character offset in the source.
    """

    kind: str
    text: str
    position: int

    def matches_keyword(self, word: str) -> bool:
        """Case-insensitive keyword check on identifier tokens."""
        return self.kind == IDENT and self.text.upper() == word.upper()


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens.

    Raises:
        ParseError: on unterminated strings or unexpected characters.
    """
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in "\"'":
            # SQL-style escaping: a doubled quote inside the literal is
            # one literal quote character ('O''Brien' -> O'Brien).
            parts: list[str] = []
            j = i + 1
            while True:
                end = source.find(ch, j)
                if end < 0:
                    raise ParseError("unterminated string literal", i)
                parts.append(source[j:end])
                if source.startswith(ch, end + 1):
                    parts.append(ch)
                    j = end + 2
                    continue
                break
            tokens.append(Token(STRING, "".join(parts), i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i + 1
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            text = source[i:j]
            if text.count(".") > 1:
                raise ParseError(
                    f"invalid number literal {text!r} "
                    f"(more than one '.')", i)
            tokens.append(Token(NUMBER, text, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token(IDENT, source[i:j], i))
            i = j
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, i):
                text = "!=" if symbol == "<>" else symbol
                tokens.append(Token(SYMBOL, text, i))
                i += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(END, "", n))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != END:
            self._pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == END

    def accept_keyword(self, *words: str) -> Token | None:
        """Consume the next token if it is one of ``words``."""
        token = self.peek()
        if any(token.matches_keyword(w) for w in words):
            return self.next()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.next()
        if not token.matches_keyword(word):
            raise ParseError(f"expected {word}, got {token.text!r}",
                             token.position)
        return token

    def accept_symbol(self, symbol: str) -> Token | None:
        token = self.peek()
        if token.kind == SYMBOL and token.text == symbol:
            return self.next()
        return None

    def expect_symbol(self, symbol: str) -> Token:
        token = self.next()
        if token.kind != SYMBOL or token.text != symbol:
            raise ParseError(f"expected {symbol!r}, got {token.text!r}",
                             token.position)
        return token

    def expect_ident(self) -> Token:
        token = self.next()
        if token.kind != IDENT:
            raise ParseError(f"expected identifier, got {token.text!r}",
                             token.position)
        return token

    def peek_is_keyword(self, *words: str) -> bool:
        token = self.peek()
        return any(token.matches_keyword(w) for w in words)
