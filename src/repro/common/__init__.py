"""Shared utilities: lexing infrastructure for both query languages."""

from repro.common.lexer import (
    END,
    IDENT,
    NUMBER,
    STRING,
    SYMBOL,
    Token,
    TokenStream,
    tokenize,
)

__all__ = ["END", "IDENT", "NUMBER", "STRING", "SYMBOL", "Token",
           "TokenStream", "tokenize"]
