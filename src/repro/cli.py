"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write the synthetic mobile-game dataset to CSV;
* ``compress`` — compress an activity CSV into a ``.cohana`` file;
* ``inspect``  — print storage statistics of a ``.cohana`` file;
* ``query``    — run a cohort query against a ``.cohana`` file;
* ``bench``    — regenerate the paper's evaluation figures.

The CSV commands assume the benchmark's game schema (player / time /
action / country / city / role / session_length / gold); library users
with other schemas use the Python API directly.
"""

from __future__ import annotations

import argparse
import sys

from repro.cohana import CohanaEngine
from repro.cohana.parser import parse_cohort_query
from repro.datagen import GameConfig, game_schema, generate, scale_dataset
from repro.errors import ReproError
from repro.schema import parse_timestamp
from repro.storage import collect_stats, compress, load, save
from repro.table import read_csv, write_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COHANA cohort query engine "
                    "(reproduction of Jiang et al., VLDB 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate the game dataset")
    p.add_argument("output", help="output CSV path")
    p.add_argument("--users", type=int, default=57)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--scale", type=int, default=1,
                   help="paper-style scale factor (user replication)")

    p = sub.add_parser("compress", help="compress a CSV into .cohana")
    p.add_argument("input", help="activity CSV (game schema)")
    p.add_argument("output", help="output .cohana path")
    p.add_argument("--chunk-rows", type=int, default=65536)

    p = sub.add_parser("inspect", help="storage stats of a .cohana file")
    p.add_argument("input", help=".cohana path")

    p = sub.add_parser("query", help="run a cohort query")
    p.add_argument("input", help=".cohana path")
    p.add_argument("text", help="cohort query text (FROM names the "
                                "table this file is registered as)")
    p.add_argument("--executor", default="vectorized",
                   choices=("vectorized", "iterator"))
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel scan workers (default 1)")
    p.add_argument("--backend", default=None,
                   choices=("serial", "threads", "processes"),
                   help="scan backend (default with --jobs > 1: "
                        "processes, which mmaps the .cohana file in "
                        "each worker)")
    p.add_argument("--scan-mode", default="auto",
                   choices=("auto", "decoded", "compressed"),
                   help="predicate evaluation domain: 'compressed' "
                        "evaluates on the encoded chunks with zone-map "
                        "pruning, 'decoded' materializes codes first, "
                        "'auto' picks per chunk (default)")
    p.add_argument("--age-unit", default="day")
    p.add_argument("--origin", default=None,
                   help="time-bin origin date for COHORT BY time")
    p.add_argument("--explain", action="store_true",
                   help="print the plan instead of executing")
    p.add_argument("--pivot", action="store_true",
                   help="print the pivoted cohort report too")

    p = sub.add_parser("bench", help="run the figure experiments")
    p.add_argument("names", nargs="*", help="experiment names "
                                            "(default: all)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "generate":
        table = generate(GameConfig(n_users=args.users, seed=args.seed))
        table = scale_dataset(table, args.scale)
        write_csv(table, args.output)
        print(f"wrote {len(table)} tuples "
              f"({len(table.distinct_users())} users) to {args.output}")
        return 0
    if args.command == "compress":
        table = read_csv(args.input, game_schema())
        compressed = compress(table, target_chunk_rows=args.chunk_rows)
        n_bytes = save(compressed, args.output)
        print(f"compressed {len(table)} tuples into {args.output}: "
              f"{n_bytes} bytes, {compressed.n_chunks} chunks")
        return 0
    if args.command == "inspect":
        stats = collect_stats(load(args.input))
        print(f"{args.input}: {stats.n_rows} tuples, "
              f"{stats.n_chunks} chunks "
              f"(target {stats.target_chunk_rows} rows/chunk)")
        print(f"  total          {stats.total_bytes:>12,} bytes "
              f"({stats.bits_per_tuple:.1f} bits/tuple)")
        print(f"  user RLE       {stats.user_rle_bytes:>12,} bytes")
        print(f"  global dicts   {stats.global_dict_bytes:>12,} bytes")
        for name in sorted(stats.columns):
            col = stats.columns[name]
            print(f"  {name:<14} {col.total_bytes:>12,} bytes "
                  f"[{col.kind}]")
        return 0
    if args.command == "query":
        engine = CohanaEngine()
        table_name = parse_cohort_query(args.text).table
        engine.load_table(table_name, args.input)
        origin = parse_timestamp(args.origin) if args.origin else 0
        query = engine.parse(args.text, age_unit=args.age_unit,
                             time_bin_origin=origin)
        if args.explain:
            print(engine.explain(query, scan_mode=args.scan_mode,
                                 jobs=args.jobs, backend=args.backend))
            return 0
        result = engine.query(query, executor=args.executor,
                              jobs=args.jobs, backend=args.backend,
                              scan_mode=args.scan_mode)
        print(result.to_text())
        if args.pivot:
            print()
            print(result.pivot().to_text())
        return 0
    if args.command == "bench":
        from repro.bench.report_runner import run_and_print
        return run_and_print(args.names)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
