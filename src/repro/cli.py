"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write the synthetic mobile-game dataset to CSV;
* ``compress`` — compress an activity CSV into a ``.cohana`` file;
* ``ingest``   — append a CSV batch to a *sharded* table directory as
  a new shard (``--append``; existing shard bytes are never rewritten);
* ``inspect``  — print storage statistics of a ``.cohana`` file;
* ``query``    — run a cohort query against a ``.cohana`` file or
  sharded table directory (through the caching query service;
  ``--no-cache`` bypasses it);
* ``serve``    — serve queries from stdin against a ``.cohana`` file or
  sharded table directory: a REPL on a terminal, a concurrent batch
  reader on piped input. Accepts ``CREATE MATERIALIZED VIEW`` / ``DROP
  MATERIALIZED VIEW`` statements and the ``.views`` / ``.view <name>``
  meta commands;
* ``view``     — manage materialized views of a sharded table directory
  (``create`` / ``list`` / ``refresh`` / ``drop`` / ``serve``); view
  definitions and per-shard partials persist next to MANIFEST.json, so
  refreshes after an append scan only the new shards;
* ``bench``    — regenerate the paper's evaluation figures.

The CSV commands assume the benchmark's game schema (player / time /
action / country / city / role / session_length / gold); library users
with other schemas use the Python API directly.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cohana import CohanaEngine
from repro.cohana.parser import (
    ParsedCreateView,
    ParsedDropView,
    parse_cohort_query,
    parse_statement,
)
from repro.datagen import GameConfig, game_schema, generate, scale_dataset
from repro.errors import ReproError
from repro.schema import parse_timestamp
from repro.service import QueryService
from repro.storage import collect_stats, compress, load, save
from repro.table import read_csv, write_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COHANA cohort query engine "
                    "(reproduction of Jiang et al., VLDB 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate the game dataset")
    p.add_argument("output", help="output CSV path")
    p.add_argument("--users", type=int, default=57)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--scale", type=int, default=1,
                   help="paper-style scale factor (user replication)")

    p = sub.add_parser("compress", help="compress a CSV into .cohana")
    p.add_argument("input", help="activity CSV (game schema)")
    p.add_argument("output", help="output .cohana path")
    p.add_argument("--chunk-rows", type=int, default=65536)

    p = sub.add_parser("ingest", help="ingest a CSV batch into a "
                                      "sharded table directory")
    p.add_argument("input", help="activity CSV (game schema)")
    p.add_argument("table", help="sharded table directory (created on "
                                 "first ingest; holds MANIFEST.json + "
                                 "shard-NNNNNN.cohana files)")
    p.add_argument("--append", action="store_true",
                   help="add a new shard to an existing table without "
                        "rewriting any existing shard bytes (required "
                        "when the table already exists; the batch's "
                        "users must be new to the table)")
    p.add_argument("--chunk-rows", type=int, default=65536)

    p = sub.add_parser("compact", help="merge small shards of a "
                                       "sharded table into one")
    p.add_argument("table", help="sharded table directory")
    p.add_argument("--small-rows", type=int, default=None,
                   help="merge only shards at or under this many rows "
                        "(default: merge all shards)")
    p.add_argument("--chunk-rows", type=int, default=None,
                   help="target chunk rows for the merged shard "
                        "(default: the table's setting)")
    p.add_argument("--no-gc", action="store_true",
                   help="leave superseded shard files on disk instead "
                        "of garbage-collecting the unpinned ones")

    p = sub.add_parser("retention", help="drop whole shards older "
                                         "than a time cutoff")
    p.add_argument("table", help="sharded table directory")
    p.add_argument("--older-than", required=True,
                   help="cutoff timestamp (e.g. 2013-05-21, "
                        "2013-05-21 14:00, or 2013/05/21:1400); a "
                        "shard is dropped when every tuple in it is "
                        "older")
    p.add_argument("--no-gc", action="store_true",
                   help="leave dropped shard files on disk")

    p = sub.add_parser("inspect", help="storage stats of a .cohana file")
    p.add_argument("input", help=".cohana path")

    p = sub.add_parser("query", help="run a cohort query")
    p.add_argument("input", help=".cohana file or sharded table dir")
    p.add_argument("text", help="cohort query text (FROM names the "
                                "table this file is registered as)")
    p.add_argument("--executor", default="vectorized",
                   choices=("vectorized", "iterator"))
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel scan workers (default 1)")
    p.add_argument("--backend", default=None,
                   choices=("serial", "threads", "processes"),
                   help="scan backend (default with --jobs > 1: "
                        "processes, which mmaps the .cohana file in "
                        "each worker)")
    p.add_argument("--scan-mode", default="auto",
                   choices=("auto", "decoded", "compressed"),
                   help="predicate evaluation domain: 'compressed' "
                        "evaluates on the encoded chunks with zone-map "
                        "pruning, 'decoded' materializes codes first, "
                        "'auto' picks per chunk (default)")
    p.add_argument("--age-unit", default="day")
    p.add_argument("--origin", default=None,
                   help="time-bin origin date for COHORT BY time")
    p.add_argument("--explain", action="store_true",
                   help="print the plan (incl. the cache disposition) "
                        "instead of executing")
    p.add_argument("--pivot", action="store_true",
                   help="print the pivoted cohort report too")
    p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="route the query through the result cache "
                        "(--no-cache executes directly; a one-shot "
                        "process cannot hit, but --explain shows the "
                        "disposition either way)")

    p = sub.add_parser("serve", help="serve cohort queries from stdin "
                                     "(REPL on a terminal, concurrent "
                                     "batch on piped input) or over "
                                     "HTTP (--http HOST:PORT)")
    p.add_argument("input", help=".cohana file or sharded table dir")
    p.add_argument("--http", default=None, metavar="HOST:PORT",
                   help="serve over HTTP instead of stdin: an asyncio "
                        "frontend with per-tenant admission control "
                        "(POST /query /batch /ingest, GET /explain "
                        "/stats /healthz); port 0 picks a free port; "
                        "SIGTERM drains gracefully")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="HTTP: concurrent executions — the engine "
                        "thread-pool size (default 8)")
    p.add_argument("--queue-depth", type=int, default=16,
                   help="HTTP: admitted requests allowed to wait for "
                        "an execution slot; beyond this the request "
                        "is shed with 429 (default 16)")
    p.add_argument("--tenant-quota", type=int, default=8,
                   help="HTTP: per-tenant (X-Tenant header) cap on "
                        "in-flight requests (default 8)")
    p.add_argument("--tenant-rate", type=float, default=None,
                   help="HTTP: per-tenant token-bucket rate limit in "
                        "requests/second (default: off)")
    p.add_argument("--tenant-burst", type=int, default=8,
                   help="HTTP: per-tenant token-bucket capacity "
                        "(default 8)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="HTTP: per-request budget in seconds covering "
                        "queue wait + execution (default 30)")
    p.add_argument("--jobs", type=int, default=4,
                   help="admission workers for piped input: distinct "
                        "queries run concurrently and, with the cache "
                        "on, identical in-flight queries are "
                        "deduplicated (default 4)")
    p.add_argument("--executor", default="vectorized",
                   choices=("vectorized", "iterator"))
    p.add_argument("--scan-mode", default="auto",
                   choices=("auto", "decoded", "compressed"))
    p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                   default=True, help="serve repeated queries from the "
                                      "result cache (default on)")
    p.add_argument("--stats", action="store_true",
                   help="print a [disposition, seconds] line after "
                        "each query result")
    p.add_argument("--age-unit", default="day")
    p.add_argument("--origin", default=None,
                   help="time-bin origin date for COHORT BY time")

    p = sub.add_parser("view", help="manage materialized views of a "
                                    "table (persisted next to a "
                                    "sharded table's MANIFEST.json)")
    vsub = p.add_subparsers(dest="view_command", required=True)

    v = vsub.add_parser("create", help="register + refresh a view")
    v.add_argument("input", help="sharded table dir (or .cohana file)")
    v.add_argument("text", help="CREATE MATERIALIZED VIEW <name> AS "
                                "<cohort query>")
    v.add_argument("--age-unit", default="day")
    v.add_argument("--origin", default=None,
                   help="time-bin origin date for COHORT BY time")

    v = vsub.add_parser("list", help="list persisted views and their "
                                     "per-shard freshness")
    v.add_argument("input", help="sharded table dir")

    v = vsub.add_parser("refresh", help="incrementally refresh views "
                                        "(scans only new shards)")
    v.add_argument("input", help="sharded table dir")
    v.add_argument("names", nargs="*",
                   help="view names (default: all persisted views)")

    v = vsub.add_parser("drop", help="drop a view (definition and "
                                     "partial files)")
    v.add_argument("input", help="sharded table dir")
    v.add_argument("name", help="view name")

    v = vsub.add_parser("serve", help="serve a view: incremental "
                                      "refresh + re-merge of cached "
                                      "per-shard partials")
    v.add_argument("input", help="sharded table dir")
    v.add_argument("name", help="view name")
    v.add_argument("--pivot", action="store_true",
                   help="print the pivoted cohort report too")
    v.add_argument("--stats", action="store_true",
                   help="print a [shards scanned/total, seconds] line")

    p = sub.add_parser("bench", help="run the figure experiments")
    p.add_argument("names", nargs="*", help="experiment names "
                                            "(default: all)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "generate":
        table = generate(GameConfig(n_users=args.users, seed=args.seed))
        table = scale_dataset(table, args.scale)
        write_csv(table, args.output)
        print(f"wrote {len(table)} tuples "
              f"({len(table.distinct_users())} users) to {args.output}")
        return 0
    if args.command == "compress":
        table = read_csv(args.input, game_schema())
        compressed = compress(table, target_chunk_rows=args.chunk_rows)
        n_bytes = save(compressed, args.output)
        print(f"compressed {len(table)} tuples into {args.output}: "
              f"{n_bytes} bytes, {compressed.n_chunks} chunks")
        return 0
    if args.command == "ingest":
        from pathlib import Path

        from repro.storage import (
            MANIFEST_NAME,
            append_shard,
            read_manifest,
        )

        table = read_csv(args.input, game_schema())
        directory = Path(args.table)
        exists = (directory / MANIFEST_NAME).is_file()
        if exists and not args.append:
            print(f"error: {directory} is already a sharded table; "
                  f"pass --append to add a shard", file=sys.stderr)
            return 1
        entry = append_shard(directory, table,
                             target_chunk_rows=args.chunk_rows)
        manifest = read_manifest(directory)
        total_rows = sum(s["n_rows"] for s in manifest["shards"])
        print(f"{'appended' if exists else 'created'} "
              f"{directory / entry['path']}: {entry['n_rows']} tuples, "
              f"{entry['n_chunks']} chunks, {entry['n_bytes']} bytes "
              f"(table: {len(manifest['shards'])} shards, "
              f"{total_rows} tuples)")
        return 0
    if args.command == "compact":
        from repro.storage import compact

        result = compact(args.table, small_rows=args.small_rows,
                         target_chunk_rows=args.chunk_rows,
                         gc=not args.no_gc)
        if not result.compacted:
            print(f"{args.table}: nothing to compact "
                  f"(generation {result.generation})")
            return 0
        print(f"compacted {len(result.merged)} shards of {args.table} "
              f"into {result.new_shard} ({result.n_rows} tuples); "
              f"generation {result.generation}, "
              f"{len(result.gc_removed)} file(s) garbage-collected")
        return 0
    if args.command == "retention":
        from repro.storage import prune_retention

        cutoff = parse_timestamp(args.older_than)
        result = prune_retention(args.table, older_than=cutoff,
                                 gc=not args.no_gc)
        if not result.pruned:
            print(f"{args.table}: no shard is entirely older than "
                  f"{args.older_than} (generation {result.generation})")
            return 0
        print(f"dropped {len(result.removed)} shard(s) of "
              f"{args.table} older than {args.older_than}; "
              f"{result.kept} shard(s) kept, generation "
              f"{result.generation}, {len(result.gc_removed)} file(s) "
              f"garbage-collected")
        return 0
    if args.command == "inspect":
        stats = collect_stats(load(args.input))
        print(f"{args.input}: {stats.n_rows} tuples, "
              f"{stats.n_chunks} chunks "
              f"(target {stats.target_chunk_rows} rows/chunk)")
        print(f"  total          {stats.total_bytes:>12,} bytes "
              f"({stats.bits_per_tuple:.1f} bits/tuple)")
        print(f"  user RLE       {stats.user_rle_bytes:>12,} bytes")
        print(f"  global dicts   {stats.global_dict_bytes:>12,} bytes")
        for name in sorted(stats.columns):
            col = stats.columns[name]
            print(f"  {name:<14} {col.total_bytes:>12,} bytes "
                  f"[{col.kind}]")
        return 0
    if args.command == "query":
        engine = CohanaEngine()
        table_name = parse_cohort_query(args.text).table
        engine.load_table(table_name, args.input)
        service = QueryService(engine, enabled=args.cache,
                               executor=args.executor)
        origin = parse_timestamp(args.origin) if args.origin else 0
        query = engine.parse(args.text, age_unit=args.age_unit,
                             time_bin_origin=origin)
        if args.explain:
            print(service.explain(query, scan_mode=args.scan_mode,
                                  jobs=args.jobs, backend=args.backend,
                                  analyze=True))
            return 0
        result = service.query(query, jobs=args.jobs,
                               backend=args.backend,
                               scan_mode=args.scan_mode)
        print(result.to_text())
        if args.pivot:
            print()
            print(result.pivot().to_text())
        return 0
    if args.command == "serve":
        return _serve(args)
    if args.command == "view":
        return _view_cmd(args)
    if args.command == "bench":
        from repro.bench.report_runner import run_and_print
        return run_and_print(args.names)
    raise AssertionError(f"unhandled command {args.command!r}")


def _serve(args) -> int:
    """The ``serve`` command: queries from stdin through the service
    (or over HTTP with ``--http``).

    On a terminal this is a small REPL (one query per line, ``.help``
    for meta commands). On piped input, statements may span multiple
    lines (terminated by ``;`` or by parsing as a complete query);
    they are parsed first and then admitted as one concurrent batch
    per flush, so distinct queries run on ``--jobs`` admission workers
    and identical ones are deduplicated in flight. Both the stdin path
    and the HTTP frontend classify statement errors through the same
    surface (:mod:`repro.service.protocol`): the REPL prints the
    one-line rendering, HTTP sends the JSON payload as a 400.
    """
    import json

    if args.http:
        return _serve_http(args)

    from repro.service.protocol import StatementAccumulator, format_error

    engine = CohanaEngine()
    service = QueryService(engine, enabled=args.cache,
                           executor=args.executor)
    origin = parse_timestamp(args.origin) if args.origin else 0
    parse_kw = dict(age_unit=args.age_unit, time_bin_origin=origin)

    def bind(text: str):
        """Parse + bind one query, loading the served file under the
        query's FROM name on first use."""
        name = parse_cohort_query(text).table
        if name not in engine.tables():
            engine.load_table(name, args.input)
        return engine.parse(text, **parse_kw)

    def run_meta(line: str) -> bool:
        """Handle a ``.meta`` command line; False means quit."""
        cmd, _, rest = line.partition(" ")
        rest = rest.strip()
        if cmd in (".quit", ".exit"):
            return False
        if cmd == ".stats":
            print(json.dumps(service.stats_snapshot(), indent=2))
        elif cmd == ".clear":
            service.clear()
            print("cache cleared")
        elif cmd == ".explain" and rest:
            print(service.explain(bind(rest),
                                  scan_mode=args.scan_mode))
        elif cmd == ".views":
            ensure_loaded()
            names = engine.views()
            if not names:
                print("no views registered")
            for vname in names:
                s = engine.view_status(vname)
                print(f"{s['name']}: table={s['table']} "
                      f"shards={s['shards_cached']}/{s['shards_total']} "
                      f"fingerprint={s['fingerprint'][:12]}")
        elif cmd == ".view" and rest:
            ensure_loaded()
            start = time.perf_counter()
            result, stats = service.serve_view(rest)
            elapsed = time.perf_counter() - start
            print(result.to_text())
            if args.stats:
                print(f"[{stats.cache_disposition} "
                      f"shards {stats.shards_scanned}/"
                      f"{stats.shards_total} {elapsed:.4f}s]")
        elif cmd == ".help":
            print("one statement per line (cohort queries and CREATE /\n"
                  "DROP MATERIALIZED VIEW); meta commands:\n"
                  "  .stats            cache/service counters\n"
                  "  .clear            drop the caches\n"
                  "  .explain <query>  plan + cache disposition\n"
                  "  .views            registered views + freshness\n"
                  "  .view <name>      serve a materialized view\n"
                  "  .quit             exit")
        else:
            print(f"unknown meta command {cmd!r}; try .help",
                  file=sys.stderr)
        return True

    def run_one(text: str) -> None:
        parsed = parse_statement(text)
        if isinstance(parsed, (ParsedCreateView, ParsedDropView)):
            run_ddl(text, parsed)
            return
        start = time.perf_counter()
        result, stats = service.query_with_stats(
            bind(text), scan_mode=args.scan_mode)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        if args.stats:
            print(f"[{stats.cache_disposition} {elapsed:.4f}s]")

    def ensure_loaded() -> None:
        """Load the served input for paths that carry no FROM clause
        (``.views``, ``.view``, DROP): attach via the persisted view
        definitions when no table is loaded yet."""
        if engine.tables():
            return
        from pathlib import Path

        from repro.views import VIEWS_DIRNAME, DiskViewStore
        definitions = DiskViewStore(
            Path(args.input) / VIEWS_DIRNAME).load_definitions()
        if definitions:
            engine.load_table(definitions[0]["table"], args.input)

    def run_ddl(text: str, parsed) -> None:
        """Execute one CREATE/DROP MATERIALIZED VIEW statement."""
        if isinstance(parsed, ParsedCreateView):
            name = parsed.query.table
            if name not in engine.tables():
                engine.load_table(name, args.input)
        else:
            ensure_loaded()
        out = engine.execute_statement(text, **parse_kw)
        if isinstance(parsed, ParsedCreateView):
            status = engine.view_status(out.name)
            print(f"view {out.name}: "
                  f"{status['shards_cached']}/{status['shards_total']} "
                  f"shard partials cached")
        else:
            print(f"{'dropped' if out else 'no such'} "
                  f"view {parsed.name}")

    if sys.stdin.isatty():  # pragma: no cover - interactive only
        print(f"serving {args.input} "
              f"(cache {'on' if args.cache else 'off'}); .help for help")
        while True:
            try:
                line = input("cohana> ").strip()
            except (EOFError, KeyboardInterrupt):
                print()
                return 0
            if not line:
                continue
            try:
                if line.startswith("."):
                    if not run_meta(line):
                        return 0
                else:
                    run_one(line.rstrip(";"))
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)

    # Piped input: batch consecutive queries, flushing at meta lines.
    # Multi-line statement accumulation is the shared
    # StatementAccumulator (the HTTP frontend speaks whole statements,
    # but both paths classify broken ones through the same error
    # surface — see repro.service.protocol).
    statements = StatementAccumulator()

    def flush() -> None:
        pending = statements.take()
        if not pending:
            return
        batch: list[tuple[str, object]] = []

        def run_batch() -> None:
            if not batch:
                return
            start = time.perf_counter()
            try:
                pairs = service.query_batch([q for _, q in batch],
                                            concurrency=args.jobs,
                                            with_stats=True,
                                            scan_mode=args.scan_mode)
            except ReproError as exc:
                # One failed execution drops its batch, not the
                # session — the same per-item policy as parse and meta
                # errors above.
                print(f"error: batch failed: {exc}", file=sys.stderr)
                batch.clear()
                return
            elapsed = time.perf_counter() - start
            for (text, _), (result, stats) in zip(batch, pairs):
                print(f"== {stats.cache_disposition}: {text}")
                print(result.to_text())
            if args.stats:
                print(f"[batch of {len(batch)} in {elapsed:.4f}s, "
                      f"jobs={args.jobs}]")
            batch.clear()

        for text in pending:
            try:
                parsed = parse_statement(text)
            except ReproError as exc:
                print(f"error: {text}: {format_error(exc)}",
                      file=sys.stderr)
                continue
            if isinstance(parsed, (ParsedCreateView, ParsedDropView)):
                # DDL is a barrier: queries batched before it run
                # first, queries after it see its effect.
                run_batch()
                try:
                    run_ddl(text, parsed)
                except ReproError as exc:
                    print(f"error: {text}: {format_error(exc)}",
                          file=sys.stderr)
                continue
            try:
                batch.append((text, bind(text)))
            except ReproError as exc:
                print(f"error: {text}: {format_error(exc)}",
                      file=sys.stderr)
        run_batch()

    keep_going = True
    for raw in sys.stdin:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("."):
            statements.drain()
            flush()
            try:
                if not run_meta(line):
                    keep_going = False
                    break
            except ReproError as exc:
                # A bad meta argument (e.g. `.explain <bogus query>`)
                # must not kill the rest of the piped session.
                print(f"error: {line}: {format_error(exc)}",
                      file=sys.stderr)
        else:
            statements.feed(line)
    if keep_going:
        statements.drain()
        flush()
    return 0


def _serve_http(args) -> int:
    """``serve --http HOST:PORT``: the asyncio HTTP frontend.

    Tables load lazily under each query's FROM name (same policy as
    the stdin path); when the input is a sharded table directory,
    ``POST /ingest`` appends CSV batches as new shards and refreshes
    the registration (version token moves, caches invalidate exactly).
    SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight
    requests, flush the final stats line.
    """
    import threading
    from pathlib import Path

    from repro.service.http import AdmissionConfig, HttpCohortServer
    from repro.storage import MANIFEST_NAME

    host, _, port_text = args.http.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"error: --http expects HOST:PORT, got {args.http!r}",
              file=sys.stderr)
        return 1
    engine = CohanaEngine()
    service = QueryService(engine, enabled=args.cache,
                           executor=args.executor)
    origin = parse_timestamp(args.origin) if args.origin else 0
    parse_kw = dict(age_unit=args.age_unit, time_bin_origin=origin)
    bind_lock = threading.Lock()

    def bind_table(name: str) -> None:
        """Load the served input under ``name`` on first use (worker
        threads race here; the lock makes the load happen once)."""
        with bind_lock:
            if name not in engine.tables():
                engine.load_table(name, args.input)

    directory = Path(args.input)
    sharded = (directory / MANIFEST_NAME).is_file()
    server = HttpCohortServer(
        service,
        host=host, port=int(port_text),
        admission=AdmissionConfig(
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            tenant_quota=args.tenant_quota,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            timeout_seconds=args.timeout),
        bind_table=bind_table,
        ingest_dir=directory if sharded else None,
        csv_schema=game_schema() if sharded else None,
        parse_kw=parse_kw,
        scan_mode=args.scan_mode)
    server.run()
    return 0


def _view_cmd(args) -> int:
    """The ``view`` subcommands over a table's persisted views."""
    from pathlib import Path

    from repro.views import VIEWS_DIRNAME, DiskViewStore

    engine = CohanaEngine()

    def attach_table() -> bool:
        """Load the input under its persisted views' table name; the
        engine re-attaches every stored definition during load."""
        store = DiskViewStore(Path(args.input) / VIEWS_DIRNAME)
        definitions = store.load_definitions()
        if not definitions:
            print(f"error: no persisted views under {args.input}",
                  file=sys.stderr)
            return False
        engine.load_table(definitions[0]["table"], args.input)
        return True

    if args.view_command == "create":
        parsed = parse_statement(args.text)
        if not isinstance(parsed, ParsedCreateView):
            print("error: expected a CREATE MATERIALIZED VIEW "
                  "statement", file=sys.stderr)
            return 1
        engine.load_table(parsed.query.table, args.input)
        origin = parse_timestamp(args.origin) if args.origin else 0
        view = engine.execute_statement(args.text,
                                        age_unit=args.age_unit,
                                        time_bin_origin=origin)
        status = engine.view_status(view.name)
        print(f"created view {view.name} over {view.table}: "
              f"{status['shards_cached']}/{status['shards_total']} "
              f"shard partials cached")
        return 0
    if args.view_command == "list":
        if not attach_table():
            return 1
        for name in engine.views():
            s = engine.view_status(name)
            print(f"{s['name']}: table={s['table']} "
                  f"shards={s['shards_cached']}/{s['shards_total']} "
                  f"fingerprint={s['fingerprint'][:12]}")
        return 0
    if args.view_command == "refresh":
        if not attach_table():
            return 1
        for name in (args.names or engine.views()):
            stats = engine.refresh_view(name)
            print(f"{name}: scanned {stats.shards_scanned} of "
                  f"{stats.shards_total} shards")
        return 0
    if args.view_command == "drop":
        if not attach_table():
            return 1
        engine.drop_view(args.name)
        print(f"dropped view {args.name}")
        return 0
    if args.view_command == "serve":
        if not attach_table():
            return 1
        start = time.perf_counter()
        result, stats = engine.serve_view(args.name)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        if args.pivot:
            print()
            print(result.pivot().to_text())
        if args.stats:
            print(f"[shards {stats.shards_scanned}/"
                  f"{stats.shards_total} {elapsed:.4f}s]")
        return 0
    raise AssertionError(
        f"unhandled view command {args.view_command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
