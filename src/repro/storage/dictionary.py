"""Two-level dictionary encoding for string columns (Section 4.1).

Level one is a *global dictionary*: the sorted distinct values of the
column across the whole table; a value's *global id* is its position.
Because the dictionary is sorted, global-id order equals lexicographic
order, so range predicates on strings can be evaluated on ids.

Level two is a per-chunk *chunk dictionary*: the sorted global ids of the
values present in that chunk; a value's *chunk id* is the position of its
global id in the chunk dictionary. The column segment is stored as
bit-packed chunk ids, which need only ``ceil(log2(|chunk dict|))`` bits.

The chunk dictionary doubles as a pruning index: a binary search tells in
O(log n) whether a chunk contains a given global id at all — the paper uses
this to skip chunks in which no user performs the birth action.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError
from repro.storage.bitpack import PackedArray, bits_needed, pack


@dataclass(frozen=True)
class GlobalDictionary:
    """Sorted distinct string values; position == global id."""

    values: tuple[str, ...]

    def __post_init__(self):
        vals = tuple(self.values)
        if list(vals) != sorted(set(vals)):
            raise EncodingError("global dictionary must be sorted & unique")
        object.__setattr__(self, "values", vals)

    @classmethod
    def from_column(cls, column) -> "GlobalDictionary":
        """Build from any iterable of strings."""
        return cls(tuple(sorted(set(column))))

    def __len__(self) -> int:
        return len(self.values)

    def global_id(self, value: str) -> int | None:
        """The global id of ``value``, or None if absent."""
        pos = bisect.bisect_left(self.values, value)
        if pos < len(self.values) and self.values[pos] == value:
            return pos
        return None

    def value(self, global_id: int) -> str:
        """The string for ``global_id``."""
        return self.values[global_id]

    def encode(self, column) -> np.ndarray:
        """Map strings to global ids (vectorized via a lookup dict)."""
        mapping = {v: i for i, v in enumerate(self.values)}
        try:
            return np.fromiter((mapping[v] for v in column),
                               dtype=np.int64, count=len(column))
        except KeyError as exc:
            raise EncodingError(
                f"value {exc.args[0]!r} not in global dictionary") from None

    def decode(self, global_ids: np.ndarray) -> np.ndarray:
        """Map global ids back to strings (object array)."""
        lookup = np.asarray(self.values, dtype=object)
        return lookup[np.asarray(global_ids, dtype=np.int64)]

    @property
    def nbytes(self) -> int:
        """Approximate serialized size (UTF-8 bytes + separators)."""
        return sum(len(v.encode("utf-8")) + 1 for v in self.values)


@dataclass(frozen=True)
class DictEncodedColumn:
    """One chunk's segment of a string column.

    Attributes:
        chunk_dict: packed sorted global ids present in this chunk.
        chunk_ids: packed per-row chunk ids.
    """

    chunk_dict: PackedArray
    chunk_ids: PackedArray

    @property
    def nbytes(self) -> int:
        """Compressed size: chunk dictionary + packed ids."""
        return self.chunk_dict.nbytes + self.chunk_ids.nbytes

    @property
    def cardinality(self) -> int:
        """Distinct values in this chunk."""
        return len(self.chunk_dict)

    def global_ids(self) -> np.ndarray:
        """The chunk dictionary (sorted global ids), unpacked once.

        Pruning probes and every scan of the segment need this array, so
        the bit-unpack is cached on the (frozen) segment itself instead of
        per-query executor state. ``object.__setattr__`` is race-safe here
        because the unpack is deterministic. Callers must treat the
        returned array as read-only.
        """
        cached = getattr(self, "_global_ids", None)
        if cached is None:
            cached = self.chunk_dict.unpack()
            object.__setattr__(self, "_global_ids", cached)
        return cached

    def contains_global_id(self, global_id: int) -> bool:
        """Binary-search the chunk dictionary (the pruning check)."""
        gids = self.global_ids()
        pos = int(np.searchsorted(gids, global_id))
        return pos < gids.size and int(gids[pos]) == global_id

    def contains_any_global_id(self, global_ids) -> bool:
        """Is *any* of ``global_ids`` present in this chunk?

        Vectorized membership over the chunk dictionary — the pruning
        check for equality/IN predicates: ``False`` proves no tuple of
        the chunk can match any of the listed values.
        """
        gids = self.global_ids()
        if gids.size == 0:
            return False
        probes = np.asarray(list(global_ids), dtype=np.int64)
        if probes.size == 0:
            return False
        pos = np.searchsorted(gids, probes)
        inside = pos < gids.size
        return bool(np.any(gids[pos[inside]] == probes[inside]))

    def decode_to_global_ids(self) -> np.ndarray:
        """Per-row global ids for the whole segment (vectorized)."""
        return self.global_ids()[self.chunk_ids.unpack()]

    def global_id_at(self, position: int) -> int:
        """Random access: the global id of the value at ``position``."""
        return self.chunk_dict.get(self.chunk_ids.get(position))

    def __len__(self) -> int:
        return len(self.chunk_ids)


def encode_chunk_strings(global_ids: np.ndarray) -> DictEncodedColumn:
    """Encode one chunk's segment, given per-row *global* ids."""
    arr = np.asarray(global_ids, dtype=np.int64)
    if arr.size == 0:
        empty = pack([], bit_width=1)
        return DictEncodedColumn(chunk_dict=empty, chunk_ids=empty)
    distinct = np.unique(arr)
    chunk_ids = np.searchsorted(distinct, arr)
    id_bits = bits_needed(int(distinct.size - 1))
    return DictEncodedColumn(
        chunk_dict=pack(distinct),
        chunk_ids=pack(chunk_ids, bit_width=id_bits),
    )
