"""Compressing activity tables into the COHANA storage format.

The writer implements Section 4.1 end to end: sort by primary key, build
the global (table-level) dictionaries and ranges, partition horizontally on
user boundaries, and encode each chunk's columns. Every chunk also gets a
per-column :class:`~repro.storage.zonemap.ZoneMap` (coded-domain min/max,
distinct count, null count), persisted by the version-2 file format and
consulted by the scheduler's pruning step before any decode.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.schema import ColumnRole, LogicalType
from repro.storage.chunk import Chunk
from repro.storage.delta import GlobalRange, encode_chunk_integers
from repro.storage.dictionary import GlobalDictionary, encode_chunk_strings
from repro.storage.raw import RawFloatColumn
from repro.storage.reader import CompressedActivityTable
from repro.storage.rle import encode_users
from repro.storage.zonemap import build_zone_maps
from repro.table import ActivityTable

#: Default target tuples per chunk — the paper's choice of 256K rows,
#: scaled down is often preferable for the small synthetic datasets; the
#: benchmarks sweep this explicitly (Figures 6 and 7).
DEFAULT_CHUNK_ROWS = 256 * 1024


def compress(table: ActivityTable,
             target_chunk_rows: int = DEFAULT_CHUNK_ROWS,
             assume_sorted: bool = False) -> CompressedActivityTable:
    """Compress ``table`` into the chunked columnar format.

    Args:
        table: the activity table to persist.
        target_chunk_rows: soft upper bound on tuples per chunk; chunks
            close at the first user boundary at or past this size, so a
            user's tuples never span chunks.
        assume_sorted: skip the primary-key sort when the caller knows the
            table is already in (Au, At, Ae) order.

    Raises:
        StorageError: if ``target_chunk_rows`` is not positive.
    """
    if target_chunk_rows <= 0:
        raise StorageError(
            f"target_chunk_rows must be positive, got {target_chunk_rows}")
    if not assume_sorted:
        table = table.sorted_by_primary_key()
    schema = table.schema

    global_dicts: dict[str, GlobalDictionary] = {}
    global_ranges: dict[str, GlobalRange] = {}
    encoded: dict[str, np.ndarray] = {}
    for spec in schema:
        column = table.column(spec.name)
        if spec.ltype is LogicalType.STRING:
            gdict = GlobalDictionary.from_column(column.tolist())
            global_dicts[spec.name] = gdict
            encoded[spec.name] = gdict.encode(column.tolist())
        elif spec.ltype.is_integer_like:
            global_ranges[spec.name] = GlobalRange.from_column(column)
            encoded[spec.name] = np.asarray(column, dtype=np.int64)
        else:
            encoded[spec.name] = np.asarray(column, dtype=np.float64)

    chunks = [
        _encode_chunk(schema, encoded, index, start, stop)
        for index, (start, stop)
        in enumerate(_chunk_boundaries(table, target_chunk_rows))
    ]
    return CompressedActivityTable(
        schema=schema,
        global_dicts=global_dicts,
        global_ranges=global_ranges,
        chunks=chunks,
        target_chunk_rows=target_chunk_rows,
    )


def _chunk_boundaries(table: ActivityTable,
                      target_chunk_rows: int) -> list[tuple[int, int]]:
    """Split row range on user boundaries near the target chunk size."""
    boundaries: list[tuple[int, int]] = []
    chunk_start = None
    for _, start, stop in table.user_blocks():
        if chunk_start is None:
            chunk_start = start
        if stop - chunk_start >= target_chunk_rows:
            boundaries.append((chunk_start, stop))
            chunk_start = None
    if chunk_start is not None:
        boundaries.append((chunk_start, len(table)))
    return boundaries


def _encode_chunk(schema, encoded: dict[str, np.ndarray], index: int,
                  start: int, stop: int) -> Chunk:
    user_name = schema.user.name
    columns = {}
    for spec in schema:
        if spec.role is ColumnRole.USER:
            continue
        segment = encoded[spec.name][start:stop]
        if spec.ltype is LogicalType.STRING:
            columns[spec.name] = encode_chunk_strings(segment)
        elif spec.ltype.is_integer_like:
            columns[spec.name] = encode_chunk_integers(segment)
        else:
            columns[spec.name] = RawFloatColumn.encode(segment)
    return Chunk(
        index=index,
        n_rows=stop - start,
        users=encode_users(encoded[user_name][start:stop]),
        columns=columns,
        zone_maps=build_zone_maps(columns),
    )
