"""Data chunks: the unit of storage, scanning and pruning (Section 4.1).

The activity table is horizontally partitioned so that **all tuples of a
user land in exactly one chunk** — the invariant behind the per-chunk
``UserCount()`` optimization (Section 4.5) and per-chunk parallel merging.
Within a chunk, data is stored column by column:

* the user column as RLE triples (:mod:`repro.storage.rle`),
* string columns dictionary encoded (:mod:`repro.storage.dictionary`),
* integer columns delta encoded (:mod:`repro.storage.delta`),
* float columns raw (:mod:`repro.storage.raw`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import StorageError
from repro.schema import ActivitySchema, ColumnRole, LogicalType
from repro.storage.delta import DeltaEncodedColumn
from repro.storage.dictionary import DictEncodedColumn
from repro.storage.raw import RawFloatColumn
from repro.storage.rle import RleColumn
from repro.storage.zonemap import ZoneMap

#: Any encoded non-user column segment.
EncodedColumn = DictEncodedColumn | DeltaEncodedColumn | RawFloatColumn


@dataclass(frozen=True)
class Chunk:
    """One horizontal partition of a compressed activity table.

    Attributes:
        index: position of this chunk in the table.
        n_rows: tuples stored.
        users: RLE-encoded user column.
        columns: encoded segments for every non-user column, keyed by name.
        zone_maps: persisted per-column zone maps (empty for chunks read
            from version-1 files, which predate zone maps).
    """

    index: int
    n_rows: int
    users: RleColumn
    columns: dict[str, EncodedColumn]
    zone_maps: dict[str, ZoneMap] = field(default_factory=dict)

    def __post_init__(self):
        if self.users.n_rows != self.n_rows:
            raise StorageError(
                f"chunk {self.index}: user column covers "
                f"{self.users.n_rows} rows, expected {self.n_rows}")
        for name, col in self.columns.items():
            if len(col) != self.n_rows:
                raise StorageError(
                    f"chunk {self.index}: column {name!r} has {len(col)} "
                    f"rows, expected {self.n_rows}")
        for name in self.zone_maps:
            if name not in self.columns:
                raise StorageError(
                    f"chunk {self.index}: zone map for unknown "
                    f"column {name!r}")

    @property
    def has_zone_maps(self) -> bool:
        """True when this chunk carries persisted zone maps."""
        return bool(self.zone_maps)

    def zone_map(self, name: str) -> ZoneMap | None:
        """The persisted zone map for ``name``, or None when the chunk
        was read from a pre-zone-map (version-1) file."""
        return self.zone_maps.get(name)

    @property
    def n_users(self) -> int:
        """Distinct users in this chunk."""
        return self.users.n_users

    @property
    def nbytes(self) -> int:
        """Compressed size of all segments."""
        return self.users.nbytes + sum(c.nbytes for c in self.columns.values())

    # -- decoding -----------------------------------------------------------

    def column(self, name: str) -> EncodedColumn:
        """The encoded segment for ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise StorageError(f"chunk {self.index}: no column {name!r}; "
                               f"have {sorted(self.columns)}") from None

    def decode_codes(self, name: str) -> np.ndarray:
        """Decode ``name`` to per-row *codes*.

        For string columns this returns global dictionary ids (comparisons
        and group-bys run on these without materializing strings); for
        integer columns, the actual int64 values; for float columns, the
        raw float64 values.
        """
        col = self.column(name)
        if isinstance(col, DictEncodedColumn):
            return col.decode_to_global_ids()
        return col.decode()

    def user_global_ids(self) -> np.ndarray:
        """Per-row global user ids (vectorized RLE expansion)."""
        return self.users.expand()


def encoded_column_kind(schema: ActivitySchema, name: str) -> str:
    """Which encoder a column uses: 'dict', 'delta' or 'raw'.

    The user column is handled separately (RLE) and is not valid here.
    """
    spec = schema.column(name)
    if spec.role is ColumnRole.USER:
        raise StorageError("user column is RLE encoded, not a chunk column")
    if spec.ltype is LogicalType.STRING:
        return "dict"
    if spec.ltype.is_integer_like:
        return "delta"
    return "raw"
