"""Run-length encoding for the user column (Section 4.1).

The user column of a sorted activity table is a sequence of runs — all of
a user's tuples are adjacent (the clustering property). The paper stores it
as triples ``(u, f, n)``: the user, the position of its first tuple, and
its tuple count. The modified TableScan walks these triples directly, which
is what makes ``GetNextUser()`` / ``SkipCurUser()`` O(1).

Here ``u`` is the user's *global dictionary id* (users, like all strings,
are dictionary encoded); the triple arrays themselves are bit-packed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError
from repro.storage.bitpack import PackedArray, pack


@dataclass(frozen=True)
class RleColumn:
    """RLE triples for one chunk's user column.

    Attributes:
        user_ids: packed global ids, one per run.
        starts: packed first-tuple positions, one per run.
        counts: packed run lengths, one per run.
        n_rows: total tuples covered.
    """

    user_ids: PackedArray
    starts: PackedArray
    counts: PackedArray
    n_rows: int

    @property
    def n_users(self) -> int:
        """Number of runs (== distinct users in the chunk)."""
        return len(self.user_ids)

    @property
    def nbytes(self) -> int:
        """Compressed size of the three packed triple arrays."""
        return self.user_ids.nbytes + self.starts.nbytes + self.counts.nbytes

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(user_ids, starts, counts)`` unpacked once per column.

        The bit-unpack is the fixed per-chunk cost every scan pays before
        touching a single tuple, so the result is cached on the (frozen)
        column itself rather than in per-query executor state. Storing via
        ``object.__setattr__`` is safe: the computation is deterministic, so
        a racing thread at worst recomputes the same arrays. Callers must
        treat the returned arrays as read-only.
        """
        cached = getattr(self, "_arrays", None)
        if cached is None:
            cached = (self.user_ids.unpack(), self.starts.unpack(),
                      self.counts.unpack())
            object.__setattr__(self, "_arrays", cached)
        return cached

    def triples(self) -> list[tuple[int, int, int]]:
        """All ``(u, f, n)`` triples, decoded."""
        ids, starts, counts = self.arrays()
        return list(zip(ids.tolist(), starts.tolist(), counts.tolist()))

    def triple(self, run: int) -> tuple[int, int, int]:
        """The ``(u, f, n)`` triple of run ``run``."""
        return (self.user_ids.get(run), self.starts.get(run),
                self.counts.get(run))

    def expand(self) -> np.ndarray:
        """Decode to one global user id per row (vectorized)."""
        ids, _starts, counts = self.arrays()
        return np.repeat(ids, counts)


def encode_users(global_ids: np.ndarray | list) -> RleColumn:
    """RLE-encode a chunk's user column given per-row global ids.

    The input must be clustered (equal ids adjacent); the writer guarantees
    this because the table is sorted by primary key.

    Raises:
        EncodingError: if the same id appears in two non-adjacent runs,
            which would violate the clustering property.
    """
    arr = np.asarray(global_ids, dtype=np.int64)
    if arr.size == 0:
        empty = pack([], bit_width=1)
        return RleColumn(empty, empty, empty, n_rows=0)
    boundaries = np.flatnonzero(np.diff(arr) != 0) + 1
    starts = np.concatenate([[0], boundaries]).astype(np.int64)
    stops = np.concatenate([boundaries, [arr.size]]).astype(np.int64)
    run_ids = arr[starts]
    if len(set(run_ids.tolist())) != run_ids.size:
        raise EncodingError(
            "user column is not clustered: a user id appears in two "
            "separate runs")
    return RleColumn(
        user_ids=pack(run_ids),
        starts=pack(starts),
        counts=pack(stops - starts),
        n_rows=int(arr.size),
    )
