"""Uncompressed float column segments.

The paper's dataset only has integer measures, but the library accepts
FLOAT measures (e.g. pre-computed rates); those are stored as raw float64
with per-chunk MIN/MAX for pruning parity with the delta encoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RawFloatColumn:
    """One chunk's segment of a float column, stored uncompressed."""

    values: np.ndarray
    min_value: float
    max_value: float

    @classmethod
    def encode(cls, values) -> "RawFloatColumn":
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return cls(arr, 0.0, 0.0)
        return cls(arr, float(arr.min()), float(arr.max()))

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes) + 16

    def overlaps(self, low: float | None, high: float | None) -> bool:
        """Pruning check analogous to the delta encoder's."""
        if self.values.size == 0:
            return False
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value > high:
            return False
        return True

    def decode(self) -> np.ndarray:
        return self.values

    def value_at(self, position: int) -> float:
        return float(self.values[position])

    def __len__(self) -> int:
        return int(self.values.size)
