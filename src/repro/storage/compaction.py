"""Shard compaction, retention, and garbage collection.

Append-only ingestion (:mod:`repro.storage.sharded`) wins O(new-data)
writes but accumulates small shards forever, and a many-shard table
pays per-shard planning, verification, and mmap overhead on every
query. The **compactor** here merges small shards back into one large
v4 file; **retention** drops whole shards whose time range has aged
out; the **garbage collector** deletes shard files no manifest — and
no live reader — references anymore.

All three follow one publish discipline, the generation scheme the
manifest carries:

1. new shard files are written next to the old ones (exclusive
   create + fsync) — never in place;
2. the new manifest, with ``generation`` bumped by one, is published
   via :func:`repro.storage.sharded.publish_manifest` — fsynced temp
   file, a single atomic ``os.replace``, directory fsync;
3. superseded shard files are unlinked only by the GC, which skips
   files pinned by live readers (:func:`pinned_shard_files`).

A crash at any instant therefore leaves the directory loadable at
exactly the *previous* generation: the old manifest is untouched until
the one ``os.replace``, and files it references are never deleted
before the replace lands. The fault-injection suite
(``tests/test_crash_consistency.py``) kills the process at every
:func:`crash_point` to hold the publish path to that contract.

Compaction changes every physical byte it touches — shard digests,
composed table digest — but not the table's *rows*, so the manifest's
per-shard logical digests combine to the same table-wide logical
digest before and after. The engine keys its version token on that
logical digest, which is how service result caches survive a
compaction while per-shard plan caches and view partials (keyed on
physical shard digests) re-key and recompute.

In-process writers (appender, compactor, retention, GC) serialize on
:func:`repro.storage.sharded.publish_lock`; run one compactor per
table across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import StorageError
from repro.storage.sharded import (
    _SHARD_PATTERN,
    MANIFEST_NAME,
    _fsync_file,
    crash_point,
    load_sharded,
    logical_digest_of,
    pinned_shard_files,
    publish_lock,
    publish_manifest,
    read_manifest,
    shard_entry,
)
from repro.storage.writer import compress


@dataclass(frozen=True)
class CompactionResult:
    """What one :func:`compact` call did."""

    directory: str
    #: Manifest generation after the call (unchanged on a no-op).
    generation: int
    #: Shard file names merged away (empty on a no-op).
    merged: tuple[str, ...]
    #: The replacement shard's file name, or ``None`` on a no-op.
    new_shard: str | None
    #: Rows in the replacement shard.
    n_rows: int
    #: Files the post-publish GC unlinked (old shards stay on disk
    #: while pinned; a later :func:`gc_shards` reaps them).
    gc_removed: tuple[str, ...]

    @property
    def compacted(self) -> bool:
        return self.new_shard is not None


@dataclass(frozen=True)
class RetentionResult:
    """What one :func:`prune_retention` call did."""

    directory: str
    generation: int
    #: Shard file names dropped from the manifest.
    removed: tuple[str, ...]
    #: Shards still in the manifest after pruning.
    kept: int
    gc_removed: tuple[str, ...]

    @property
    def pruned(self) -> bool:
        return bool(self.removed)


def select_small_shards(entries: list[dict],
                        small_rows: int | None) -> list[int]:
    """Indices of the manifest entries one compaction would merge:
    every shard at or under the row threshold (all shards when
    ``small_rows`` is None). Fewer than two candidates means there is
    nothing to merge."""
    if small_rows is None:
        return list(range(len(entries)))
    return [i for i, entry in enumerate(entries)
            if entry["n_rows"] <= small_rows]


def compact(directory: str | Path, *, small_rows: int | None = None,
            target_chunk_rows: int | None = None,
            gc: bool = True) -> CompactionResult:
    """Merge small shards of the table at ``directory`` into one.

    Decompresses the selected shards (all of them, or only those at or
    under ``small_rows`` rows), re-compresses the union as a single new
    shard file, and publishes a manifest at ``generation + 1`` listing
    the survivors plus the merged shard. Readers that opened the table
    before the publish keep their pinned generation's files; with
    ``gc=True`` the unpinned leftovers are unlinked afterwards.

    The merged shard's logical digest is recomputed from its decoded
    rows, so the table-wide logical digest provably survives the
    rewrite (and pre-logical manifest entries get backfilled on their
    way through a compaction).

    Returns a no-op :class:`CompactionResult` when fewer than two
    shards qualify.
    """
    from repro.storage.format import serialize

    directory = Path(directory)
    with publish_lock(directory):
        if gc:
            # Reap leftovers of a previously crashed publish first, so
            # the shard name this run allocates is free again.
            gc_shards(directory)
        table = load_sharded(directory)
        try:
            manifest = table.manifest
            entries = manifest["shards"]
            picked = select_small_shards(entries, small_rows)
            if len(picked) < 2:
                return CompactionResult(
                    directory=str(directory),
                    generation=manifest["generation"],
                    merged=(), new_shard=None, n_rows=0,
                    gc_removed=())
            merged = table.shards[picked[0]].decompress()
            for i in picked[1:]:
                merged = merged.concat(table.shards[i].decompress())
            merged = merged.sorted_by_primary_key()
            chunk_rows = (target_chunk_rows
                          or manifest["target_chunk_rows"])
            compressed = compress(merged, target_chunk_rows=chunk_rows,
                                  assume_sorted=True)
            data = serialize(compressed)
            next_index = manifest["next_shard_index"]
            shard_name = _SHARD_PATTERN.format(next_index)
            shard_path = directory / shard_name
            try:
                with open(shard_path, "xb") as f:
                    f.write(data)
                    _fsync_file(f)
            except FileExistsError:
                raise StorageError(
                    f"orphan shard file in the way: {shard_path} "
                    f"(leftover of a crashed publish) — run gc_shards "
                    f"first or retry with gc=True") from None
            crash_point("shard_written", shard_path)
            new_entry = shard_entry(compressed, data, shard_name,
                                    logical_digest_of(merged))
            picked_set = set(picked)
            survivors = [entry for i, entry in enumerate(entries)
                         if i not in picked_set]
            new_manifest = dict(manifest)
            new_manifest["shards"] = survivors + [new_entry]
            new_manifest["next_shard_index"] = next_index + 1
            new_manifest["generation"] = manifest["generation"] + 1
            publish_manifest(directory, new_manifest)
            merged_names = tuple(entries[i]["path"] for i in picked)
            generation = new_manifest["generation"]
        finally:
            # The compactor's own snapshot must unpin before GC, or it
            # would shield the very files it just superseded.
            table.release()
        removed = tuple(gc_shards(directory)) if gc else ()
    return CompactionResult(
        directory=str(directory), generation=generation,
        merged=merged_names, new_shard=shard_name,
        n_rows=compressed.n_rows, gc_removed=removed)


def prune_retention(directory: str | Path, *, older_than: int,
                    gc: bool = True) -> RetentionResult:
    """Drop whole shards whose entire time range predates
    ``older_than`` (exclusive: a shard survives if any of its tuples
    is at or after the cutoff).

    Retention is shard-granular by design: dropping a whole shard
    cannot split a user across shards (the append invariant holds for
    the survivors) and costs O(1) per shard — no rewrite. Shards
    written before time ranges were recorded fall back to the time
    range in their own header.

    Raises:
        StorageError: when the cutoff would remove every shard —
            an empty manifest is unloadable; delete the directory
            instead if that is really intended.
    """
    directory = Path(directory)
    with publish_lock(directory):
        table = load_sharded(directory)
        try:
            manifest = table.manifest
            time_col = table.schema.time.name
            dropped, kept = [], []
            for shard, entry in zip(table.shards, manifest["shards"]):
                rng = entry.get("time_range")
                if rng is None:
                    grange = shard.global_ranges.get(time_col)
                    if grange is not None:
                        rng = [grange.min_value, grange.max_value]
                if rng is not None and rng[1] < older_than:
                    dropped.append(entry)
                else:
                    kept.append(entry)
            if not dropped:
                return RetentionResult(
                    directory=str(directory),
                    generation=manifest["generation"],
                    removed=(), kept=len(kept), gc_removed=())
            if not kept:
                raise StorageError(
                    f"retention cutoff {older_than} would remove every "
                    f"shard of {directory}; refusing to empty the "
                    f"table — delete the directory to drop it")
            new_manifest = dict(manifest)
            new_manifest["shards"] = kept
            new_manifest["generation"] = manifest["generation"] + 1
            publish_manifest(directory, new_manifest)
            generation = new_manifest["generation"]
        finally:
            table.release()
        removed = tuple(gc_shards(directory)) if gc else ()
    return RetentionResult(
        directory=str(directory), generation=generation,
        removed=tuple(entry["path"] for entry in dropped),
        kept=len(kept), gc_removed=removed)


def gc_shards(directory: str | Path) -> list[str]:
    """Unlink shard files no longer referenced and not pinned.

    A file is garbage when it is absent from the *current* manifest's
    shard list and no live in-process reader has it pinned. Stray
    ``MANIFEST.json.tmp`` files (a publish that crashed before its
    ``os.replace``) are reaped too. Returns the deleted file names.

    Safe under concurrent readers: a reader that opened before the
    last publish holds pins, so its files survive; on POSIX even a
    just-unpinned mmap keeps already-open files readable. Runs under
    the table's publish lock so an in-flight publish's freshly written
    shard is never mistaken for garbage.
    """
    directory = Path(directory)
    removed: list[str] = []
    with publish_lock(directory):
        manifest = read_manifest(directory)
        live = {entry["path"] for entry in manifest["shards"]}
        pinned = pinned_shard_files(directory)
        for path in sorted(directory.glob("shard-*.cohana")):
            if path.name in live or path.name in pinned:
                continue
            path.unlink()
            removed.append(path.name)
        tmp = directory / (MANIFEST_NAME + ".tmp")
        if tmp.exists():
            tmp.unlink()
            removed.append(tmp.name)
    return removed
