"""Two-level delta encoding for integer columns (Section 4.1).

Level one records the global MIN/MAX of the column over the whole table;
level two records per-chunk MIN/MAX and stores each value as the delta
from the chunk MIN, bit-packed with just enough bits for
``chunk_max - chunk_min``.

The chunk range doubles as a pruning index: a chunk whose ``[min, max]``
does not intersect a predicate's range cannot contain qualifying tuples —
the paper uses this to skip chunks for time predicates in birth/age
selections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.bitpack import PackedArray, bits_needed, pack


@dataclass(frozen=True)
class GlobalRange:
    """Whole-table MIN/MAX for an integer column."""

    min_value: int
    max_value: int

    @classmethod
    def from_column(cls, column) -> "GlobalRange":
        arr = np.asarray(column, dtype=np.int64)
        if arr.size == 0:
            return cls(0, 0)
        return cls(int(arr.min()), int(arr.max()))

    def merge(self, other: "GlobalRange") -> "GlobalRange":
        """The range covering both operands."""
        return GlobalRange(min(self.min_value, other.min_value),
                           max(self.max_value, other.max_value))


@dataclass(frozen=True)
class DeltaEncodedColumn:
    """One chunk's segment of an integer column.

    Attributes:
        min_value: chunk MIN (the delta base).
        max_value: chunk MAX.
        deltas: packed ``value - min_value`` per row.
    """

    min_value: int
    max_value: int
    deltas: PackedArray

    @property
    def nbytes(self) -> int:
        """Compressed size of the packed deltas (+16B of range metadata)."""
        return self.deltas.nbytes + 16

    def overlaps(self, low: int | None, high: int | None) -> bool:
        """Pruning check: could any value fall inside ``[low, high]``?

        ``None`` bounds are unbounded. An empty segment never overlaps.
        """
        if len(self.deltas) == 0:
            return False
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value > high:
            return False
        return True

    def decode(self) -> np.ndarray:
        """All values of the segment (vectorized)."""
        return self.deltas.unpack() + self.min_value

    def value_at(self, position: int) -> int:
        """Random access: decode only the value at ``position``."""
        return self.deltas.get(position) + self.min_value

    def decode_range(self, start: int, stop: int) -> np.ndarray:
        """Decode values in ``[start, stop)``."""
        return self.deltas.get_range(start, stop) + self.min_value

    def __len__(self) -> int:
        return len(self.deltas)


def encode_chunk_integers(values: np.ndarray) -> DeltaEncodedColumn:
    """Delta-encode one chunk's integer segment."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.size == 0:
        return DeltaEncodedColumn(0, 0, pack([], bit_width=1))
    lo = int(arr.min())
    hi = int(arr.max())
    width = bits_needed(hi - lo)
    return DeltaEncodedColumn(
        min_value=lo,
        max_value=hi,
        deltas=pack(arr - lo, bit_width=width),
    )
