"""Binary (de)serialization of compressed activity tables.

A ``.cohana`` file is a self-describing little-endian container::

    magic "COHANA01" | version u16
    content digest      (32-byte SHA-256 of everything after this
                         field [version >= 4])
    schema           (column name / type / role triples)
    target_chunk_rows u64
    global dictionaries (per string column)
    global ranges       (per integer column)
    n_chunks u32
    chunks              (n_rows, RLE user column, encoded segments,
                         zone maps [version >= 2])
    chunk index         (offset u64, length u64 per chunk [version >= 3])
    index offset u64    (position of the chunk index [version >= 3])

Version history:

* **1** — the original layout; chunks carry only their encoded segments.
* **2** — each chunk is followed by its per-column zone maps
  (coded-domain min/max, distinct count, null count; see
  :mod:`repro.storage.zonemap`). The scheduler uses these to skip chunks
  without decoding anything.
* **3** — the file ends with a per-chunk byte-offset index (and the
  index's own offset in the trailing 8 bytes), making the format
  memory-mappable: :func:`load` mmaps a version-3 file and returns a
  lazy table whose chunks deserialize on first touch
  (:class:`~repro.storage.reader.LazyChunkList`). The chunk payload
  bytes are identical to version 2; only the index is new.
* **4** — the header carries a SHA-256 content digest of the rest of
  the file, stamped at write time. Loading a version-4 file reads the
  table's *version token* from the header without touching the payload
  (critical for lazy/mmap loads); the query service's result cache
  keys on it, so rewriting a file under the same path invalidates every
  cached result derived from the old bytes. The chunk payload bytes are
  identical to versions 2/3; only the header field is new.

:func:`deserialize` reads all four versions: a version-1 file loads
with empty ``Chunk.zone_maps`` (execution falls back to scans without
zone-map pruning), version-1/2 files always load eagerly, and files
older than version 4 get their content digest computed from the raw
bytes at load time instead of read from the header — including
version-3 files on the lazy/mmap path, where the bytes are hashed once
without deserializing any chunk, so lazy loads get the same
``sha256:`` version tokens as eager ones.
:func:`serialize` writes version 4 by default but can still emit
versions 1–3 for compatibility testing and downgrade tooling.

The format favours simplicity and determinism over minimum size; the
compression itself lives in the per-column encoders.
"""

from __future__ import annotations

import hashlib
import mmap
import struct
from pathlib import Path

import numpy as np

from repro.errors import StorageError
from repro.schema import ActivitySchema, ColumnRole, ColumnSpec, LogicalType
from repro.storage.bitpack import PackedArray
from repro.storage.chunk import Chunk, EncodedColumn
from repro.storage.delta import DeltaEncodedColumn, GlobalRange
from repro.storage.dictionary import DictEncodedColumn, GlobalDictionary
from repro.storage.raw import RawFloatColumn
from repro.storage.reader import CompressedActivityTable, LazyChunkList
from repro.storage.rle import RleColumn
from repro.storage.zonemap import ZoneMap

MAGIC = b"COHANA01"
#: Current write version. Version 2 added persisted zone maps; version 3
#: added the chunk byte-offset index that makes files memory-mappable;
#: version 4 stamps a SHA-256 content digest into the header.
VERSION = 4
#: Versions :func:`deserialize` understands.
SUPPORTED_VERSIONS = (1, 2, 3, 4)
#: First version whose files can be mmapped and loaded lazily.
MMAP_VERSION = 3
#: First version whose header carries the content digest.
DIGEST_VERSION = 4
#: Bytes of the header digest field (raw SHA-256).
_DIGEST_BYTES = 32

_KIND_DICT = 0
_KIND_DELTA = 1
_KIND_RAW = 2

_ZONE_INT = 0
_ZONE_FLOAT = 1


class _Writer:
    """Append-only little-endian byte buffer."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def bytes_(self, data: bytes) -> None:
        self._parts.append(data)

    def u8(self, v: int) -> None:
        self._parts.append(struct.pack("<B", v))

    def u16(self, v: int) -> None:
        self._parts.append(struct.pack("<H", v))

    def u32(self, v: int) -> None:
        self._parts.append(struct.pack("<I", v))

    def u64(self, v: int) -> None:
        self._parts.append(struct.pack("<Q", v))

    def i64(self, v: int) -> None:
        self._parts.append(struct.pack("<q", v))

    def f64(self, v: float) -> None:
        self._parts.append(struct.pack("<d", v))

    def lp_str(self, text: str) -> None:
        data = text.encode("utf-8")
        self.u32(len(data))
        self.bytes_(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Sequential little-endian byte reader with bounds checking."""

    def __init__(self, data: bytes | mmap.mmap):
        self._data = data
        self._pos = 0

    def bytes_(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise StorageError("truncated .cohana data")
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return struct.unpack("<B", self.bytes_(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.bytes_(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.bytes_(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.bytes_(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.bytes_(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.bytes_(8))[0]

    def lp_str(self) -> str:
        return self.bytes_(self.u32()).decode("utf-8")

    def at_end(self) -> bool:
        return self._pos == len(self._data)


# -- packed arrays ----------------------------------------------------------

def _write_packed(w: _Writer, packed: PackedArray) -> None:
    w.u8(packed.bit_width)
    w.u64(packed.count)
    w.u64(len(packed.words))
    w.bytes_(packed.words.astype("<u8").tobytes())


def _read_packed(r: _Reader) -> PackedArray:
    bit_width = r.u8()
    count = r.u64()
    n_words = r.u64()
    words = np.frombuffer(r.bytes_(n_words * 8), dtype="<u8").astype(np.uint64)
    return PackedArray(words=words, bit_width=bit_width, count=count)


# -- columns ------------------------------------------------------------------

def _write_column(w: _Writer, col: EncodedColumn) -> None:
    if isinstance(col, DictEncodedColumn):
        w.u8(_KIND_DICT)
        _write_packed(w, col.chunk_dict)
        _write_packed(w, col.chunk_ids)
    elif isinstance(col, DeltaEncodedColumn):
        w.u8(_KIND_DELTA)
        w.i64(col.min_value)
        w.i64(col.max_value)
        _write_packed(w, col.deltas)
    elif isinstance(col, RawFloatColumn):
        w.u8(_KIND_RAW)
        w.u64(len(col))
        w.bytes_(col.values.astype("<f8").tobytes())
    else:  # pragma: no cover - defensive
        raise StorageError(f"unknown column segment type: {type(col)}")


def _read_column(r: _Reader) -> EncodedColumn:
    kind = r.u8()
    if kind == _KIND_DICT:
        chunk_dict = _read_packed(r)
        chunk_ids = _read_packed(r)
        return DictEncodedColumn(chunk_dict=chunk_dict, chunk_ids=chunk_ids)
    if kind == _KIND_DELTA:
        lo = r.i64()
        hi = r.i64()
        deltas = _read_packed(r)
        return DeltaEncodedColumn(min_value=lo, max_value=hi, deltas=deltas)
    if kind == _KIND_RAW:
        n = r.u64()
        values = np.frombuffer(r.bytes_(n * 8), dtype="<f8").astype(np.float64)
        if values.size == 0:
            return RawFloatColumn(values, 0.0, 0.0)
        return RawFloatColumn(values, float(values.min()),
                              float(values.max()))
    raise StorageError(f"unknown column kind byte: {kind}")


# -- zone maps ----------------------------------------------------------------

def _write_zone_map(w: _Writer, zm: ZoneMap) -> None:
    if zm.is_float:
        w.u8(_ZONE_FLOAT)
        w.f64(float(zm.min_value))
        w.f64(float(zm.max_value))
    else:
        w.u8(_ZONE_INT)
        w.i64(int(zm.min_value))
        w.i64(int(zm.max_value))
    w.u64(zm.distinct_count)
    w.u64(zm.null_count)


def _read_zone_map(r: _Reader) -> ZoneMap:
    kind = r.u8()
    if kind == _ZONE_INT:
        lo, hi = r.i64(), r.i64()
    elif kind == _ZONE_FLOAT:
        lo, hi = r.f64(), r.f64()
    else:
        raise StorageError(f"unknown zone-map value kind byte: {kind}")
    distinct = r.u64()
    nulls = r.u64()
    return ZoneMap(lo, hi, distinct, nulls)


# -- chunks -------------------------------------------------------------------

def _write_chunk(w: _Writer, chunk: Chunk, version: int) -> None:
    w.u64(chunk.n_rows)
    _write_packed(w, chunk.users.user_ids)
    _write_packed(w, chunk.users.starts)
    _write_packed(w, chunk.users.counts)
    w.u32(len(chunk.columns))
    for name in sorted(chunk.columns):
        w.lp_str(name)
        _write_column(w, chunk.columns[name])
    if version >= 2:
        w.u32(len(chunk.zone_maps))
        for name in sorted(chunk.zone_maps):
            w.lp_str(name)
            _write_zone_map(w, chunk.zone_maps[name])


def _read_chunk(r: _Reader, index: int, version: int) -> Chunk:
    n_rows = r.u64()
    users = RleColumn(
        user_ids=_read_packed(r),
        starts=_read_packed(r),
        counts=_read_packed(r),
        n_rows=n_rows,
    )
    columns = {}
    for _ in range(r.u32()):
        name = r.lp_str()
        columns[name] = _read_column(r)
    zone_maps: dict[str, ZoneMap] = {}
    if version >= 2:
        for _ in range(r.u32()):
            name = r.lp_str()
            zone_maps[name] = _read_zone_map(r)
    return Chunk(index=index, n_rows=n_rows, users=users,
                 columns=columns, zone_maps=zone_maps)


def _parse_chunk_blob(blob: bytes, index: int, version: int) -> Chunk:
    """Deserialize one indexed chunk payload (the lazy-load entry point).

    The blob must be consumed exactly: leftover bytes mean the index and
    the payload disagree, i.e. a corrupt file.
    """
    r = _Reader(blob)
    chunk = _read_chunk(r, index, version)
    if not r.at_end():
        raise StorageError(f"chunk {index}: trailing bytes after payload")
    return chunk


# -- top level ----------------------------------------------------------------

def serialize(table: CompressedActivityTable,
              version: int = VERSION) -> bytes:
    """Encode a compressed activity table to bytes.

    Args:
        table: the table to encode.
        version: file format version to emit. Defaults to the current
            version; ``version=1`` .. ``version=3`` write the legacy
            layouts (used by compatibility tests and downgrade tooling).

    Raises:
        StorageError: on an unsupported ``version``.
    """
    if version not in SUPPORTED_VERSIONS:
        raise StorageError(f"cannot write .cohana version {version}; "
                           f"supported: {SUPPORTED_VERSIONS}")
    # The prefix (magic + version + digest field) is assembled last: for
    # version >= 4 the digest covers every byte after itself, so the
    # body must exist before the digest can be computed. Chunk-index
    # offsets are absolute, hence they account for the prefix length.
    prefix_len = len(MAGIC) + 2
    if version >= DIGEST_VERSION:
        prefix_len += _DIGEST_BYTES
    w = _Writer()
    w.u32(len(table.schema))
    for spec in table.schema:
        w.lp_str(spec.name)
        w.lp_str(spec.ltype.value)
        w.lp_str(spec.role.value)
    w.u64(table.target_chunk_rows)
    w.u32(len(table.global_dicts))
    for name in sorted(table.global_dicts):
        w.lp_str(name)
        gdict = table.global_dicts[name]
        w.u64(len(gdict))
        for value in gdict.values:
            w.lp_str(value)
    w.u32(len(table.global_ranges))
    for name in sorted(table.global_ranges):
        w.lp_str(name)
        rng = table.global_ranges[name]
        w.i64(rng.min_value)
        w.i64(rng.max_value)
    w.u32(len(table.chunks))
    header = w.getvalue()
    if version < MMAP_VERSION:
        cw = _Writer()
        for chunk in table.chunks:
            _write_chunk(cw, chunk, version)
        body = header + cw.getvalue()
    else:
        # Version >= 3: chunk payloads followed by the (offset, length)
        # index and, in the trailing 8 bytes, the index's own offset.
        blobs: list[bytes] = []
        entries: list[tuple[int, int]] = []
        offset = prefix_len + len(header)
        for chunk in table.chunks:
            cw = _Writer()
            _write_chunk(cw, chunk, version)
            blob = cw.getvalue()
            entries.append((offset, len(blob)))
            offset += len(blob)
            blobs.append(blob)
        fw = _Writer()
        for entry_offset, entry_length in entries:
            fw.u64(entry_offset)
            fw.u64(entry_length)
        fw.u64(offset)  # where the index starts
        body = header + b"".join(blobs) + fw.getvalue()
    pw = _Writer()
    pw.bytes_(MAGIC)
    pw.u16(version)
    if version >= DIGEST_VERSION:
        pw.bytes_(hashlib.sha256(body).digest())
    return pw.getvalue() + body


def _read_chunk_index(data: bytes | mmap.mmap, n_chunks: int,
                      header_end: int) -> list[tuple[int, int]]:
    """Parse and validate the version-3 chunk index.

    The validation is deliberately strict — offsets must tile the byte
    range between the header and the index exactly — so that any
    truncated or spliced file fails here with a clean StorageError
    instead of decoding garbage.
    """
    index_size = 16 * n_chunks + 8
    if len(data) < header_end + index_size:
        raise StorageError("truncated .cohana data (chunk index missing)")
    index_offset = struct.unpack("<Q", data[-8:])[0]
    if index_offset != len(data) - index_size or index_offset < header_end:
        raise StorageError("corrupt .cohana chunk index offset "
                           "(trailing or missing bytes)")
    r = _Reader(data[index_offset:len(data) - 8])
    entries = [(r.u64(), r.u64()) for _ in range(n_chunks)]
    expected = header_end
    for i, (offset, length) in enumerate(entries):
        if offset != expected:
            raise StorageError(f"corrupt .cohana chunk index: chunk {i} "
                               f"at offset {offset}, expected {expected}")
        expected = offset + length
    if expected != index_offset:
        raise StorageError("corrupt .cohana chunk index: payload bytes "
                           "and index disagree")
    return entries


def deserialize(data: bytes | mmap.mmap,
                lazy: bool = False) -> CompressedActivityTable:
    """Decode bytes produced by :func:`serialize`.

    Args:
        data: the serialized table — ``bytes`` or any buffer supporting
            slicing (e.g. an ``mmap``).
        lazy: defer per-chunk deserialization until first touch. Only
            effective for version-3+ payloads (older versions have no
            chunk index and always load eagerly).

    Raises:
        StorageError: on a bad magic number, unsupported version, or
            truncated/corrupt payload.
    """
    r = _Reader(data)
    if r.bytes_(len(MAGIC)) != MAGIC:
        raise StorageError("not a .cohana file (bad magic)")
    version = r.u16()
    if version not in SUPPORTED_VERSIONS:
        raise StorageError(f"unsupported .cohana version {version}")
    if version >= DIGEST_VERSION:
        content_digest = r.bytes_(_DIGEST_BYTES).hex()
    else:
        # Pre-digest files: hash the raw bytes once so the loaded table
        # carries a stable content-derived version token. On the
        # lazy/mmap path this streams the file through the page cache
        # sequentially without deserializing anything — far cheaper
        # than an eager load, and it keeps the engine's version token
        # ``sha256:`` (content-addressed) instead of falling back to a
        # per-process ``mem:`` counter that cold-starts the service
        # cache on every byte-identical re-registration.
        content_digest = hashlib.sha256(data).hexdigest()
    n_cols = r.u32()
    specs = []
    for _ in range(n_cols):
        name = r.lp_str()
        ltype = LogicalType(r.lp_str())
        role = ColumnRole(r.lp_str())
        specs.append(ColumnSpec(name, ltype, role))
    schema = ActivitySchema(tuple(specs))
    target_chunk_rows = r.u64()
    global_dicts: dict[str, GlobalDictionary] = {}
    for _ in range(r.u32()):
        name = r.lp_str()
        values = tuple(r.lp_str() for _ in range(r.u64()))
        global_dicts[name] = GlobalDictionary(values)
    global_ranges: dict[str, GlobalRange] = {}
    for _ in range(r.u32()):
        name = r.lp_str()
        global_ranges[name] = GlobalRange(r.i64(), r.i64())
    n_chunks = r.u32()
    chunks: list[Chunk] | LazyChunkList
    if version >= MMAP_VERSION:
        entries = _read_chunk_index(data, n_chunks, r._pos)
        if lazy:
            chunks = LazyChunkList(
                data, entries,
                lambda blob, index: _parse_chunk_blob(blob, index,
                                                      version))
        else:
            chunks = [
                _parse_chunk_blob(data[offset:offset + length], index,
                                  version)
                for index, (offset, length) in enumerate(entries)]
    else:
        chunks = [_read_chunk(r, index, version)
                  for index in range(n_chunks)]
        if not r.at_end():
            raise StorageError("trailing bytes after .cohana payload")
    return CompressedActivityTable(
        schema=schema,
        global_dicts=global_dicts,
        global_ranges=global_ranges,
        chunks=chunks,
        target_chunk_rows=target_chunk_rows,
        content_digest=content_digest,
    )


def save(table: CompressedActivityTable, path: str | Path,
         version: int = VERSION) -> int:
    """Write ``table`` to ``path``; returns bytes written."""
    data = serialize(table, version=version)
    Path(path).write_bytes(data)
    return len(data)


def _peek_version(path: Path) -> int | None:
    """The file's format version, or None when it is not a .cohana file
    (deserialize will then raise the canonical error)."""
    with open(path, "rb") as f:
        head = f.read(len(MAGIC) + 2)
    if len(head) < len(MAGIC) + 2 or head[:len(MAGIC)] != MAGIC:
        return None
    return struct.unpack("<H", head[len(MAGIC):])[0]


def load(path: str | Path,
         lazy: bool | str = "auto") -> CompressedActivityTable:
    """Read a compressed activity table from ``path``.

    Args:
        path: a ``.cohana`` file, or a sharded table directory (one
            containing a shard ``MANIFEST.json`` — see
            :mod:`repro.storage.sharded`), or the manifest file itself.
        lazy: ``'auto'`` (default) memory-maps version-3 files and
            defers chunk deserialization to first touch; older versions
            load eagerly. ``True`` behaves like ``'auto'`` (version-1/2
            files have no chunk index, so eager is the only option);
            ``False`` forces an eager in-memory load for any version.
            Shard files are always opened in ``'auto'`` mode.

    The returned table records ``source_path``, which lets the
    ``processes`` execution backend reopen it inside worker processes.
    """
    path = Path(path)
    from repro.storage.sharded import is_sharded_path, load_sharded
    if is_sharded_path(path):
        return load_sharded(path)
    table: CompressedActivityTable | None = None
    if lazy and (version := _peek_version(path)) is not None \
            and version >= MMAP_VERSION:
        with open(path, "rb") as f:
            buffer = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        table = deserialize(buffer, lazy=True)
    if table is None:
        table = deserialize(path.read_bytes())
    table.source_path = str(path)
    return table
