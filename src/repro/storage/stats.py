"""Storage accounting for Figure 7 (storage space vs chunk size).

Breaks a compressed activity table's footprint down by column and by
structural component (dictionaries, RLE triples, packed payloads), which
is what the chunk-size experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.delta import DeltaEncodedColumn
from repro.storage.dictionary import DictEncodedColumn
from repro.storage.raw import RawFloatColumn
from repro.storage.reader import CompressedActivityTable


@dataclass
class ColumnStats:
    """Per-column storage breakdown (bytes)."""

    name: str
    kind: str
    payload_bytes: int = 0
    dictionary_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.dictionary_bytes


@dataclass
class StorageStats:
    """Whole-table storage breakdown.

    Attributes:
        n_rows: total tuples.
        n_chunks: chunk count.
        user_rle_bytes: RLE triples for the user column, all chunks.
        global_dict_bytes: global dictionaries (string columns).
        columns: per non-user column stats.
    """

    n_rows: int
    n_chunks: int
    target_chunk_rows: int
    user_rle_bytes: int
    global_dict_bytes: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return (self.user_rle_bytes + self.global_dict_bytes
                + sum(c.total_bytes for c in self.columns.values()))

    @property
    def bits_per_tuple(self) -> float:
        """Average compressed bits per activity tuple."""
        if self.n_rows == 0:
            return 0.0
        return self.total_bytes * 8.0 / self.n_rows


def collect_stats(table: CompressedActivityTable) -> StorageStats:
    """Measure ``table``'s storage footprint component by component."""
    stats = StorageStats(
        n_rows=table.n_rows,
        n_chunks=table.n_chunks,
        target_chunk_rows=table.target_chunk_rows,
        user_rle_bytes=sum(c.users.nbytes for c in table.chunks),
        global_dict_bytes=sum(d.nbytes for d in table.global_dicts.values()),
    )
    for chunk in table.chunks:
        for name, col in chunk.columns.items():
            if isinstance(col, DictEncodedColumn):
                kind = "dict"
                payload = col.chunk_ids.nbytes
                dictionary = col.chunk_dict.nbytes
            elif isinstance(col, DeltaEncodedColumn):
                kind = "delta"
                payload = col.nbytes
                dictionary = 0
            elif isinstance(col, RawFloatColumn):
                kind = "raw"
                payload = col.nbytes
                dictionary = 0
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown segment type {type(col)}")
            entry = stats.columns.setdefault(name, ColumnStats(name, kind))
            entry.payload_bytes += payload
            entry.dictionary_bytes += dictionary
    return stats
