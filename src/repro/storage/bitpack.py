"""Fixed-width bit packing (Section 4.1, final paragraph).

The paper packs each integer array with the minimum number of bits ``n``
needed for its maximum value, fitting as many values as possible into each
64-bit computer word *without* letting a value span two words. That choice
sacrifices a little space but allows any position to be read without
decompressing its neighbours — "of vital importance for efficient cohort
query processing".

This module reproduces that scheme exactly:

* ``k = 64 // n`` values per word,
* value ``i`` lives in word ``i // k`` at bit offset ``(i % k) * n``.

Both whole-array and single-position reads are provided; the whole-array
path is fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError

_WORD_BITS = 64


def bits_needed(max_value: int) -> int:
    """Minimum bits to represent values in ``[0, max_value]`` (at least 1)."""
    if max_value < 0:
        raise EncodingError(f"bit packing requires non-negative values, "
                            f"got max {max_value}")
    return max(1, int(max_value).bit_length())


@dataclass(frozen=True)
class PackedArray:
    """An immutable bit-packed integer array.

    Attributes:
        words: the backing uint64 word array.
        bit_width: bits per value (``n``).
        count: number of logical values stored.
    """

    words: np.ndarray
    bit_width: int
    count: int

    @property
    def values_per_word(self) -> int:
        """How many values fit in one 64-bit word (``k = 64 // n``)."""
        return _WORD_BITS // self.bit_width

    @property
    def nbytes(self) -> int:
        """Size of the packed representation in bytes."""
        return int(self.words.nbytes)

    # -- access -------------------------------------------------------------

    def unpack(self) -> np.ndarray:
        """Decode all values to an int64 array (vectorized)."""
        if self.count == 0:
            return np.empty(0, dtype=np.int64)
        k = self.values_per_word
        positions = np.arange(self.count, dtype=np.int64)
        word_idx = positions // k
        shifts = ((positions % k) * self.bit_width).astype(np.uint64)
        mask = np.uint64(_mask(self.bit_width))
        out = (self.words[word_idx] >> shifts) & mask
        return out.astype(np.int64)

    def get(self, position: int) -> int:
        """Random access: decode the value at ``position`` only."""
        if not 0 <= position < self.count:
            raise IndexError(f"position {position} out of range "
                             f"[0, {self.count})")
        k = self.values_per_word
        word = int(self.words[position // k])
        shift = (position % k) * self.bit_width
        return (word >> shift) & _mask(self.bit_width)

    def get_range(self, start: int, stop: int) -> np.ndarray:
        """Decode values in ``[start, stop)`` without touching the rest."""
        if start < 0 or stop > self.count or start > stop:
            raise IndexError(f"bad range [{start}, {stop}) for "
                             f"count {self.count}")
        if start == stop:
            return np.empty(0, dtype=np.int64)
        k = self.values_per_word
        positions = np.arange(start, stop, dtype=np.int64)
        word_idx = positions // k
        shifts = ((positions % k) * self.bit_width).astype(np.uint64)
        mask = np.uint64(_mask(self.bit_width))
        return ((self.words[word_idx] >> shifts) & mask).astype(np.int64)

    def __len__(self) -> int:
        return self.count


def pack(values: np.ndarray | list, bit_width: int | None = None,
         ) -> PackedArray:
    """Bit-pack non-negative integers.

    Args:
        values: integers in ``[0, 2**bit_width)``.
        bit_width: bits per value; inferred from the maximum when omitted.

    Raises:
        EncodingError: on negative values or values too wide for
            ``bit_width``.
    """
    arr = np.asarray(values, dtype=np.int64)
    if arr.size and int(arr.min()) < 0:
        raise EncodingError("bit packing requires non-negative values")
    if bit_width is None:
        bit_width = bits_needed(int(arr.max()) if arr.size else 0)
    if not 1 <= bit_width <= _WORD_BITS:
        raise EncodingError(f"bit width must be in [1, 64], got {bit_width}")
    if arr.size and int(arr.max()) > _mask(bit_width):
        raise EncodingError(
            f"value {int(arr.max())} does not fit in {bit_width} bits")
    k = _WORD_BITS // bit_width
    n_words = (arr.size + k - 1) // k
    words = np.zeros(n_words, dtype=np.uint64)
    if arr.size:
        positions = np.arange(arr.size, dtype=np.int64)
        word_idx = positions // k
        shifts = ((positions % k) * bit_width).astype(np.uint64)
        shifted = arr.astype(np.uint64) << shifts
        np.bitwise_or.at(words, word_idx, shifted)
    return PackedArray(words=words, bit_width=bit_width, count=int(arr.size))


def _mask(bit_width: int) -> int:
    if bit_width >= _WORD_BITS:
        return (1 << _WORD_BITS) - 1
    return (1 << bit_width) - 1
