"""Per-chunk, per-column zone maps (min/max + cardinality statistics).

A zone map summarises one column segment of one chunk in the *coded*
domain:

* dictionary-encoded string columns — min/max **global id** (the global
  dictionary is sorted, so id order equals lexicographic order and the
  id range is a faithful value range);
* delta-encoded integer columns — min/max value;
* raw float columns — min/max value.

Alongside the range it records the segment's distinct-value count and
null count (always zero today — activity tables have no nulls — but
persisted so the format does not need another revision when optional
measures arrive).

Zone maps are computed once by the storage writer
(:mod:`repro.storage.writer`), persisted in version-2 ``.cohana`` files
(:mod:`repro.storage.format`), and consulted by the scheduler's pruning
step (:func:`repro.cohana.pipeline.chunk_prunable`) *before any segment
is decoded*. Version-1 files load without zone maps and simply skip the
zone-map pruning path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError
from repro.storage.delta import DeltaEncodedColumn
from repro.storage.dictionary import DictEncodedColumn
from repro.storage.raw import RawFloatColumn


@dataclass(frozen=True)
class ZoneMap:
    """Coded-domain summary of one column segment.

    Attributes:
        min_value: smallest coded value in the segment (global id for
            dictionary columns, raw value otherwise).
        max_value: largest coded value.
        distinct_count: number of distinct values in the segment.
        null_count: number of nulls (always 0 today; kept for format
            stability).
    """

    min_value: int | float
    max_value: int | float
    distinct_count: int
    null_count: int = 0

    def __post_init__(self) -> None:
        if self.distinct_count < 0 or self.null_count < 0:
            raise StorageError("zone-map counts must be non-negative")
        if self.distinct_count and self.min_value > self.max_value:
            raise StorageError(
                f"zone map has min {self.min_value} > max {self.max_value}")

    @property
    def is_empty(self) -> bool:
        """True when the segment holds no values at all."""
        return self.distinct_count == 0

    @property
    def is_float(self) -> bool:
        """True when the summarised values are floats (raw columns)."""
        return isinstance(self.min_value, float)

    def overlaps(self, low: int | float | None,
                 high: int | float | None) -> bool:
        """Could any segment value fall inside ``[low, high]``?

        ``None`` bounds are unbounded; an empty segment never overlaps.
        This is the *necessary* half of pruning: ``False`` proves no
        tuple in the chunk can satisfy a ``[low, high]`` predicate.
        """
        if self.is_empty:
            return False
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value > high:
            return False
        return True

    def within(self, low: int | float | None,
               high: int | float | None) -> bool:
        """Does *every* segment value fall inside ``[low, high]``?

        The *sufficient* half: ``True`` proves a range predicate is
        satisfied by every tuple of the chunk, so a scan can skip
        evaluating it entirely (the mask is all-true).
        """
        if self.is_empty:
            return False
        if low is not None and self.min_value < low:
            return False
        if high is not None and self.max_value > high:
            return False
        return True


def build_zone_map(
        col: DictEncodedColumn | DeltaEncodedColumn | RawFloatColumn,
) -> ZoneMap:
    """Compute the zone map of one encoded column segment."""
    if isinstance(col, DictEncodedColumn):
        if col.cardinality == 0:
            return ZoneMap(0, 0, 0)
        gids = col.global_ids()
        return ZoneMap(int(gids[0]), int(gids[-1]), int(gids.size))
    if isinstance(col, DeltaEncodedColumn):
        if len(col) == 0:
            return ZoneMap(0, 0, 0)
        distinct = int(np.unique(col.deltas.unpack()).size)
        return ZoneMap(col.min_value, col.max_value, distinct)
    if isinstance(col, RawFloatColumn):
        if len(col) == 0:
            return ZoneMap(0.0, 0.0, 0)
        distinct = int(np.unique(col.values).size)
        return ZoneMap(float(col.min_value), float(col.max_value), distinct)
    raise StorageError(f"cannot build a zone map for {type(col).__name__}")


def build_zone_maps(
        columns: dict[str, DictEncodedColumn | DeltaEncodedColumn
                      | RawFloatColumn],
) -> dict[str, ZoneMap]:
    """Zone maps for every encoded column of a chunk, keyed by name."""
    return {name: build_zone_map(col) for name, col in columns.items()}
