"""Sharded multi-file tables with append-only ingestion.

A table that grows as users act cannot live in one immutable
``.cohana`` file: every new batch of activity would force a full
rewrite of bytes that did not change, and the content digest flipping
wholesale would cold-start every cache keyed on it. A **sharded table**
is instead a *directory*::

    GameActions/
        MANIFEST.json          <- shard list: path, rows, chunks, digest
        shard-000001.cohana    <- ordinary .cohana files (format v4)
        shard-000002.cohana
        ...

Appending writes one *new* shard file and atomically replaces the
manifest (write-temp + ``os.replace``); existing shard bytes are never
touched, so readers holding the old manifest keep a consistent view
and the cost of ingestion is O(new data).

Invariant (the price of exactness): **all tuples of a user live in one
shard** — the shard-level restatement of COHANA's chunk invariant
(Section 4.1), and the reason per-shard partial aggregates (including
cohort sizes and distinct-user counts) merge exactly. The append path
enforces it by intersecting the incoming user set with every existing
shard's user dictionary and refusing overlaps, so a sharded table can
never silently double-count a user.

Each shard is self-contained: it has its *own* global dictionaries and
ranges, so appending never re-encodes old shards. Global ids are
therefore **per-shard** coordinates — the execution layer plans each
shard independently (cheap: planning reads only header metadata) and
decodes cohort labels into value space before merging across shards
(:mod:`repro.cohana.pipeline`). The :class:`ShardedActivityTable`
facade still exposes merged dictionaries/ranges for schema-level
planning and EXPLAIN, but chunk payloads must always be interpreted
against the shard that owns them.

The table's ``content_digest`` is composed from the manifest's shard
digests, so the engine's version token changes exactly when the shard
set changes — an append invalidates cached results, a byte-identical
reload does not.

Compaction and retention (:mod:`repro.storage.compaction`) rewrite the
shard *set* without rewriting history. Three mechanisms here make that
safe under concurrent readers:

* every manifest publish bumps a monotone ``generation`` counter and
  goes through :func:`publish_manifest` — fsynced temp file, one
  atomic ``os.replace`` — so a reader observes exactly one generation,
  never a torn or mixed manifest;
* an open :class:`ShardedActivityTable` **pins** its generation's
  shard files in an in-process registry
  (:func:`pinned_shard_files`), and the compactor's garbage collector
  refuses to delete pinned files, so a query in flight keeps its
  snapshot while the next generation publishes underneath it;
* each manifest entry records a **logical digest** — an
  order-independent multiset hash over the shard's decoded rows —
  whose table-wide combination is invariant under compaction, letting
  service result caches survive a rewrite that changed every physical
  byte (:attr:`ShardedActivityTable.logical_digest`).

Crash points (:func:`crash_point`) are compiled into the publish path
so the fault-injection harness in ``tests/faultinject.py`` can kill
the process at every interesting instant and prove recovery.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import threading
import weakref
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import StorageError
from repro.storage.dictionary import GlobalDictionary
from repro.storage.delta import GlobalRange
from repro.storage.reader import CompressedActivityTable
from repro.storage.writer import DEFAULT_CHUNK_ROWS, compress
from repro.table import ActivityTable

#: The manifest file naming the shards of a sharded table directory.
MANIFEST_NAME = "MANIFEST.json"
#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1
#: Shard files are named ``shard-NNNNNN.cohana``.
_SHARD_PATTERN = "shard-{:06d}.cohana"

#: Modulus of the additive multiset row hash: per-row SHA-256 values
#: are summed mod 2**256, so the result is order-independent but —
#: unlike an XOR fold — duplicate rows do not cancel out.
LOGICAL_MOD = 1 << 256

# --------------------------------------------------------------------
# Crash points and patchable OS calls (fault-injection seams)
# --------------------------------------------------------------------
#
# The publish path routes its dangerous syscalls through module-level
# indirections and announces each milestone via crash_point(), so the
# test harness (tests/faultinject.py) can simulate a power cut at any
# instant — including *during* the os.replace — without subprocesses.

#: Patchable aliases: the fault harness swaps these to tear writes or
#: abort mid-publish; production never rebinds them.
_os_replace = os.replace
_os_fsync = os.fsync

_CRASH_HOOK = None

#: Every crash point the publish/compaction path announces, in the
#: order a successful run fires them. The crash-consistency suite
#: parameterizes over this list, so adding a point here automatically
#: grows the test matrix.
CRASH_POINTS = (
    "shard_written",
    "manifest_tmp_written",
    "manifest_replace",
    "manifest_published",
)


def set_crash_hook(hook) -> None:
    """Install ``hook(name, path)`` to be called at every crash point
    (``None`` removes it). Test-only seam: the hook may raise to
    simulate a crash at that instant; production code never installs
    one, so the call compiles down to a dict lookup and a branch."""
    global _CRASH_HOOK
    _CRASH_HOOK = hook


def crash_point(name: str, path: Path | None = None) -> None:
    """Announce a publish-path milestone to the fault harness."""
    hook = _CRASH_HOOK
    if hook is not None:
        hook(name, path)


def _fsync_file(f) -> None:
    """Flush + fsync an open file object through the patchable seam."""
    f.flush()
    _os_fsync(f.fileno())


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory, making a just-published
    rename durable. Some platforms refuse O_RDONLY fsync on
    directories; losing durability there degrades to pre-crash state,
    which the recovery contract already tolerates."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        _os_fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# --------------------------------------------------------------------
# Logical digests: content identity that survives re-sharding
# --------------------------------------------------------------------

def logical_digest_of(table: ActivityTable) -> str:
    """Order-independent multiset hash of a table's decoded rows.

    Each row hashes independently (SHA-256 of its ``repr`` as a tuple
    in schema column order) and the per-row hashes are *summed* mod
    2**256 — so any re-partitioning or re-ordering of the same rows
    yields the same digest, while adding, dropping, or editing a row
    changes it. This is the identity that survives compaction.
    """
    total = 0
    for row in table.to_rows():
        digest = hashlib.sha256(repr(row).encode("utf-8")).digest()
        total = (total + int.from_bytes(digest, "big")) % LOGICAL_MOD
    return format(total, "064x")


def combine_logical(parts: Iterable[str]) -> str:
    """Combine per-shard logical digests into the table-wide one.

    Addition mod 2**256 is associative and commutative, so combining
    shard digests equals hashing all rows in one pass — the property
    that makes the combined digest invariant under compaction.
    """
    total = 0
    for part in parts:
        total = (total + int(part, 16)) % LOGICAL_MOD
    return format(total, "064x")


# --------------------------------------------------------------------
# Generation pinning: snapshot isolation for in-flight readers
# --------------------------------------------------------------------
#
# Pins are in-process: the registry answers "which shard files may a
# live reader in THIS process still touch?" and the GC consults it
# before unlinking. (On POSIX an mmap keeps an unlinked file readable
# anyway; the registry makes the guarantee explicit, portable, and
# testable.) Keyed by resolved directory so relative and absolute
# spellings of one table share pins.

_PIN_LOCK = threading.Lock()
_PIN_SEQ = 0
#: token -> (resolved directory, generation, frozenset of shard names)
_PINS: dict[int, tuple[str, int, frozenset[str]]] = {}


def _pin_generation(directory: str | Path, generation: int,
                    shard_names: Iterable[str]) -> int:
    """Register a reader's snapshot; returns a token for release."""
    global _PIN_SEQ
    key = str(Path(directory).resolve())
    with _PIN_LOCK:
        _PIN_SEQ += 1
        token = _PIN_SEQ
        _PINS[token] = (key, generation, frozenset(shard_names))
    return token


def _release_pin(token: int) -> None:
    with _PIN_LOCK:
        _PINS.pop(token, None)


def pinned_shard_files(directory: str | Path) -> set[str]:
    """Shard file names some live reader of ``directory`` has pinned.
    The compactor's GC must never unlink any of these."""
    key = str(Path(directory).resolve())
    with _PIN_LOCK:
        return {name for d, _gen, names in _PINS.values()
                if d == key for name in names}


def pinned_generations(directory: str | Path) -> set[int]:
    """Manifest generations currently pinned by live readers."""
    key = str(Path(directory).resolve())
    with _PIN_LOCK:
        return {gen for d, gen, _names in _PINS.values() if d == key}


_PUBLISH_LOCKS_LOCK = threading.Lock()
_PUBLISH_LOCKS: dict[str, threading.RLock] = {}


def publish_lock(directory: str | Path) -> threading.RLock:
    """The per-directory re-entrant lock every manifest writer —
    append, compaction, retention, GC — holds across its whole
    read-modify-publish cycle, so in-process writers serialize instead
    of losing each other's updates. Writers in *other* processes are
    still guarded against silent data loss by the exclusive shard
    create; run one compactor per table across processes."""
    key = str(Path(directory).resolve())
    with _PUBLISH_LOCKS_LOCK:
        lock = _PUBLISH_LOCKS.get(key)
        if lock is None:
            lock = _PUBLISH_LOCKS[key] = threading.RLock()
        return lock


# --------------------------------------------------------------------
# Shard payload verification, memoized per (path, mtime, size)
# --------------------------------------------------------------------
#
# Re-hashing every shard's payload on every open would make reopening
# a many-shard table O(total bytes). The digest of an immutable shard
# file cannot change while its (mtime_ns, size) stat signature holds,
# so verification results are memoized on that signature: reopens are
# O(shards) stat calls, while any rewrite of the bytes — corruption,
# swap-under-manifest — changes the signature and re-verifies.

_VERIFY_LOCK = threading.Lock()
_VERIFY_CACHE: OrderedDict[tuple[str, int, int], str] = OrderedDict()
_VERIFY_CACHE_ENTRIES = 4096

#: Observable counters: ``hashed`` counts full payload hashes,
#: ``memoized`` counts opens satisfied by the stat-signature cache.
SHARD_VERIFY_STATS = {"hashed": 0, "memoized": 0}


def clear_shard_verify_cache() -> None:
    """Drop memoized verifications and reset the counters (tests)."""
    with _VERIFY_LOCK:
        _VERIFY_CACHE.clear()
        SHARD_VERIFY_STATS["hashed"] = 0
        SHARD_VERIFY_STATS["memoized"] = 0


def _hash_shard_payload(path: Path) -> str:
    """The digest a shard file's bytes actually hash to (the quantity
    its header merely *claims*): v4+ files hash everything after the
    header digest field; pre-digest files hash the whole file, both
    matching what the writer stamped."""
    from repro.storage.format import DIGEST_VERSION, MAGIC

    header = len(MAGIC) + 2
    hasher = hashlib.sha256()
    with open(path, "rb") as f:
        prefix = f.read(header)
        if len(prefix) < header or prefix[:len(MAGIC)] != MAGIC:
            raise StorageError(f"not a cohana file: {path}")
        version = int.from_bytes(prefix[len(MAGIC):header], "little")
        if version >= DIGEST_VERSION:
            f.read(32)  # skip the stored digest: it is the claim
        else:
            hasher.update(prefix)
        while True:
            block = f.read(1 << 20)
            if not block:
                break
            hasher.update(block)
    return hasher.hexdigest()


def verify_shard_file(path: Path, expected: str) -> None:
    """Check that a shard file's payload hashes to the manifest's
    digest, memoized per (path, mtime_ns, size) stat signature.

    Raises:
        StorageError: when the payload does not hash to ``expected`` —
            on-disk corruption, or a shard swapped under the manifest.
    """
    st = path.stat()
    key = (str(path), st.st_mtime_ns, st.st_size)
    with _VERIFY_LOCK:
        actual = _VERIFY_CACHE.get(key)
        if actual is not None:
            _VERIFY_CACHE.move_to_end(key)
            SHARD_VERIFY_STATS["memoized"] += 1
    if actual is None:
        actual = _hash_shard_payload(path)
        with _VERIFY_LOCK:
            SHARD_VERIFY_STATS["hashed"] += 1
            _VERIFY_CACHE[key] = actual
            while len(_VERIFY_CACHE) > _VERIFY_CACHE_ENTRIES:
                _VERIFY_CACHE.popitem(last=False)
    if actual != expected:
        raise StorageError(
            f"shard digest mismatch for {path}: payload hashes to "
            f"{actual[:12]}..., manifest says {expected[:12]}... "
            f"(on-disk corruption, or a shard swapped under the "
            f"manifest)")


def is_sharded_path(path: str | Path) -> bool:
    """True when ``path`` is a sharded table directory (or its
    manifest file) rather than a single ``.cohana`` file."""
    path = Path(path)
    if path.name == MANIFEST_NAME:
        return path.is_file()
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def compose_digest(shard_digests: Sequence[str]) -> str:
    """One content digest for the whole table, derived from the
    ordered shard digests: it changes iff the shard set changes."""
    payload = "\n".join(shard_digests).encode("utf-8")
    return hashlib.sha256(b"cohana-shards\n" + payload).hexdigest()


def read_manifest(directory: str | Path) -> dict:
    """Parse and structurally validate a shard manifest."""
    directory = Path(directory)
    if directory.name == MANIFEST_NAME:
        directory = directory.parent
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise StorageError(
            f"not a sharded table: {manifest_path} missing") from None
    except json.JSONDecodeError as exc:
        raise StorageError(
            f"corrupt shard manifest {manifest_path}: {exc}") from None
    if manifest.get("format") != "cohana-sharded":
        raise StorageError(f"{manifest_path}: not a cohana shard "
                           f"manifest (format={manifest.get('format')!r})")
    if manifest.get("version") != MANIFEST_VERSION:
        raise StorageError(
            f"{manifest_path}: unsupported manifest version "
            f"{manifest.get('version')!r}")
    shards = manifest.get("shards")
    if not isinstance(shards, list) or not shards:
        raise StorageError(f"{manifest_path}: manifest lists no shards")
    for entry in shards:
        missing = {"path", "n_rows", "n_chunks",
                   "content_digest"} - set(entry)
        if missing:
            raise StorageError(f"{manifest_path}: shard entry missing "
                               f"{sorted(missing)}")
    # Manifests written before the compaction era carry no generation;
    # normalize to 0 so the first post-upgrade publish bumps them to 1
    # and every caller can rely on the key existing.
    generation = manifest.setdefault("generation", 0)
    if not isinstance(generation, int) or generation < 0:
        raise StorageError(f"{manifest_path}: bad generation "
                           f"{generation!r}")
    return manifest


def publish_manifest(directory: Path, manifest: dict) -> None:
    """Durably and atomically replace the manifest.

    The WAL-style publish discipline: write the full new manifest to a
    temp file, fsync it, then a single ``os.replace`` onto the real
    name, then fsync the directory. A reader — or a post-crash reload —
    sees either the old shard list or the new one in its entirety,
    never a torn file; the crash-consistency suite kills the process at
    each :func:`crash_point` here to prove it.
    """
    target = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(json.dumps(manifest, indent=2) + "\n")
        _fsync_file(f)
    crash_point("manifest_tmp_written", tmp)
    crash_point("manifest_replace", target)
    _os_replace(tmp, target)
    _fsync_dir(directory)
    crash_point("manifest_published", target)


class ShardChunkList(Sequence):
    """A lazy concatenated view over the shards' chunk lists.

    Indexing is global: chunk ``i`` belongs to the shard whose chunk
    range covers ``i``; the chunk object itself is whatever the shard's
    (typically memory-mapped, lazily parsed) chunk list yields — a
    chunk is deserialized only when first touched, exactly as in the
    single-file case.
    """

    def __init__(self, shards: Sequence[CompressedActivityTable]):
        self._shards = shards
        self._starts: list[int] = []
        total = 0
        for shard in shards:
            self._starts.append(total)
            total += shard.n_chunks
        self._total = total

    def locate(self, index: int) -> tuple[int, int]:
        """Map a global chunk index to ``(shard_index, local_index)``."""
        if index < 0:
            index += self._total
        if not 0 <= index < self._total:
            raise IndexError(f"chunk index {index} out of range")
        shard_idx = bisect.bisect_right(self._starts, index) - 1
        return shard_idx, index - self._starts[shard_idx]

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        shard_idx, local = self.locate(index)
        return self._shards[shard_idx].chunks[local]

    def __iter__(self):
        for shard in self._shards:
            yield from shard.chunks

    def __repr__(self) -> str:
        return (f"ShardChunkList({self._total} chunks over "
                f"{len(self._shards)} shards)")


def _merged_dictionaries(shards) -> dict[str, GlobalDictionary]:
    """Table-wide dictionaries: the sorted union of the shards' values.

    Only used for schema-level planning (EXPLAIN, literal lookups) and
    value decoding in *merged* space — chunk payloads stay in their
    shard's id space and must never be decoded against these.
    """
    merged: dict[str, GlobalDictionary] = {}
    names = set()
    for shard in shards:
        names.update(shard.global_dicts)
    for name in names:
        values: set[str] = set()
        for shard in shards:
            gdict = shard.global_dicts.get(name)
            if gdict is not None:
                values.update(gdict.values)
        merged[name] = GlobalDictionary(tuple(sorted(values)))
    return merged


def _merged_ranges(shards) -> dict[str, GlobalRange]:
    merged: dict[str, GlobalRange] = {}
    for shard in shards:
        for name, rng in shard.global_ranges.items():
            seen = merged.get(name)
            if seen is None:
                merged[name] = rng
            else:
                merged[name] = GlobalRange(
                    min(seen.min_value, rng.min_value),
                    max(seen.max_value, rng.max_value))
    return merged


class ShardedActivityTable(CompressedActivityTable):
    """A directory of shard files behaving like one compressed table.

    ``chunks`` is the lazy concatenation of the shards' chunk lists;
    ``global_dicts`` / ``global_ranges`` are merged views for
    schema-level planning. Execution treats shards as the fan-out unit:
    the scheduler plans each shard against its own dictionaries and
    merges decoded partials (see :mod:`repro.cohana.pipeline`), so
    per-shard global ids never leak across shard boundaries.
    """

    def __init__(self, shards: list[CompressedActivityTable],
                 manifest: dict, directory: str | Path):
        if not shards:
            raise StorageError("a sharded table needs at least one shard")
        schema = shards[0].schema
        for i, shard in enumerate(shards[1:], start=1):
            if shard.schema != schema:
                raise StorageError(
                    f"shard {i} schema differs from shard 0 "
                    f"(all shards of a table share one schema)")
        digests = [entry["content_digest"]
                   for entry in manifest["shards"]]
        super().__init__(
            schema=schema,
            global_dicts=_merged_dictionaries(shards),
            global_ranges=_merged_ranges(shards),
            chunks=ShardChunkList(shards),
            target_chunk_rows=shards[0].target_chunk_rows,
            source_path=str(directory),
            content_digest=compose_digest(digests),
        )
        self.shards = shards
        self.manifest = manifest
        self.shard_digests = digests
        #: Manifest generation this table snapshot was opened at.
        self.generation = manifest.get("generation", 0)
        # Pin this generation's shard files so the compactor's GC
        # leaves them on disk while this object (and any query running
        # over it) is alive. The weakref finalizer guarantees release
        # even when nobody calls release() — dropping the last
        # reference unpins.
        token = _pin_generation(
            directory, self.generation,
            (entry["path"] for entry in manifest["shards"]))
        self._pin_finalizer = weakref.finalize(self, _release_pin, token)

    def release(self) -> None:
        """Explicitly unpin this snapshot's shard files (idempotent).
        After release the GC may delete superseded shard files; the
        table must not be queried again."""
        self._pin_finalizer()

    @property
    def is_sharded(self) -> bool:
        return True

    @property
    def logical_digest(self) -> str | None:
        """Content identity that survives compaction: the combined
        multiset row hash of all shards, wrapped in one SHA-256 so it
        is the same shape as a physical digest. ``None`` when any
        manifest entry predates logical digests (pre-compaction
        manifests) — callers then fall back to the physical
        ``content_digest``."""
        parts = [entry.get("logical_digest")
                 for entry in self.manifest["shards"]]
        if any(part is None for part in parts):
            return None
        combined = combine_logical(parts)
        return hashlib.sha256(
            b"cohana-logical\n" + combined.encode("ascii")).hexdigest()

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, chunk_index: int) -> tuple[int, int]:
        """Map a global chunk index to ``(shard_index, local_index)``."""
        return self.chunks.locate(chunk_index)

    def decode_chunk(self, chunk) -> ActivityTable:
        """Chunk payloads are encoded in their *shard's* id space, so
        decoding against the merged dictionaries would produce garbage
        values — decode via the owning shard instead."""
        raise StorageError(
            "decode chunks of a sharded table via the owning shard "
            "(table.shards[i].decode_chunk), not the merged facade")

    def decompress(self) -> ActivityTable:
        """Materialize the whole table, shard by shard."""
        table = self.shards[0].decompress()
        for shard in self.shards[1:]:
            table = table.concat(shard.decompress())
        return table

    def __repr__(self) -> str:
        return (f"ShardedActivityTable({self.n_rows} rows, "
                f"{self.n_users} users, {self.n_chunks} chunks, "
                f"{self.n_shards} shards)")


def load_sharded(path: str | Path) -> ShardedActivityTable:
    """Open a sharded table directory (or its manifest file).

    Every shard is opened through :func:`repro.storage.format.load`
    (memory-mapped and lazy for current-format files) and its payload
    is verified against the manifest digest via
    :func:`verify_shard_file` — a real hash of the bytes, not just the
    header's claim, so corruption or a shard swapped under an
    unchanged manifest fails loudly instead of serving bytes the
    version token does not describe. Verification is memoized on the
    file's (mtime, size) stat signature, so reopening a many-shard
    table costs O(shards) stats rather than O(total bytes).

    The returned table pins its manifest generation until released
    (or garbage-collected), so a compaction publishing the next
    generation never deletes shard files out from under it. The pin
    registers only once every shard is open, so there is a window in
    which a concurrent compact-then-GC can delete a shard this loader
    was about to read. That is not corruption — it can only mean a
    newer generation was published meanwhile — so the loader retries
    against the fresh manifest, and after a few optimistic rounds
    takes the directory's publish lock (no in-process GC can run
    under it) for a final, guaranteed attempt.
    """
    directory = Path(path)
    if directory.name == MANIFEST_NAME:
        directory = directory.parent
    for _attempt in range(_LOAD_RETRIES):
        try:
            return _load_sharded_once(directory)
        except _ShardVanished:
            continue
    with publish_lock(directory):
        try:
            return _load_sharded_once(directory)
        except _ShardVanished as exc:
            # No concurrent publish can explain this under the lock:
            # the current manifest genuinely points at a missing file.
            raise StorageError(str(exc)) from None


#: Optimistic reload attempts before load_sharded falls back to the
#: publish lock. Each retry can only fail if another generation was
#: published (and GC'd) inside the microsecond load window.
_LOAD_RETRIES = 4


class _ShardVanished(Exception):
    """A manifest-listed shard file disappeared mid-load (a concurrent
    publish + GC won the race) — internal retry signal."""


def _load_sharded_once(directory: Path) -> ShardedActivityTable:
    from repro.storage.format import load as load_file

    manifest = read_manifest(directory)
    shards = []
    for entry in manifest["shards"]:
        shard_path = directory / entry["path"]
        if not shard_path.is_file():
            raise _ShardVanished(f"shard file missing: {shard_path}")
        try:
            verify_shard_file(shard_path, entry["content_digest"])
            shard = load_file(shard_path)
        except FileNotFoundError:
            # Deleted between the existence check and the open — same
            # race, same retry.
            raise _ShardVanished(
                f"shard file missing: {shard_path}") from None
        if shard.content_digest != entry["content_digest"]:
            raise StorageError(
                f"shard digest mismatch for {shard_path}: manifest says "
                f"{entry['content_digest'][:12]}..., file is "
                f"{(shard.content_digest or '?')[:12]}...")
        if shard.n_chunks != entry["n_chunks"]:
            raise StorageError(
                f"shard chunk-count mismatch for {shard_path}: manifest "
                f"says {entry['n_chunks']}, file has {shard.n_chunks}")
        shards.append(shard)
    return ShardedActivityTable(shards, manifest, directory)


def _existing_users(shards) -> set[str]:
    """Every user present in the given shards (from the per-shard user
    dictionaries — header metadata only, no chunk is deserialized)."""
    users: set[str] = set()
    for shard in shards:
        gdict = shard.global_dicts.get(shard.schema.user.name)
        if gdict is not None:
            users.update(gdict.values)
    return users


def shard_entry(compressed, data: bytes, shard_name: str,
                logical: str) -> dict:
    """Build one manifest entry for a serialized shard.

    Shared by the append and compaction paths so both record the same
    metadata: the v4 header digest (the claim the loader verifies
    against the payload), the logical multiset digest, and the shard's
    time range (whole-shard retention prunes on it without opening the
    file).
    """
    from repro.storage.format import MAGIC

    # The digest readers will see in the shard's own header (format v4
    # stamps it right after magic + version), so a later mismatch can
    # only mean on-disk corruption.
    digest = data[len(MAGIC) + 2:len(MAGIC) + 2 + 32].hex()
    entry = {
        "path": shard_name,
        "n_rows": compressed.n_rows,
        "n_chunks": compressed.n_chunks,
        "n_users": compressed.n_users,
        "n_bytes": len(data),
        "content_digest": digest,
        "logical_digest": logical,
    }
    time_range = compressed.global_ranges.get(
        compressed.schema.time.name)
    if time_range is not None:
        entry["time_range"] = [time_range.min_value,
                               time_range.max_value]
    return entry


def append_shard(directory: str | Path, table: ActivityTable,
                 target_chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 ) -> dict:
    """Compress ``table`` into a new shard of the table at ``directory``.

    Creates the directory and manifest on first use. Existing shard
    bytes are never rewritten: the new shard file is written next to
    them and the manifest is atomically replaced. Returns the new
    shard's manifest entry.

    Raises:
        StorageError: when the incoming batch contains users already
            present in an existing shard (the shard invariant — all
            tuples of a user in one shard — is what keeps cohort
            aggregation exact), or when the batch is empty.
    """
    if len(table) == 0:
        raise StorageError("refusing to append an empty shard")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with publish_lock(directory):
        return _append_shard_locked(directory, table, target_chunk_rows)


def _append_shard_locked(directory: Path, table: ActivityTable,
                         target_chunk_rows: int) -> dict:
    from repro.storage.format import serialize

    if (directory / MANIFEST_NAME).is_file():
        existing = load_sharded(directory)
        try:
            if existing.schema != table.schema:
                raise StorageError(
                    "appended batch schema differs from the table's")
            overlap = _existing_users(existing.shards) \
                & set(table.distinct_users())
            if overlap:
                sample = ", ".join(sorted(overlap)[:5])
                raise StorageError(
                    f"append would split {len(overlap)} user(s) across "
                    f"shards (e.g. {sample}); a user's tuples must live "
                    f"in one shard for cohort aggregation to stay exact "
                    f"— batch ingestion by user arrival, or rebuild the "
                    f"table from the combined data")
            manifest = existing.manifest
            next_index = manifest["next_shard_index"]
        finally:
            existing.release()
    else:
        manifest = {"format": "cohana-sharded",
                    "version": MANIFEST_VERSION,
                    "generation": 0,
                    "target_chunk_rows": target_chunk_rows,
                    "next_shard_index": 1,
                    "shards": []}
        next_index = 1

    compressed = compress(table, target_chunk_rows=target_chunk_rows)
    data = serialize(compressed)
    shard_name = _SHARD_PATTERN.format(next_index)
    shard_path = directory / shard_name
    try:
        # Exclusive create: two concurrent appends that both read the
        # same manifest race for one shard name — the loser must fail
        # loudly here instead of silently overwriting the winner's
        # bytes and dropping its manifest entry.
        with open(shard_path, "xb") as f:
            f.write(data)
            _fsync_file(f)
    except FileExistsError:
        raise StorageError(
            f"shard file already exists: {shard_path} (concurrent "
            f"append, or manifest out of sync) — retry the append"
        ) from None
    crash_point("shard_written", shard_path)
    entry = shard_entry(compressed, data, shard_name,
                        logical_digest_of(table))
    manifest["shards"].append(entry)
    manifest["next_shard_index"] = next_index + 1
    manifest["generation"] = manifest.get("generation", 0) + 1
    publish_manifest(directory, manifest)
    return entry
