"""Sharded multi-file tables with append-only ingestion.

A table that grows as users act cannot live in one immutable
``.cohana`` file: every new batch of activity would force a full
rewrite of bytes that did not change, and the content digest flipping
wholesale would cold-start every cache keyed on it. A **sharded table**
is instead a *directory*::

    GameActions/
        MANIFEST.json          <- shard list: path, rows, chunks, digest
        shard-000001.cohana    <- ordinary .cohana files (format v4)
        shard-000002.cohana
        ...

Appending writes one *new* shard file and atomically replaces the
manifest (write-temp + ``os.replace``); existing shard bytes are never
touched, so readers holding the old manifest keep a consistent view
and the cost of ingestion is O(new data).

Invariant (the price of exactness): **all tuples of a user live in one
shard** — the shard-level restatement of COHANA's chunk invariant
(Section 4.1), and the reason per-shard partial aggregates (including
cohort sizes and distinct-user counts) merge exactly. The append path
enforces it by intersecting the incoming user set with every existing
shard's user dictionary and refusing overlaps, so a sharded table can
never silently double-count a user.

Each shard is self-contained: it has its *own* global dictionaries and
ranges, so appending never re-encodes old shards. Global ids are
therefore **per-shard** coordinates — the execution layer plans each
shard independently (cheap: planning reads only header metadata) and
decodes cohort labels into value space before merging across shards
(:mod:`repro.cohana.pipeline`). The :class:`ShardedActivityTable`
facade still exposes merged dictionaries/ranges for schema-level
planning and EXPLAIN, but chunk payloads must always be interpreted
against the shard that owns them.

The table's ``content_digest`` is composed from the manifest's shard
digests, so the engine's version token changes exactly when the shard
set changes — an append invalidates cached results, a byte-identical
reload does not.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
from collections.abc import Sequence
from pathlib import Path

from repro.errors import StorageError
from repro.storage.dictionary import GlobalDictionary
from repro.storage.delta import GlobalRange
from repro.storage.reader import CompressedActivityTable
from repro.storage.writer import DEFAULT_CHUNK_ROWS, compress
from repro.table import ActivityTable

#: The manifest file naming the shards of a sharded table directory.
MANIFEST_NAME = "MANIFEST.json"
#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1
#: Shard files are named ``shard-NNNNNN.cohana``.
_SHARD_PATTERN = "shard-{:06d}.cohana"


def is_sharded_path(path: str | Path) -> bool:
    """True when ``path`` is a sharded table directory (or its
    manifest file) rather than a single ``.cohana`` file."""
    path = Path(path)
    if path.name == MANIFEST_NAME:
        return path.is_file()
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def compose_digest(shard_digests: Sequence[str]) -> str:
    """One content digest for the whole table, derived from the
    ordered shard digests: it changes iff the shard set changes."""
    payload = "\n".join(shard_digests).encode("utf-8")
    return hashlib.sha256(b"cohana-shards\n" + payload).hexdigest()


def read_manifest(directory: str | Path) -> dict:
    """Parse and structurally validate a shard manifest."""
    directory = Path(directory)
    if directory.name == MANIFEST_NAME:
        directory = directory.parent
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise StorageError(
            f"not a sharded table: {manifest_path} missing") from None
    except json.JSONDecodeError as exc:
        raise StorageError(
            f"corrupt shard manifest {manifest_path}: {exc}") from None
    if manifest.get("format") != "cohana-sharded":
        raise StorageError(f"{manifest_path}: not a cohana shard "
                           f"manifest (format={manifest.get('format')!r})")
    if manifest.get("version") != MANIFEST_VERSION:
        raise StorageError(
            f"{manifest_path}: unsupported manifest version "
            f"{manifest.get('version')!r}")
    shards = manifest.get("shards")
    if not isinstance(shards, list) or not shards:
        raise StorageError(f"{manifest_path}: manifest lists no shards")
    for entry in shards:
        missing = {"path", "n_rows", "n_chunks",
                   "content_digest"} - set(entry)
        if missing:
            raise StorageError(f"{manifest_path}: shard entry missing "
                               f"{sorted(missing)}")
    return manifest


def _write_manifest(directory: Path, manifest: dict) -> None:
    """Atomically replace the manifest: a reader sees either the old
    shard list or the new one, never a torn file."""
    target = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n",
                   encoding="utf-8")
    os.replace(tmp, target)


class ShardChunkList(Sequence):
    """A lazy concatenated view over the shards' chunk lists.

    Indexing is global: chunk ``i`` belongs to the shard whose chunk
    range covers ``i``; the chunk object itself is whatever the shard's
    (typically memory-mapped, lazily parsed) chunk list yields — a
    chunk is deserialized only when first touched, exactly as in the
    single-file case.
    """

    def __init__(self, shards: Sequence[CompressedActivityTable]):
        self._shards = shards
        self._starts: list[int] = []
        total = 0
        for shard in shards:
            self._starts.append(total)
            total += shard.n_chunks
        self._total = total

    def locate(self, index: int) -> tuple[int, int]:
        """Map a global chunk index to ``(shard_index, local_index)``."""
        if index < 0:
            index += self._total
        if not 0 <= index < self._total:
            raise IndexError(f"chunk index {index} out of range")
        shard_idx = bisect.bisect_right(self._starts, index) - 1
        return shard_idx, index - self._starts[shard_idx]

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        shard_idx, local = self.locate(index)
        return self._shards[shard_idx].chunks[local]

    def __iter__(self):
        for shard in self._shards:
            yield from shard.chunks

    def __repr__(self) -> str:
        return (f"ShardChunkList({self._total} chunks over "
                f"{len(self._shards)} shards)")


def _merged_dictionaries(shards) -> dict[str, GlobalDictionary]:
    """Table-wide dictionaries: the sorted union of the shards' values.

    Only used for schema-level planning (EXPLAIN, literal lookups) and
    value decoding in *merged* space — chunk payloads stay in their
    shard's id space and must never be decoded against these.
    """
    merged: dict[str, GlobalDictionary] = {}
    names = set()
    for shard in shards:
        names.update(shard.global_dicts)
    for name in names:
        values: set[str] = set()
        for shard in shards:
            gdict = shard.global_dicts.get(name)
            if gdict is not None:
                values.update(gdict.values)
        merged[name] = GlobalDictionary(tuple(sorted(values)))
    return merged


def _merged_ranges(shards) -> dict[str, GlobalRange]:
    merged: dict[str, GlobalRange] = {}
    for shard in shards:
        for name, rng in shard.global_ranges.items():
            seen = merged.get(name)
            if seen is None:
                merged[name] = rng
            else:
                merged[name] = GlobalRange(
                    min(seen.min_value, rng.min_value),
                    max(seen.max_value, rng.max_value))
    return merged


class ShardedActivityTable(CompressedActivityTable):
    """A directory of shard files behaving like one compressed table.

    ``chunks`` is the lazy concatenation of the shards' chunk lists;
    ``global_dicts`` / ``global_ranges`` are merged views for
    schema-level planning. Execution treats shards as the fan-out unit:
    the scheduler plans each shard against its own dictionaries and
    merges decoded partials (see :mod:`repro.cohana.pipeline`), so
    per-shard global ids never leak across shard boundaries.
    """

    def __init__(self, shards: list[CompressedActivityTable],
                 manifest: dict, directory: str | Path):
        if not shards:
            raise StorageError("a sharded table needs at least one shard")
        schema = shards[0].schema
        for i, shard in enumerate(shards[1:], start=1):
            if shard.schema != schema:
                raise StorageError(
                    f"shard {i} schema differs from shard 0 "
                    f"(all shards of a table share one schema)")
        digests = [entry["content_digest"]
                   for entry in manifest["shards"]]
        super().__init__(
            schema=schema,
            global_dicts=_merged_dictionaries(shards),
            global_ranges=_merged_ranges(shards),
            chunks=ShardChunkList(shards),
            target_chunk_rows=shards[0].target_chunk_rows,
            source_path=str(directory),
            content_digest=compose_digest(digests),
        )
        self.shards = shards
        self.manifest = manifest
        self.shard_digests = digests

    @property
    def is_sharded(self) -> bool:
        return True

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, chunk_index: int) -> tuple[int, int]:
        """Map a global chunk index to ``(shard_index, local_index)``."""
        return self.chunks.locate(chunk_index)

    def decode_chunk(self, chunk) -> ActivityTable:
        """Chunk payloads are encoded in their *shard's* id space, so
        decoding against the merged dictionaries would produce garbage
        values — decode via the owning shard instead."""
        raise StorageError(
            "decode chunks of a sharded table via the owning shard "
            "(table.shards[i].decode_chunk), not the merged facade")

    def decompress(self) -> ActivityTable:
        """Materialize the whole table, shard by shard."""
        table = self.shards[0].decompress()
        for shard in self.shards[1:]:
            table = table.concat(shard.decompress())
        return table

    def __repr__(self) -> str:
        return (f"ShardedActivityTable({self.n_rows} rows, "
                f"{self.n_users} users, {self.n_chunks} chunks, "
                f"{self.n_shards} shards)")


def load_sharded(path: str | Path) -> ShardedActivityTable:
    """Open a sharded table directory (or its manifest file).

    Every shard is opened through :func:`repro.storage.format.load`
    (memory-mapped and lazy for current-format files) and its content
    digest is checked against the manifest, so a shard file swapped
    under an unchanged manifest fails loudly instead of serving bytes
    the version token does not describe.
    """
    from repro.storage.format import load as load_file

    directory = Path(path)
    if directory.name == MANIFEST_NAME:
        directory = directory.parent
    manifest = read_manifest(directory)
    shards = []
    for entry in manifest["shards"]:
        shard_path = directory / entry["path"]
        if not shard_path.is_file():
            raise StorageError(f"shard file missing: {shard_path}")
        shard = load_file(shard_path)
        if shard.content_digest != entry["content_digest"]:
            raise StorageError(
                f"shard digest mismatch for {shard_path}: manifest says "
                f"{entry['content_digest'][:12]}..., file is "
                f"{(shard.content_digest or '?')[:12]}...")
        if shard.n_chunks != entry["n_chunks"]:
            raise StorageError(
                f"shard chunk-count mismatch for {shard_path}: manifest "
                f"says {entry['n_chunks']}, file has {shard.n_chunks}")
        shards.append(shard)
    return ShardedActivityTable(shards, manifest, directory)


def _existing_users(shards) -> set[str]:
    """Every user present in the given shards (from the per-shard user
    dictionaries — header metadata only, no chunk is deserialized)."""
    users: set[str] = set()
    for shard in shards:
        gdict = shard.global_dicts.get(shard.schema.user.name)
        if gdict is not None:
            users.update(gdict.values)
    return users


def append_shard(directory: str | Path, table: ActivityTable,
                 target_chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 ) -> dict:
    """Compress ``table`` into a new shard of the table at ``directory``.

    Creates the directory and manifest on first use. Existing shard
    bytes are never rewritten: the new shard file is written next to
    them and the manifest is atomically replaced. Returns the new
    shard's manifest entry.

    Raises:
        StorageError: when the incoming batch contains users already
            present in an existing shard (the shard invariant — all
            tuples of a user in one shard — is what keeps cohort
            aggregation exact), or when the batch is empty.
    """
    if len(table) == 0:
        raise StorageError("refusing to append an empty shard")
    from repro.storage.format import MAGIC, serialize

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if (directory / MANIFEST_NAME).is_file():
        existing = load_sharded(directory)
        if existing.schema != table.schema:
            raise StorageError(
                "appended batch schema differs from the table's")
        overlap = _existing_users(existing.shards) \
            & set(table.distinct_users())
        if overlap:
            sample = ", ".join(sorted(overlap)[:5])
            raise StorageError(
                f"append would split {len(overlap)} user(s) across "
                f"shards (e.g. {sample}); a user's tuples must live in "
                f"one shard for cohort aggregation to stay exact — "
                f"batch ingestion by user arrival, or rebuild the "
                f"table from the combined data")
        manifest = existing.manifest
        next_index = manifest["next_shard_index"]
    else:
        manifest = {"format": "cohana-sharded",
                    "version": MANIFEST_VERSION,
                    "target_chunk_rows": target_chunk_rows,
                    "next_shard_index": 1,
                    "shards": []}
        next_index = 1

    compressed = compress(table, target_chunk_rows=target_chunk_rows)
    data = serialize(compressed)
    shard_name = _SHARD_PATTERN.format(next_index)
    shard_path = directory / shard_name
    try:
        # Exclusive create: two concurrent appends that both read the
        # same manifest race for one shard name — the loser must fail
        # loudly here instead of silently overwriting the winner's
        # bytes and dropping its manifest entry.
        with open(shard_path, "xb") as f:
            f.write(data)
    except FileExistsError:
        raise StorageError(
            f"shard file already exists: {shard_path} (concurrent "
            f"append, or manifest out of sync) — retry the append"
        ) from None
    # The manifest records the digest readers will see in the shard's
    # own header (format v4 stamps it right after magic + version), so
    # a later mismatch can only mean on-disk corruption.
    digest = data[len(MAGIC) + 2:len(MAGIC) + 2 + 32].hex()
    entry = {
        "path": shard_name,
        "n_rows": compressed.n_rows,
        "n_chunks": compressed.n_chunks,
        "n_users": compressed.n_users,
        "n_bytes": len(data),
        "content_digest": digest,
    }
    manifest["shards"].append(entry)
    manifest["next_shard_index"] = next_index + 1
    _write_manifest(directory, manifest)
    return entry
