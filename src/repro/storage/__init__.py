"""COHANA's chunked, compressed columnar storage format (Section 4.1)."""

from repro.storage.bitpack import PackedArray, bits_needed, pack
from repro.storage.chunk import Chunk, encoded_column_kind
from repro.storage.delta import (
    DeltaEncodedColumn,
    GlobalRange,
    encode_chunk_integers,
)
from repro.storage.dictionary import (
    DictEncodedColumn,
    GlobalDictionary,
    encode_chunk_strings,
)
from repro.storage.format import deserialize, load, save, serialize
from repro.storage.raw import RawFloatColumn
from repro.storage.reader import CompressedActivityTable
from repro.storage.rle import RleColumn, encode_users
from repro.storage.sharded import (
    MANIFEST_NAME,
    ShardedActivityTable,
    append_shard,
    compose_digest,
    is_sharded_path,
    load_sharded,
    read_manifest,
)
from repro.storage.stats import ColumnStats, StorageStats, collect_stats
from repro.storage.writer import DEFAULT_CHUNK_ROWS, compress
from repro.storage.zonemap import ZoneMap, build_zone_map, build_zone_maps

__all__ = [
    "Chunk",
    "ColumnStats",
    "CompressedActivityTable",
    "DEFAULT_CHUNK_ROWS",
    "DeltaEncodedColumn",
    "DictEncodedColumn",
    "GlobalDictionary",
    "GlobalRange",
    "MANIFEST_NAME",
    "PackedArray",
    "RawFloatColumn",
    "RleColumn",
    "ShardedActivityTable",
    "StorageStats",
    "ZoneMap",
    "append_shard",
    "bits_needed",
    "build_zone_map",
    "build_zone_maps",
    "collect_stats",
    "compose_digest",
    "compress",
    "deserialize",
    "encode_chunk_integers",
    "encode_chunk_strings",
    "encode_users",
    "encoded_column_kind",
    "is_sharded_path",
    "load",
    "load_sharded",
    "pack",
    "read_manifest",
    "save",
    "serialize",
]
