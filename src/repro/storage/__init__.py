"""COHANA's chunked, compressed columnar storage format (Section 4.1)."""

from repro.storage.bitpack import PackedArray, bits_needed, pack
from repro.storage.chunk import Chunk, encoded_column_kind
from repro.storage.delta import (
    DeltaEncodedColumn,
    GlobalRange,
    encode_chunk_integers,
)
from repro.storage.dictionary import (
    DictEncodedColumn,
    GlobalDictionary,
    encode_chunk_strings,
)
from repro.storage.compaction import (
    CompactionResult,
    RetentionResult,
    compact,
    gc_shards,
    prune_retention,
    select_small_shards,
)
from repro.storage.format import deserialize, load, save, serialize
from repro.storage.raw import RawFloatColumn
from repro.storage.reader import CompressedActivityTable
from repro.storage.rle import RleColumn, encode_users
from repro.storage.sharded import (
    CRASH_POINTS,
    MANIFEST_NAME,
    SHARD_VERIFY_STATS,
    ShardedActivityTable,
    append_shard,
    clear_shard_verify_cache,
    combine_logical,
    compose_digest,
    is_sharded_path,
    load_sharded,
    logical_digest_of,
    pinned_generations,
    pinned_shard_files,
    publish_lock,
    publish_manifest,
    read_manifest,
    set_crash_hook,
    verify_shard_file,
)
from repro.storage.stats import ColumnStats, StorageStats, collect_stats
from repro.storage.writer import DEFAULT_CHUNK_ROWS, compress
from repro.storage.zonemap import ZoneMap, build_zone_map, build_zone_maps

__all__ = [
    "CRASH_POINTS",
    "Chunk",
    "ColumnStats",
    "CompactionResult",
    "CompressedActivityTable",
    "DEFAULT_CHUNK_ROWS",
    "DeltaEncodedColumn",
    "DictEncodedColumn",
    "GlobalDictionary",
    "GlobalRange",
    "MANIFEST_NAME",
    "PackedArray",
    "RawFloatColumn",
    "RetentionResult",
    "RleColumn",
    "SHARD_VERIFY_STATS",
    "ShardedActivityTable",
    "StorageStats",
    "ZoneMap",
    "append_shard",
    "bits_needed",
    "build_zone_map",
    "build_zone_maps",
    "clear_shard_verify_cache",
    "collect_stats",
    "combine_logical",
    "compact",
    "compose_digest",
    "compress",
    "deserialize",
    "encode_chunk_integers",
    "encode_chunk_strings",
    "encode_users",
    "encoded_column_kind",
    "gc_shards",
    "is_sharded_path",
    "load",
    "load_sharded",
    "logical_digest_of",
    "pack",
    "pinned_generations",
    "pinned_shard_files",
    "prune_retention",
    "publish_lock",
    "publish_manifest",
    "read_manifest",
    "save",
    "select_small_shards",
    "serialize",
    "set_crash_hook",
    "verify_shard_file",
]
