"""The compressed activity table: chunks + global metadata.

A :class:`CompressedActivityTable` is what the COHANA engine executes
against. It owns the global dictionaries (strings), global ranges
(integers) and the chunk list; it can decode itself back to a plain
:class:`~repro.table.ActivityTable` (used by round-trip tests) and answers
the pruning questions the planner asks.

Tables loaded from a version-3 ``.cohana`` file are *lazy*: ``chunks``
is a :class:`LazyChunkList` backed by a memory-mapped buffer, and each
chunk is deserialized on first touch (then cached). Everything else —
iteration, indexing, pruning, scanning — is oblivious to the
distinction, so eager (v1/v2 or freshly compressed) and lazy tables
behave identically; only the work done at load time differs. A process
worker that scans two chunks of a hundred-chunk file parses exactly
those two.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import StorageError
from repro.schema import ActivitySchema, ColumnRole, LogicalType
from repro.storage.chunk import Chunk
from repro.storage.delta import DeltaEncodedColumn, GlobalRange
from repro.storage.dictionary import DictEncodedColumn, GlobalDictionary
from repro.table import ActivityTable


class LazyChunkList(Sequence):
    """A list-like chunk sequence that deserializes chunks on demand.

    Holds the (typically memory-mapped) file buffer plus the per-chunk
    ``(offset, length)`` index from the version-3 footer; ``parse`` turns
    one chunk's byte slice into a :class:`~repro.storage.chunk.Chunk`.
    Parsed chunks are cached, so repeated access costs nothing extra.
    """

    def __init__(self, buffer, entries: list[tuple[int, int]],
                 parse: Callable[[bytes, int], Chunk]):
        self._buffer = buffer
        self._entries = entries
        self._parse = parse
        self._chunks: list[Chunk | None] = [None] * len(entries)

    @property
    def loaded_count(self) -> int:
        """How many chunks have been deserialized so far."""
        return sum(1 for c in self._chunks if c is not None)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"chunk index {index} out of range")
        chunk = self._chunks[index]
        if chunk is None:
            offset, length = self._entries[index]
            blob = self._buffer[offset:offset + length]
            chunk = self._parse(blob, index)
            self._chunks[index] = chunk
        return chunk

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:
        return (f"LazyChunkList({len(self)} chunks, "
                f"{self.loaded_count} loaded)")


@dataclass
class CompressedActivityTable:
    """A chunked, compressed activity table (the on-disk unit).

    Attributes:
        schema: the activity schema.
        global_dicts: global dictionary per string column (incl. user).
        global_ranges: global MIN/MAX per integer column.
        chunks: the horizontal partitions, in row order — a plain list,
            or a :class:`LazyChunkList` for mmap-backed version-3 loads.
        target_chunk_rows: the writer's chunk-size setting.
        source_path: the ``.cohana`` file this table was loaded from, or
            None for in-memory tables. The ``processes`` execution
            backend uses it to reopen the table inside worker processes
            (only chunk indices and partial aggregates cross the process
            boundary, never chunk data).
        content_digest: hex SHA-256 of the serialized payload — read
            from the header of version-4 files, computed from the raw
            bytes for older versions, None for tables compressed in
            memory (the engine substitutes a monotonic counter token).
            The query service keys its result cache on it, so a
            rewritten file can never serve stale cached results.
    """

    schema: ActivitySchema
    global_dicts: dict[str, GlobalDictionary]
    global_ranges: dict[str, GlobalRange]
    chunks: list[Chunk] | LazyChunkList
    target_chunk_rows: int
    source_path: str | None = field(default=None, compare=False)
    content_digest: str | None = field(default=None, compare=False)

    @property
    def n_rows(self) -> int:
        """Total tuples across all chunks."""
        return sum(c.n_rows for c in self.chunks)

    @property
    def n_users(self) -> int:
        """Total distinct users (sums per-chunk counts; valid because a
        user lives in exactly one chunk)."""
        return sum(c.n_users for c in self.chunks)

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def is_lazy(self) -> bool:
        """True when chunks deserialize on first touch (mmap-backed)."""
        return isinstance(self.chunks, LazyChunkList)

    @property
    def is_sharded(self) -> bool:
        """True for multi-file sharded tables, whose chunks must be
        interpreted in their owning shard's id space
        (:class:`repro.storage.sharded.ShardedActivityTable`)."""
        return False

    @property
    def nbytes(self) -> int:
        """Compressed size: chunks + global dictionaries + ranges."""
        total = sum(c.nbytes for c in self.chunks)
        total += sum(d.nbytes for d in self.global_dicts.values())
        total += 16 * len(self.global_ranges)
        return total

    # -- value/id mapping ----------------------------------------------------

    def dictionary(self, column: str) -> GlobalDictionary:
        """The global dictionary of a string column."""
        try:
            return self.global_dicts[column]
        except KeyError:
            raise StorageError(
                f"column {column!r} has no global dictionary") from None

    def global_id(self, column: str, value: str) -> int | None:
        """Global id of ``value`` in ``column``, or None if absent
        anywhere in the table (queries naming such values match nothing)."""
        return self.dictionary(column).global_id(value)

    def value_of(self, column: str, global_id: int) -> str:
        """Inverse of :meth:`global_id`."""
        return self.dictionary(column).value(int(global_id))

    def user_name(self, global_id: int) -> str:
        """The user string for a global user id."""
        return self.value_of(self.schema.user.name, global_id)

    @property
    def has_zone_maps(self) -> bool:
        """True when every chunk carries persisted zone maps (version-2
        files and freshly compressed tables; False for version-1 loads)."""
        return bool(self.chunks) and all(c.has_zone_maps
                                         for c in self.chunks)

    # -- pruning -------------------------------------------------------------

    def chunk_may_contain_action(self, chunk: Chunk,
                                 action_global_id: int) -> bool:
        """Section 4.1 pruning: binary-search the action chunk dictionary."""
        col = chunk.column(self.schema.action.name)
        if not isinstance(col, DictEncodedColumn):  # pragma: no cover
            raise StorageError("action column must be dictionary encoded")
        return col.contains_global_id(action_global_id)

    def chunk_overlaps_range(self, chunk: Chunk, column: str,
                             low: int | None, high: int | None) -> bool:
        """Section 4.1 pruning: chunk MIN/MAX intersection for integers."""
        col = chunk.column(column)
        if isinstance(col, (DeltaEncodedColumn,)):
            return col.overlaps(low, high)
        raise StorageError(
            f"range pruning requires an integer column, got {column!r}")

    # -- decoding ------------------------------------------------------------

    def decode_chunk(self, chunk: Chunk) -> ActivityTable:
        """Materialize one chunk back into a plain activity table."""
        columns: dict[str, np.ndarray] = {}
        for spec in self.schema:
            if spec.role is ColumnRole.USER:
                gids = chunk.user_global_ids()
                columns[spec.name] = self.dictionary(spec.name).decode(gids)
            elif spec.ltype is LogicalType.STRING:
                codes = chunk.decode_codes(spec.name)
                columns[spec.name] = self.dictionary(spec.name).decode(codes)
            else:
                columns[spec.name] = chunk.decode_codes(spec.name)
        return ActivityTable(self.schema, columns)

    def decompress(self) -> ActivityTable:
        """Materialize the whole table (round-trip of the writer)."""
        if not self.chunks:
            return ActivityTable.empty(self.schema)
        table = self.decode_chunk(self.chunks[0])
        for chunk in self.chunks[1:]:
            table = table.concat(self.decode_chunk(chunk))
        return table

    def __repr__(self) -> str:
        return (f"CompressedActivityTable({self.n_rows} rows, "
                f"{self.n_users} users, {self.n_chunks} chunks, "
                f"{self.nbytes} bytes)")
