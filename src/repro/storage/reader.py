"""The compressed activity table: chunks + global metadata.

A :class:`CompressedActivityTable` is what the COHANA engine executes
against. It owns the global dictionaries (strings), global ranges
(integers) and the chunk list; it can decode itself back to a plain
:class:`~repro.table.ActivityTable` (used by round-trip tests) and answers
the pruning questions the planner asks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import StorageError
from repro.schema import ActivitySchema, ColumnRole, LogicalType
from repro.storage.chunk import Chunk
from repro.storage.delta import DeltaEncodedColumn, GlobalRange
from repro.storage.dictionary import DictEncodedColumn, GlobalDictionary
from repro.table import ActivityTable


@dataclass
class CompressedActivityTable:
    """A chunked, compressed activity table (the on-disk unit).

    Attributes:
        schema: the activity schema.
        global_dicts: global dictionary per string column (incl. user).
        global_ranges: global MIN/MAX per integer column.
        chunks: the horizontal partitions, in row order.
        target_chunk_rows: the writer's chunk-size setting.
    """

    schema: ActivitySchema
    global_dicts: dict[str, GlobalDictionary]
    global_ranges: dict[str, GlobalRange]
    chunks: list[Chunk]
    target_chunk_rows: int

    @property
    def n_rows(self) -> int:
        """Total tuples across all chunks."""
        return sum(c.n_rows for c in self.chunks)

    @property
    def n_users(self) -> int:
        """Total distinct users (sums per-chunk counts; valid because a
        user lives in exactly one chunk)."""
        return sum(c.n_users for c in self.chunks)

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def nbytes(self) -> int:
        """Compressed size: chunks + global dictionaries + ranges."""
        total = sum(c.nbytes for c in self.chunks)
        total += sum(d.nbytes for d in self.global_dicts.values())
        total += 16 * len(self.global_ranges)
        return total

    # -- value/id mapping ----------------------------------------------------

    def dictionary(self, column: str) -> GlobalDictionary:
        """The global dictionary of a string column."""
        try:
            return self.global_dicts[column]
        except KeyError:
            raise StorageError(
                f"column {column!r} has no global dictionary") from None

    def global_id(self, column: str, value: str) -> int | None:
        """Global id of ``value`` in ``column``, or None if absent
        anywhere in the table (queries naming such values match nothing)."""
        return self.dictionary(column).global_id(value)

    def value_of(self, column: str, global_id: int) -> str:
        """Inverse of :meth:`global_id`."""
        return self.dictionary(column).value(int(global_id))

    def user_name(self, global_id: int) -> str:
        """The user string for a global user id."""
        return self.value_of(self.schema.user.name, global_id)

    @property
    def has_zone_maps(self) -> bool:
        """True when every chunk carries persisted zone maps (version-2
        files and freshly compressed tables; False for version-1 loads)."""
        return bool(self.chunks) and all(c.has_zone_maps
                                         for c in self.chunks)

    # -- pruning -------------------------------------------------------------

    def chunk_may_contain_action(self, chunk: Chunk,
                                 action_global_id: int) -> bool:
        """Section 4.1 pruning: binary-search the action chunk dictionary."""
        col = chunk.column(self.schema.action.name)
        if not isinstance(col, DictEncodedColumn):  # pragma: no cover
            raise StorageError("action column must be dictionary encoded")
        return col.contains_global_id(action_global_id)

    def chunk_overlaps_range(self, chunk: Chunk, column: str,
                             low: int | None, high: int | None) -> bool:
        """Section 4.1 pruning: chunk MIN/MAX intersection for integers."""
        col = chunk.column(column)
        if isinstance(col, (DeltaEncodedColumn,)):
            return col.overlaps(low, high)
        raise StorageError(
            f"range pruning requires an integer column, got {column!r}")

    # -- decoding ------------------------------------------------------------

    def decode_chunk(self, chunk: Chunk) -> ActivityTable:
        """Materialize one chunk back into a plain activity table."""
        columns: dict[str, np.ndarray] = {}
        for spec in self.schema:
            if spec.role is ColumnRole.USER:
                gids = chunk.user_global_ids()
                columns[spec.name] = self.dictionary(spec.name).decode(gids)
            elif spec.ltype is LogicalType.STRING:
                codes = chunk.decode_codes(spec.name)
                columns[spec.name] = self.dictionary(spec.name).decode(codes)
            else:
                columns[spec.name] = chunk.decode_codes(spec.name)
        return ActivityTable(self.schema, columns)

    def decompress(self) -> ActivityTable:
        """Materialize the whole table (round-trip of the writer)."""
        if not self.chunks:
            return ActivityTable.empty(self.schema)
        table = self.decode_chunk(self.chunks[0])
        for chunk in self.chunks[1:]:
            table = table.concat(self.decode_chunk(chunk))
        return table

    def __repr__(self) -> str:
        return (f"CompressedActivityTable({self.n_rows} rows, "
                f"{self.n_users} users, {self.n_chunks} chunks, "
                f"{self.nbytes} bytes)")
