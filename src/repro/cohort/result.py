"""Cohort query results: a small relational table plus report helpers.

The cohort aggregation operator "takes an activity table D as input and
produces a normal relational table R as output" (Section 3.3.3); this is
that table. :meth:`CohortResult.pivot` reshapes it into the classic
cohort report (the paper's Table 3 / Figure 1): one row per cohort with
its size, one column per age.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError

#: What an empty cell renders as: a (cohort, age) bucket missing from
#: the pivoted report, or an aggregate with nothing to aggregate
#: (``AVG``/``MIN``/``MAX`` over zero tuples yield None). One marker,
#: used by every text rendering, so emptiness is visible rather than
#: blank and indistinguishable from column padding.
EMPTY_CELL = "-"


@dataclass
class CohortResult:
    """An ordered relation of (cohort attrs..., cohort_size, age, measures).

    Attributes:
        columns: output column names.
        rows: result tuples, one per (cohort, age) bucket with a positive
            age, sorted by (cohort, age).
        n_cohort_columns: how many leading columns identify the cohort.
    """

    columns: list[str]
    rows: list[tuple]
    n_cohort_columns: int = 1

    def __post_init__(self):
        for row in self.rows:
            if len(row) != len(self.columns):
                raise QueryError(
                    f"result row has {len(row)} values for "
                    f"{len(self.columns)} columns")

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise QueryError(f"no result column {name!r}; "
                             f"have {self.columns}") from None

    def column_values(self, name: str) -> list:
        """All values of one output column."""
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def sorted(self) -> "CohortResult":
        """A copy sorted by (cohort key..., age) — the canonical order."""
        age_idx = self.column_index("age")
        k = self.n_cohort_columns

        def key(row):
            return (tuple(str(v) for v in row[:k]), row[age_idx])

        return CohortResult(list(self.columns), sorted(self.rows, key=key),
                            self.n_cohort_columns)

    def as_dicts(self) -> list[dict]:
        """Rows as {column: value} dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    # -- cohort report -----------------------------------------------------

    def pivot(self, measure: str | None = None) -> "CohortReport":
        """Reshape into a cohort-by-age matrix (the paper's Table 3).

        Args:
            measure: which measure column to pivot; defaults to the first
                column after ``age``.
        """
        if measure is None:
            measure = self.columns[self.column_index("age") + 1]
        m_idx = self.column_index(measure)
        age_idx = self.column_index("age")
        size_idx = self.column_index("cohort_size")
        k = self.n_cohort_columns
        cohorts: dict[tuple, dict[int, object]] = {}
        sizes: dict[tuple, int] = {}
        for row in self.rows:
            label = row[:k]
            cohorts.setdefault(label, {})[row[age_idx]] = row[m_idx]
            sizes[label] = row[size_idx]
        labels = sorted(cohorts, key=lambda c: tuple(str(v) for v in c))
        ages = sorted({age for cells in cohorts.values() for age in cells})
        return CohortReport(
            measure=measure,
            cohort_labels=[" / ".join(str(v) for v in c) for c in labels],
            cohort_sizes=[sizes[c] for c in labels],
            ages=ages,
            cells=[[cohorts[c].get(age) for age in ages] for c in labels],
        )

    def to_text(self, max_rows: int = 50) -> str:
        """A plain ASCII rendering of the relation."""
        rows = [tuple(_fmt(v) for v in row) for row in self.rows[:max_rows]]
        widths = [len(c) for c in self.columns]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines = [header, "-" * len(header)]
        lines += ["  ".join(cell.ljust(widths[i])
                            for i, cell in enumerate(row)) for row in rows]
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


@dataclass
class CohortReport:
    """A pivoted cohort report: rows = cohorts, columns = ages."""

    measure: str
    cohort_labels: list[str]
    cohort_sizes: list[int]
    ages: list[int]
    cells: list[list]

    def cell(self, cohort_label: str, age: int):
        """The measure value for one (cohort, age), or None."""
        try:
            r = self.cohort_labels.index(cohort_label)
            c = self.ages.index(age)
        except ValueError:
            return None
        return self.cells[r][c]

    def to_text(self) -> str:
        """Render like the paper's Table 3 (cohort, size, age columns)."""
        label_w = max([len("cohort")]
                      + [len(f"{name} ({size})") for name, size in
                         zip(self.cohort_labels, self.cohort_sizes)])
        cols = [str(a) for a in self.ages]
        col_w = [max(6, len(c)) for c in cols]
        head = "cohort".ljust(label_w) + " | " + "  ".join(
            c.rjust(w) for c, w in zip(cols, col_w))
        lines = [f"{self.measure} by (cohort, age)", head,
                 "-" * len(head)]
        for label, size, row in zip(self.cohort_labels, self.cohort_sizes,
                                    self.cells):
            cells = "  ".join(_fmt(v).rjust(w)
                              for v, w in zip(row, col_w))
            lines.append(f"{label} ({size})".ljust(label_w) + " | " + cells)
        return "\n".join(lines)


def format_cell(value) -> str:
    """One result cell as text: None becomes :data:`EMPTY_CELL`, floats
    drop trailing zeros. Shared by every table-text rendering (cohort
    and relational) so the formats cannot drift apart."""
    if value is None:
        return EMPTY_CELL
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


_fmt = format_cell
