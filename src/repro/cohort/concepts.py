"""Core cohort concepts: birth time, birth tuple, age (Definitions 1-3).

These are straightforward row-level computations over an
:class:`~repro.table.ActivityTable`, used directly by the oracle operators
and indirectly (as the specification) by every engine.

Age normalization
-----------------
Definition 3 gives the raw age ``g = d[At] − t^{i,e}`` in seconds; the
paper normalizes it "by a certain time unit such as a day, week or month".
Following the paper's running example — tuple ``t2`` (22 hours after
birth) has *age 1* in days, and lands in the *week 1* sub-partition in
Table 3 — a positive raw age is normalized with a ceiling::

    age_units = ceil(raw_seconds / unit_seconds)

so activities in the first unit after birth have age 1, in the second
age 2, and so on. The birth instant itself has age 0 and negative raw ages
stay negative.
"""

from __future__ import annotations

import math

from repro.schema import TIME_UNIT_SECONDS
from repro.table import ActivityTable

#: Birth time of users that never performed the birth action
#: (Definition 1's "-1 otherwise").
NEVER_BORN = -1


def birth_times(table: ActivityTable, birth_action: str) -> dict[str, int]:
    """Definition 1: each user's birth time for ``birth_action``.

    Returns a mapping of every user in ``table`` to the minimum time at
    which they performed the birth action, or :data:`NEVER_BORN`.
    """
    user_col = table.users
    time_col = table.times
    action_col = table.actions
    births: dict[str, int] = {}
    for i in range(len(table)):
        user = user_col[i]
        births.setdefault(user, NEVER_BORN)
        if action_col[i] == birth_action:
            t = int(time_col[i])
            if births[user] == NEVER_BORN or t < births[user]:
                births[user] = t
    return births


def birth_tuples(table: ActivityTable,
                 birth_action: str) -> dict[str, dict]:
    """Definition 2: each born user's birth activity tuple (as a row dict).

    The primary key guarantees at most one tuple per (user, time, action),
    so the birth tuple is unique.
    """
    births = birth_times(table, birth_action)
    result: dict[str, dict] = {}
    time_name = table.schema.time.name
    user_name = table.schema.user.name
    action_name = table.schema.action.name
    for i in range(len(table)):
        row = table.row(i)
        user = row[user_name]
        if (births.get(user, NEVER_BORN) != NEVER_BORN
                and row[time_name] == births[user]
                and row[action_name] == birth_action
                and user not in result):
            result[user] = row
    return result


def normalize_age(raw_seconds: int, unit: str = "day") -> int:
    """Normalize a raw age (seconds since birth) into age units.

    * ``0`` for the birth instant,
    * ``ceil(raw / unit)`` for positive raw ages (first unit == age 1),
    * negative for pre-birth activities (never aggregated).
    """
    unit_seconds = TIME_UNIT_SECONDS[unit]
    if raw_seconds == 0:
        return 0
    if raw_seconds > 0:
        return math.ceil(raw_seconds / unit_seconds)
    return -math.ceil(-raw_seconds / unit_seconds)


def bin_time(timestamp: int, unit: str = "week", origin: int = 0) -> int:
    """Floor ``timestamp`` to the start of its time bin.

    Used to label time-based cohorts (e.g. weekly launch cohorts). Bins of
    ``unit`` seconds are aligned to ``origin`` (epoch-aligned by default;
    pass the dataset's first day to reproduce the paper's Table 3 labels).
    """
    unit_seconds = TIME_UNIT_SECONDS[unit]
    return origin + ((timestamp - origin) // unit_seconds) * unit_seconds
