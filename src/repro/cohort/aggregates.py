"""Aggregate functions for cohort aggregation (the ``fA`` of Definition 6).

Supported functions: ``SUM``, ``AVG``, ``COUNT``, ``MIN``, ``MAX`` over a
measure column, plus ``USERCOUNT`` — the paper's retention aggregate
(Section 4.5) counting *distinct users* with at least one qualifying age
activity tuple in the (cohort, age) bucket.

Accumulators are streaming (add one tuple at a time) and mergeable, which
is exactly what per-chunk execution needs: each chunk folds its tuples into
a private accumulator and the engine merges the partial states. The
``USERCOUNT`` merge exploits the storage invariant that a user's tuples
never span chunks, so per-chunk distinct counts simply add up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError

AGGREGATE_FUNCTIONS = ("SUM", "AVG", "COUNT", "MIN", "MAX", "USERCOUNT")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in a cohort query's SELECT list.

    Attributes:
        func: one of :data:`AGGREGATE_FUNCTIONS`.
        column: the measure column, or None for COUNT / USERCOUNT.
        alias: output column name.
    """

    func: str
    column: str | None
    alias: str

    def __post_init__(self):
        func = self.func.upper()
        object.__setattr__(self, "func", func)
        if func not in AGGREGATE_FUNCTIONS:
            raise QueryError(f"unknown aggregate function {self.func!r}; "
                             f"supported: {AGGREGATE_FUNCTIONS}")
        if func in ("SUM", "AVG", "MIN", "MAX") and not self.column:
            raise QueryError(f"{func} requires a measure column")

    @property
    def needs_column(self) -> bool:
        return self.func in ("SUM", "AVG", "MIN", "MAX")

    def __str__(self):
        if self.func == "USERCOUNT":
            return "UserCount()"
        return f"{self.func.capitalize()}({self.column or '*'})"


class Accumulator:
    """Streaming, mergeable aggregate state for one (cohort, age) bucket."""

    def add(self, value, user) -> None:
        """Fold one qualifying age activity tuple into the state.

        Args:
            value: the measure value (ignored by COUNT / USERCOUNT).
            user: the tuple's user id (only USERCOUNT uses it).
        """
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        """Fold another partial state (e.g. from another chunk) in."""
        raise NotImplementedError

    def result(self):
        """The final aggregate value."""
        raise NotImplementedError


class SumAccumulator(Accumulator):
    def __init__(self):
        self.total = 0

    def add(self, value, user):
        self.total += value

    def merge(self, other):
        self.total += other.total

    def result(self):
        return self.total


class CountAccumulator(Accumulator):
    def __init__(self):
        self.count = 0

    def add(self, value, user):
        self.count += 1

    def merge(self, other):
        self.count += other.count

    def result(self):
        return self.count


class AvgAccumulator(Accumulator):
    def __init__(self):
        self.total = 0
        self.count = 0

    def add(self, value, user):
        self.total += value
        self.count += 1

    def merge(self, other):
        self.total += other.total
        self.count += other.count

    def result(self):
        if self.count == 0:
            return None
        return self.total / self.count


class MinAccumulator(Accumulator):
    def __init__(self):
        self.value = None

    def add(self, value, user):
        if self.value is None or value < self.value:
            self.value = value

    def merge(self, other):
        if other.value is not None:
            self.add(other.value, None)

    def result(self):
        return self.value


class MaxAccumulator(Accumulator):
    def __init__(self):
        self.value = None

    def add(self, value, user):
        if self.value is None or value > self.value:
            self.value = value

    def merge(self, other):
        if other.value is not None:
            self.add(other.value, None)

    def result(self):
        return self.value


class UserCountAccumulator(Accumulator):
    """Distinct-user count.

    Within one chunk (or the whole table for the oracle) the state is an
    exact set of user ids. :meth:`merge` adds cardinalities — only valid
    when the operand states saw disjoint user populations, which the
    chunking invariant guarantees (Section 4.5).
    """

    def __init__(self):
        self.users: set = set()
        self._merged = 0

    def add(self, value, user):
        self.users.add(user)

    def merge(self, other):
        self._merged += len(other.users) + other._merged

    def result(self):
        return len(self.users) + self._merged


_FACTORIES = {
    "SUM": SumAccumulator,
    "AVG": AvgAccumulator,
    "COUNT": CountAccumulator,
    "MIN": MinAccumulator,
    "MAX": MaxAccumulator,
    "USERCOUNT": UserCountAccumulator,
}


def make_accumulator(func: str) -> Accumulator:
    """Create a fresh accumulator for ``func``."""
    try:
        return _FACTORIES[func.upper()]()
    except KeyError:
        raise QueryError(f"unknown aggregate function {func!r}") from None
