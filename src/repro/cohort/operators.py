"""Reference (oracle) implementations of the cohort operators.

These implement Definitions 4-6 directly, row by row, over an in-memory
:class:`~repro.table.ActivityTable`. They are deliberately naive — clarity
over speed — and serve as the *specification* that every engine
(COHANA's vectorized and iterator executors, the SQL scheme, the MV scheme)
is differential-tested against.

One documented deviation from the letter of Definition 5: tuples of users
that never performed the birth action are dropped by :func:`age_select`
(the definition's ``d[At] > t^{i,e}`` comparison with ``t = -1`` would
retain them when ``C`` holds). Such users can never contribute to cohort
aggregation — they have no cohort — so every complete cohort query returns
identical results under either reading, and dropping them mirrors what the
COHANA scan does physically.
"""

from __future__ import annotations

import numpy as np

from repro.cohort.aggregates import make_accumulator
from repro.cohort.concepts import (
    NEVER_BORN,
    bin_time,
    birth_times,
    birth_tuples,
    normalize_age,
)
from repro.cohort.conditions import Condition
from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.schema import ColumnRole, format_timestamp
from repro.table import ActivityTable


def cohort_label(birth_row: dict, query: CohortQuery,
                 schema) -> tuple:
    """The cohort identifier ``d^{i,e}[L]`` for a user's birth tuple.

    Dimension attributes contribute their birth value verbatim; the time
    attribute contributes its bin start formatted as a date, producing the
    paper's "2013-05-19 launch cohort" style labels. Every engine uses this
    same function so labels agree across schemes.
    """
    label = []
    for name in query.cohort_by:
        spec = schema.column(name)
        if spec.role is ColumnRole.TIME:
            start = bin_time(birth_row[name], query.cohort_time_bin,
                             query.time_bin_origin)
            label.append(format_timestamp(start))
        else:
            label.append(birth_row[name])
    return tuple(label)


def birth_select(table: ActivityTable, condition: Condition,
                 birth_action: str) -> ActivityTable:
    """Definition 4: retain all tuples of users whose birth tuple satisfies
    ``condition``; drop every tuple of other users (including users that
    never performed the birth action)."""
    tuples = birth_tuples(table, birth_action)
    qualified = {user for user, birth_row in tuples.items()
                 if condition.evaluate_row(birth_row, birth_row, None)}
    users = table.users
    keep = np.fromiter((users[i] in qualified for i in range(len(table))),
                       dtype=bool, count=len(table))
    return table.take(np.flatnonzero(keep))


def age_select(table: ActivityTable, condition: Condition,
               birth_action: str, age_unit: str = "day") -> ActivityTable:
    """Definition 5: retain every birth-instant tuple, plus age tuples
    satisfying ``condition`` (which may reference ``AGE`` and
    ``Birth(attr)``)."""
    births = birth_times(table, birth_action)
    b_tuples = birth_tuples(table, birth_action)
    time_name = table.schema.time.name
    user_name = table.schema.user.name
    keep = []
    for i, row in enumerate(table.iter_rows()):
        user = row[user_name]
        t_birth = births.get(user, NEVER_BORN)
        if t_birth == NEVER_BORN:
            continue  # documented deviation, see module docstring
        if row[time_name] == t_birth:
            keep.append(i)
            continue
        if row[time_name] > t_birth:
            age = normalize_age(row[time_name] - t_birth, age_unit)
            if condition.evaluate_row(row, b_tuples[user], age):
                keep.append(i)
    return table.take(np.asarray(keep, dtype=np.int64))


def cohort_aggregate(table: ActivityTable,
                     query: CohortQuery) -> CohortResult:
    """Definition 6: cohort users by their birth tuples' ``L`` projection,
    then aggregate age activity tuples per (cohort, age) bucket.

    Only buckets with positive age are reported (the paper computes the
    metric "only at positive ages" and Table 3 starts at age 1). The
    cohort size ``s`` counts the distinct users of the cohort regardless
    of whether they produced qualifying age tuples.
    """
    schema = table.schema
    births = birth_times(table, query.birth_action)
    b_tuples = birth_tuples(table, query.birth_action)
    user_name = schema.user.name
    time_name = schema.time.name

    cohort_users: dict[tuple, set] = {}
    buckets: dict[tuple, list] = {}
    for row in table.iter_rows():
        user = row[user_name]
        t_birth = births.get(user, NEVER_BORN)
        if t_birth == NEVER_BORN:
            continue
        label = cohort_label(b_tuples[user], query, schema)
        cohort_users.setdefault(label, set()).add(user)
        age = normalize_age(row[time_name] - t_birth, query.age_unit)
        if age > 0:
            key = (label, age)
            if key not in buckets:
                buckets[key] = [make_accumulator(a.func)
                                for a in query.aggregates]
            for acc, agg in zip(buckets[key], query.aggregates):
                value = row[agg.column] if agg.column else None
                acc.add(value, user)

    rows = []
    for (label, age) in sorted(buckets,
                               key=lambda k: (tuple(map(str, k[0])), k[1])):
        accs = buckets[(label, age)]
        rows.append((*label, len(cohort_users[label]), age,
                     *(acc.result() for acc in accs)))
    return CohortResult(columns=query.output_columns, rows=rows,
                        n_cohort_columns=len(query.cohort_by))


def evaluate(query: CohortQuery, table: ActivityTable) -> CohortResult:
    """Evaluate a full cohort query: ``γ^c(σ^g(σ^b(D)))``.

    By Equation (1) the two selections commute, so this fixed order is
    general.
    """
    query.validate(table.schema)
    selected = birth_select(table, query.birth_condition,
                            query.birth_action)
    selected = age_select(selected, query.age_condition,
                          query.birth_action, query.age_unit)
    return cohort_aggregate(selected, query)
