"""Condition ASTs for birth and age selection (Definitions 4 and 5).

A condition is a propositional formula over comparisons whose operands are

* plain attribute references (``country = 'Australia'``),
* ``Birth(attr)`` references — the attribute value of the *birth* activity
  tuple of the row's user (Section 3.3.2),
* ``AGE`` — the row's normalized age (only meaningful in age selections),
* literals.

The same AST is shared by every evaluation scheme in the library: the
row-at-a-time oracle evaluates it with :meth:`Condition.evaluate_row`; the
COHANA engine compiles it to vectorized numpy masks; the baseline schemes
translate it to SQL text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import QueryError

# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


class Operand:
    """Base class for comparison operands."""

    def value(self, row: Mapping, birth_row: Mapping | None, age):
        raise NotImplementedError

    def plain_attributes(self) -> set[str]:
        """Attributes read from the row itself."""
        return set()

    def birth_attributes(self) -> set[str]:
        """Attributes read through ``Birth()``."""
        return set()

    def uses_age(self) -> bool:
        return False


@dataclass(frozen=True)
class AttrRef(Operand):
    """A plain column reference."""

    name: str

    def value(self, row, birth_row, age):
        try:
            return row[self.name]
        except KeyError:
            raise QueryError(f"row has no attribute {self.name!r}") from None

    def plain_attributes(self):
        return {self.name}

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class BirthRef(Operand):
    """``Birth(attr)`` — the user's birth-tuple value of ``attr``."""

    name: str

    def value(self, row, birth_row, age):
        if birth_row is None:
            raise QueryError(
                f"Birth({self.name}) evaluated without a birth tuple")
        try:
            return birth_row[self.name]
        except KeyError:
            raise QueryError(
                f"birth tuple has no attribute {self.name!r}") from None

    def birth_attributes(self):
        return {self.name}

    def __str__(self):
        return f"Birth({self.name})"


@dataclass(frozen=True)
class AgeRef(Operand):
    """``AGE`` — the row's normalized age relative to the user's birth."""

    def value(self, row, birth_row, age):
        if age is None:
            raise QueryError("AGE referenced outside an age selection")
        return age

    def uses_age(self):
        return True

    def __str__(self):
        return "AGE"


@dataclass(frozen=True)
class Literal(Operand):
    """A constant."""

    raw: object

    def value(self, row, birth_row, age):
        return self.raw

    def __str__(self):
        if isinstance(self.raw, str):
            return f"'{self.raw}'"
        return str(self.raw)


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


class Condition:
    """Base class for boolean conditions."""

    def evaluate_row(self, row: Mapping, birth_row: Mapping | None = None,
                     age=None) -> bool:
        """Evaluate against one activity tuple.

        Args:
            row: the tuple's ``{column: value}`` mapping.
            birth_row: the user's birth tuple (needed by ``Birth()``).
            age: the tuple's normalized age (needed by ``AGE``).
        """
        raise NotImplementedError

    def plain_attributes(self) -> set[str]:
        raise NotImplementedError

    def birth_attributes(self) -> set[str]:
        raise NotImplementedError

    def uses_age(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The always-true condition (an omitted optional clause)."""

    def evaluate_row(self, row, birth_row=None, age=None):
        return True

    def plain_attributes(self):
        return set()

    def birth_attributes(self):
        return set()

    def uses_age(self):
        return False

    def __str__(self):
        return "TRUE"


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Condition):
    """A binary comparison ``left op right``."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self):
        if self.op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def evaluate_row(self, row, birth_row=None, age=None):
        lhs = self.left.value(row, birth_row, age)
        rhs = self.right.value(row, birth_row, age)
        return bool(_COMPARATORS[self.op](lhs, rhs))

    def plain_attributes(self):
        return self.left.plain_attributes() | self.right.plain_attributes()

    def birth_attributes(self):
        return self.left.birth_attributes() | self.right.birth_attributes()

    def uses_age(self):
        return self.left.uses_age() or self.right.uses_age()

    def __str__(self):
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Between(Condition):
    """``operand BETWEEN low AND high`` (inclusive on both ends)."""

    operand: Operand
    low: Operand
    high: Operand

    def evaluate_row(self, row, birth_row=None, age=None):
        v = self.operand.value(row, birth_row, age)
        return bool(self.low.value(row, birth_row, age) <= v
                    <= self.high.value(row, birth_row, age))

    def plain_attributes(self):
        return (self.operand.plain_attributes()
                | self.low.plain_attributes()
                | self.high.plain_attributes())

    def birth_attributes(self):
        return (self.operand.birth_attributes()
                | self.low.birth_attributes()
                | self.high.birth_attributes())

    def uses_age(self):
        return (self.operand.uses_age() or self.low.uses_age()
                or self.high.uses_age())

    def __str__(self):
        return f"{self.operand} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class InList(Condition):
    """``operand IN [v1, v2, ...]``."""

    operand: Operand
    values: tuple

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))

    def evaluate_row(self, row, birth_row=None, age=None):
        return self.operand.value(row, birth_row, age) in self.values

    def plain_attributes(self):
        return self.operand.plain_attributes()

    def birth_attributes(self):
        return self.operand.birth_attributes()

    def uses_age(self):
        return self.operand.uses_age()

    def __str__(self):
        inner = ", ".join(str(Literal(v)) for v in self.values)
        return f"{self.operand} IN [{inner}]"


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of sub-conditions."""

    parts: tuple

    def __post_init__(self):
        object.__setattr__(self, "parts", tuple(self.parts))

    def evaluate_row(self, row, birth_row=None, age=None):
        return all(p.evaluate_row(row, birth_row, age) for p in self.parts)

    def plain_attributes(self):
        return set().union(*(p.plain_attributes() for p in self.parts),
                           set())

    def birth_attributes(self):
        return set().union(*(p.birth_attributes() for p in self.parts),
                           set())

    def uses_age(self):
        return any(p.uses_age() for p in self.parts)

    def __str__(self):
        return " AND ".join(
            f"({p})" if isinstance(p, Or) else str(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of sub-conditions."""

    parts: tuple

    def __post_init__(self):
        object.__setattr__(self, "parts", tuple(self.parts))

    def evaluate_row(self, row, birth_row=None, age=None):
        return any(p.evaluate_row(row, birth_row, age) for p in self.parts)

    def plain_attributes(self):
        return set().union(*(p.plain_attributes() for p in self.parts),
                           set())

    def birth_attributes(self):
        return set().union(*(p.birth_attributes() for p in self.parts),
                           set())

    def uses_age(self):
        return any(p.uses_age() for p in self.parts)

    def __str__(self):
        return " OR ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Not(Condition):
    """Negation."""

    inner: Condition

    def evaluate_row(self, row, birth_row=None, age=None):
        return not self.inner.evaluate_row(row, birth_row, age)

    def plain_attributes(self):
        return self.inner.plain_attributes()

    def birth_attributes(self):
        return self.inner.birth_attributes()

    def uses_age(self):
        return self.inner.uses_age()

    def __str__(self):
        return f"NOT ({self.inner})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def attr(name: str) -> AttrRef:
    """Shorthand for :class:`AttrRef`."""
    return AttrRef(name)


def birth(name: str) -> BirthRef:
    """Shorthand for :class:`BirthRef` (the paper's ``Birth()``)."""
    return BirthRef(name)


def age_ref() -> AgeRef:
    """Shorthand for :class:`AgeRef` (the ``AGE`` keyword)."""
    return AgeRef()


def lit(value) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def eq(column: str, value) -> Compare:
    """``column = value``."""
    return Compare(attr(column), "=", lit(value))


def conjoin(*conditions: Condition) -> Condition:
    """AND together conditions, dropping TrueConditions; () -> TRUE."""
    parts = [c for c in conditions if not isinstance(c, TrueCondition)]
    if not parts:
        return TrueCondition()
    if len(parts) == 1:
        return parts[0]
    flattened: list[Condition] = []
    for p in parts:
        if isinstance(p, And):
            flattened.extend(p.parts)
        else:
            flattened.append(p)
    return And(tuple(flattened))
