"""The declarative cohort query (Section 3.4).

A :class:`CohortQuery` captures the paper's extended SELECT statement::

    SELECT <cohort attrs>, COHORTSIZE, AGE, <aggregates>
    FROM <table>
    BIRTH FROM action = <e> [AND <birth condition>]
    [AGE ACTIVITIES IN <age condition>]
    COHORT BY <attrs>

All engines and evaluation schemes in the library accept this object; the
textual syntax is parsed into it by :mod:`repro.cohana.parser`. The same
birth action implicitly applies to every operator in the query, matching
Section 3.4's constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import QueryError
from repro.cohort.aggregates import AggregateSpec
from repro.cohort.conditions import Condition, TrueCondition
from repro.schema import (
    TIME_UNIT_SECONDS,
    ActivitySchema,
    ColumnRole,
    ColumnSpec,
    LogicalType,
)


@dataclass(frozen=True)
class SessionizeSpec:
    """Gap-based sessionization: a derived per-user session ordinal.

    Within each user's time-ordered activity run, the first tuple opens
    session 1 and a tuple opens a new session exactly when the gap to
    the previous tuple *exceeds* ``gap`` seconds (a gap equal to ``gap``
    stays in the same session). The ordinal is exposed as a derived
    INT measure column named ``column``, usable in birth/age predicates,
    COHORT BY and aggregates like any stored column.
    """

    column: str = "session"
    gap: float = 1800.0

    def __post_init__(self):
        if not self.column:
            raise QueryError("SESSIONIZE requires a column name")
        if not self.gap > 0:
            raise QueryError("SESSIONIZE gap must be positive, got "
                             f"{self.gap!r}")


@dataclass(frozen=True)
class CohortQuery:
    """A single cohort query over a single activity table.

    Attributes:
        birth_action: the birth action ``e`` shared by all operators.
        cohort_by: the cohort attribute set ``L`` (order defines output
            columns). May include the time column, which is binned.
        aggregates: the measures to report per (cohort, age) bucket.
        birth_condition: ``σ^b`` condition over the birth tuple (optional).
        age_condition: ``σ^g`` condition over age tuples; may reference
            ``AGE`` and ``Birth(attr)`` (optional).
        age_unit: unit for age normalization ('day' by default).
        cohort_time_bin: bin width when cohorting by the time column.
        time_bin_origin: epoch-seconds alignment origin of time bins.
        table: source table name (used by engines with a catalog).
        sessionize: optional gap-based session derivation; adds a
            derived INT column visible to predicates, COHORT BY and
            aggregates (see :class:`SessionizeSpec`).
    """

    birth_action: str
    cohort_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    birth_condition: Condition = field(default_factory=TrueCondition)
    age_condition: Condition = field(default_factory=TrueCondition)
    age_unit: str = "day"
    cohort_time_bin: str = "week"
    time_bin_origin: int = 0
    table: str | None = None
    sessionize: SessionizeSpec | None = None

    def __post_init__(self):
        object.__setattr__(self, "cohort_by", tuple(self.cohort_by))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        if not self.birth_action:
            raise QueryError("a cohort query requires a birth action")
        if not self.aggregates:
            raise QueryError("a cohort query requires at least one "
                             "aggregate in its SELECT list")
        if self.age_unit not in TIME_UNIT_SECONDS:
            raise QueryError(f"unknown age unit {self.age_unit!r}")
        if self.cohort_time_bin not in TIME_UNIT_SECONDS:
            raise QueryError(
                f"unknown cohort time bin {self.cohort_time_bin!r}")

    # -- validation ----------------------------------------------------------

    def validate(self, schema: ActivitySchema) -> None:
        """Check the query is well-formed for ``schema``.

        Raises:
            QueryError: on unknown attributes, non-numeric aggregate
                columns, cohort attributes violating Definition 6, a birth
                condition using ``AGE``/``Birth()``, or an age condition
                referencing attributes that do not exist.
        """
        schema = self.effective_schema(schema)
        try:
            schema.validate_cohort_attributes(list(self.cohort_by))
        except Exception as exc:
            raise QueryError(str(exc)) from None
        for agg in self.aggregates:
            if agg.column is not None:
                spec = schema.column(agg.column)
                if agg.needs_column and spec.role is not ColumnRole.MEASURE:
                    raise QueryError(
                        f"{agg} aggregates non-measure column "
                        f"{agg.column!r}")
        if self.birth_condition.uses_age():
            raise QueryError("the birth selection condition cannot "
                             "reference AGE")
        if self.birth_condition.birth_attributes():
            raise QueryError(
                "the birth selection condition applies to the birth tuple "
                "itself; use plain attribute references, not Birth()")
        for name in (self.birth_condition.plain_attributes()
                     | self.age_condition.plain_attributes()
                     | self.age_condition.birth_attributes()):
            schema.column(name)  # raises on unknown columns

    # -- derived properties ----------------------------------------------------

    def effective_schema(self, schema: ActivitySchema) -> ActivitySchema:
        """``schema`` augmented with this query's derived columns.

        The sessionize column appears as an INT measure so it can be
        referenced anywhere a stored measure can: predicates, COHORT BY
        and (numeric) aggregates. Raises QueryError if the derived name
        collides with a stored column.
        """
        if self.sessionize is None:
            return schema
        name = self.sessionize.column
        if name in schema:
            raise QueryError(
                f"SESSIONIZE column {name!r} collides with a stored "
                "column; pick another name with AS")
        return ActivitySchema(schema.columns + (
            ColumnSpec(name, LogicalType.INT, ColumnRole.MEASURE),))

    @property
    def output_columns(self) -> list[str]:
        """Column names of the query result relation."""
        return [*self.cohort_by, "cohort_size", "age",
                *(a.alias for a in self.aggregates)]

    def with_birth_condition(self, condition: Condition) -> "CohortQuery":
        """A copy with a different birth condition (planner helper)."""
        return replace(self, birth_condition=condition)

    def with_age_condition(self, condition: Condition) -> "CohortQuery":
        """A copy with a different age condition (planner helper)."""
        return replace(self, age_condition=condition)
