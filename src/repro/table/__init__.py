"""In-memory activity tables, builders and CSV I/O."""

from repro.table.activity import ActivityTable
from repro.table.builder import ActivityTableBuilder
from repro.table.csv_io import read_csv, write_csv

__all__ = ["ActivityTable", "ActivityTableBuilder", "read_csv", "write_csv"]
