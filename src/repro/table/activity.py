"""In-memory activity tables.

An :class:`ActivityTable` pairs an :class:`~repro.schema.ActivitySchema`
with one numpy array per column. It is the interchange format of the whole
library: the data generator produces one, the COHANA writer compresses one,
the relational engines load one as a base table, and the cohort-algebra
oracle evaluates Definitions 1–6 directly against one.

The paper stores activity tables sorted by the primary key
``(Au, At, Ae)`` which yields the *clustering* property (a user's tuples
are contiguous) and the *time-ordering* property (each user's tuples are
chronological). :meth:`ActivityTable.sorted_by_primary_key` produces that
layout and :meth:`ActivityTable.user_blocks` exposes it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import PrimaryKeyError, SchemaError
from repro.schema import ActivitySchema, ColumnSpec, LogicalType, coerce_value


class ActivityTable:
    """A columnar, immutable-by-convention activity table.

    Attributes:
        schema: the table's :class:`ActivitySchema`.
    """

    def __init__(self, schema: ActivitySchema,
                 columns: Mapping[str, np.ndarray | Sequence]):
        self.schema = schema
        self._columns: dict[str, np.ndarray] = {}
        length = None
        for spec in schema:
            if spec.name not in columns:
                raise SchemaError(f"missing column data for {spec.name!r}")
            arr = _as_array(columns[spec.name], spec)
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise SchemaError(
                    f"column {spec.name!r} has {len(arr)} values, "
                    f"expected {length}")
            self._columns[spec.name] = arr
        extra = set(columns) - set(schema.names())
        if extra:
            raise SchemaError(f"columns not in schema: {sorted(extra)}")
        self._length = length if length is not None else 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: ActivitySchema,
                  rows: Iterable[Sequence | Mapping]) -> "ActivityTable":
        """Build a table from an iterable of row tuples or row dicts.

        Values are coerced to the schema's types (so timestamp strings in
        the paper's ``2013/05/19:1000`` format are accepted).
        """
        names = schema.names()
        buffers: dict[str, list] = {name: [] for name in names}
        for row in rows:
            if isinstance(row, Mapping):
                values = [row[name] for name in names]
            else:
                if len(row) != len(names):
                    raise SchemaError(
                        f"row has {len(row)} values, expected {len(names)}")
                values = list(row)
            for name, value in zip(names, values):
                buffers[name].append(
                    coerce_value(value, schema.column(name).ltype))
        return cls(schema, buffers)

    @classmethod
    def empty(cls, schema: ActivitySchema) -> "ActivityTable":
        """An activity table with zero rows."""
        return cls(schema, {c.name: [] for c in schema})

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        """The backing array for ``name`` (do not mutate)."""
        self.schema.column(name)
        return self._columns[name]

    @property
    def users(self) -> np.ndarray:
        """The Au column."""
        return self._columns[self.schema.user.name]

    @property
    def times(self) -> np.ndarray:
        """The At column (int64 epoch seconds)."""
        return self._columns[self.schema.time.name]

    @property
    def actions(self) -> np.ndarray:
        """The Ae column."""
        return self._columns[self.schema.action.name]

    def row(self, i: int) -> dict:
        """Row ``i`` as a ``{column: value}`` dict."""
        return {name: _as_python(self._columns[name][i])
                for name in self.schema.names()}

    def iter_rows(self) -> Iterator[dict]:
        """Iterate rows as dicts (slow; for tests and small tables)."""
        for i in range(self._length):
            yield self.row(i)

    def to_rows(self) -> list[tuple]:
        """All rows as tuples in schema column order."""
        names = self.schema.names()
        cols = [self._columns[n] for n in names]
        return [tuple(_as_python(col[i]) for col in cols)
                for i in range(self._length)]

    def take(self, indices: np.ndarray) -> "ActivityTable":
        """A new table containing the rows at ``indices`` (in that order)."""
        return ActivityTable(
            self.schema,
            {name: arr[indices] for name, arr in self._columns.items()})

    def slice(self, start: int, stop: int) -> "ActivityTable":
        """A new table containing rows ``start:stop``."""
        return ActivityTable(
            self.schema,
            {name: arr[start:stop] for name, arr in self._columns.items()})

    def concat(self, other: "ActivityTable") -> "ActivityTable":
        """Concatenate two tables that share a schema."""
        if other.schema != self.schema:
            raise SchemaError("cannot concat tables with different schemas")
        return ActivityTable(
            self.schema,
            {name: np.concatenate([self._columns[name],
                                   other._columns[name]])
             for name in self.schema.names()})

    # -- primary key & layout ------------------------------------------------

    def primary_key_rows(self) -> list[tuple]:
        """The (Au, At, Ae) triple of every row."""
        u, t, a = self.users, self.times, self.actions
        return [(u[i], int(t[i]), a[i]) for i in range(self._length)]

    def check_primary_key(self) -> None:
        """Raise :class:`PrimaryKeyError` on duplicate (Au, At, Ae)."""
        seen: set[tuple] = set()
        for key in self.primary_key_rows():
            if key in seen:
                raise PrimaryKeyError(
                    f"duplicate primary key {key!r}: each user may perform "
                    "a given action at most once per time instant")
            seen.add(key)

    def sorted_by_primary_key(self) -> "ActivityTable":
        """Return a copy sorted by (Au, At, Ae).

        This is the paper's storage order: it clusters each user's tuples
        and orders them chronologically (Section 4.1).
        """
        u = self.users
        t = self.times
        a = self.actions
        order = sorted(range(self._length),
                       key=lambda i: (u[i], int(t[i]), a[i]))
        return self.take(np.asarray(order, dtype=np.int64))

    def is_sorted_by_primary_key(self) -> bool:
        """True if rows are already in (Au, At, Ae) order."""
        keys = self.primary_key_rows()
        return all(keys[i] <= keys[i + 1] for i in range(len(keys) - 1))

    def user_blocks(self) -> Iterator[tuple[str, int, int]]:
        """Iterate ``(user, start, stop)`` runs of a sorted table.

        Requires the clustering property: call on a table produced by
        :meth:`sorted_by_primary_key` (or otherwise user-clustered).
        """
        users = self.users
        n = self._length
        start = 0
        while start < n:
            stop = start + 1
            while stop < n and users[stop] == users[start]:
                stop += 1
            yield str(users[start]), start, stop
            start = stop

    def distinct_users(self) -> list[str]:
        """Sorted list of distinct user ids."""
        return sorted(set(self.users.tolist()))

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, ActivityTable):
            return NotImplemented
        return (self.schema == other.schema
                and self.to_rows() == other.to_rows())

    def __repr__(self) -> str:
        return (f"ActivityTable({self._length} rows, "
                f"columns={self.schema.names()})")


def _as_array(values, spec: ColumnSpec) -> np.ndarray:
    dtype = spec.ltype.numpy_dtype()
    if isinstance(values, np.ndarray):
        if spec.ltype is LogicalType.STRING:
            if values.dtype == object or values.dtype.kind in ("U", "S"):
                return values.astype(object)
            raise SchemaError(
                f"column {spec.name!r} expects strings, got {values.dtype}")
        return values.astype(dtype, copy=False)
    arr = np.empty(len(values), dtype=dtype)
    if spec.ltype is LogicalType.STRING:
        for i, v in enumerate(values):
            if not isinstance(v, str):
                raise SchemaError(
                    f"column {spec.name!r} expects strings, got {v!r}")
            arr[i] = v
    else:
        arr[:] = values
    return arr


def _as_python(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
