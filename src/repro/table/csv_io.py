"""CSV import/export for activity tables.

The paper's raw dataset is a CSV of activity tuples; this module provides
the equivalent ingest path. The header row must match the schema's column
names (order-insensitive).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SchemaError
from repro.schema import ActivitySchema, LogicalType, format_timestamp
from repro.table.activity import ActivityTable
from repro.table.builder import ActivityTableBuilder


def read_csv(path: str | Path, schema: ActivitySchema,
             sort: bool = True) -> ActivityTable:
    """Load an activity table from ``path``.

    Timestamp columns accept any format understood by
    :func:`repro.schema.parse_timestamp`.
    """
    with open(path, newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV file") from None
        missing = [n for n in schema.names() if n not in header]
        if missing:
            raise SchemaError(f"{path}: missing columns {missing}")
        positions = [header.index(n) for n in schema.names()]
        builder = ActivityTableBuilder(schema)
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}:{lineno}: expected {len(header)} fields, "
                    f"got {len(row)}")
            builder.append_row([row[p] for p in positions])
    return builder.build(sort=sort)


def write_csv(table: ActivityTable, path: str | Path,
              timestamps_as_text: bool = True) -> None:
    """Write ``table`` to ``path`` with a header row."""
    schema = table.schema
    names = schema.names()
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(names)
        for row in table.iter_rows():
            out = []
            for name in names:
                value = row[name]
                if (timestamps_as_text
                        and schema.column(name).ltype
                        is LogicalType.TIMESTAMP):
                    value = format_timestamp(value)
                out.append(value)
            writer.writerow(out)
