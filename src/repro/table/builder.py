"""Incremental construction of activity tables."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema import ActivitySchema, coerce_value
from repro.table.activity import ActivityTable


class ActivityTableBuilder:
    """Accumulates rows and produces an :class:`ActivityTable`.

    Example:
        >>> from repro.schema import ActivitySchema
        >>> schema = ActivitySchema.build("player", "time", "action",
        ...                               dimensions=["country"],
        ...                               measures=["gold"])
        >>> b = ActivityTableBuilder(schema)
        >>> b.append(player="001", time="2013/05/19:1000",
        ...          action="launch", country="Australia", gold=0)
        >>> table = b.build()
        >>> len(table)
        1
    """

    def __init__(self, schema: ActivitySchema):
        self.schema = schema
        self._buffers: dict[str, list] = {name: [] for name in schema.names()}
        self._count = 0

    def append(self, **values) -> "ActivityTableBuilder":
        """Append one activity tuple given as keyword arguments.

        Every schema column must be supplied; values are coerced to the
        column types. Returns self for chaining.
        """
        missing = [n for n in self.schema.names() if n not in values]
        if missing:
            raise SchemaError(f"missing values for columns: {missing}")
        extra = [n for n in values if n not in self.schema]
        if extra:
            raise SchemaError(f"unknown columns: {extra}")
        for name in self.schema.names():
            ltype = self.schema.column(name).ltype
            self._buffers[name].append(coerce_value(values[name], ltype))
        self._count += 1
        return self

    def append_row(self, row) -> "ActivityTableBuilder":
        """Append one row given as a sequence in schema column order."""
        names = self.schema.names()
        if len(row) != len(names):
            raise SchemaError(
                f"row has {len(row)} values, expected {len(names)}")
        return self.append(**dict(zip(names, row)))

    def __len__(self) -> int:
        return self._count

    def build(self, sort: bool = True,
              check_primary_key: bool = True) -> ActivityTable:
        """Finish and return the table.

        Args:
            sort: sort by the (Au, At, Ae) primary key (the paper's
                storage order).
            check_primary_key: raise on duplicate (Au, At, Ae) triples.
        """
        table = ActivityTable(self.schema, self._buffers)
        if check_primary_key:
            table.check_primary_key()
        if sort:
            table = table.sorted_by_primary_key()
        return table
