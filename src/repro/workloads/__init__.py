"""The paper's benchmark workload: queries Q1-Q8."""

from repro.workloads.queries import (
    DEFAULT_RANGE,
    MAIN_QUERIES,
    bind,
    day_offset,
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
    q8,
)

__all__ = ["DEFAULT_RANGE", "MAIN_QUERIES", "bind", "day_offset",
           "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"]
