"""The paper's benchmark queries Q1-Q8 (Section 5.2).

Q1-Q4 incrementally add operators: cohort aggregation alone (Q1),
+ birth selection (Q2), + age selection (Q3), and all three (Q4).
Q5/Q6 are the birth-selection sweeps of Figure 8; Q7/Q8 the
age-selection sweeps of Figure 9.

Each function returns the query in the cohort query language; use
:func:`bind` (or ``CohanaEngine.parse``) to get the bound
:class:`~repro.cohort.CohortQuery` for a concrete schema.
"""

from __future__ import annotations

from repro.cohana.binder import bind_cohort_query
from repro.cohana.parser import parse_cohort_query
from repro.cohort.query import CohortQuery
from repro.schema import ActivitySchema, format_timestamp

#: Default birth date range used by Q2/Q4 (the paper's 05-21..05-27).
DEFAULT_RANGE = ("2013-05-21", "2013-05-27")


def q1(table: str = "GameActions") -> str:
    """Q1: retention of country launch cohorts."""
    return (f"SELECT country, COHORTSIZE, AGE, UserCount() "
            f"FROM {table} BIRTH FROM action = \"launch\" "
            f"COHORT BY country")


def q2(table: str = "GameActions",
       date_range: tuple[str, str] = DEFAULT_RANGE) -> str:
    """Q2: Q1 restricted to cohorts born in a date range."""
    d1, d2 = date_range
    return (f"SELECT country, COHORTSIZE, AGE, UserCount() "
            f"FROM {table} BIRTH FROM action = \"launch\" AND "
            f"time BETWEEN \"{d1}\" AND \"{d2}\" "
            f"COHORT BY country")


def q3(table: str = "GameActions") -> str:
    """Q3: average shopping gold of country shop cohorts."""
    return (f"SELECT country, COHORTSIZE, AGE, Avg(gold) "
            f"FROM {table} BIRTH FROM action = \"shop\" "
            f"AGE ACTIVITIES IN action = \"shop\" "
            f"COHORT BY country")


def q4(table: str = "GameActions",
       date_range: tuple[str, str] = DEFAULT_RANGE) -> str:
    """Q4: all three operators, with Birth(country) in the age filter."""
    d1, d2 = date_range
    return (f"SELECT country, COHORTSIZE, AGE, Avg(gold) "
            f"FROM {table} BIRTH FROM action = \"shop\" AND "
            f"time BETWEEN \"{d1}\" AND \"{d2}\" AND "
            f"role = \"dwarf\" AND "
            f"country IN [\"China\", \"Australia\", \"United States\"] "
            f"AGE ACTIVITIES IN action = \"shop\" AND "
            f"country = Birth(country) "
            f"COHORT BY country")


def q5(d1: str, d2: str, table: str = "GameActions") -> str:
    """Q5: Q1 with a [d1, d2] birth-time window (Figure 8's sweep)."""
    return (f"SELECT country, COHORTSIZE, AGE, UserCount() "
            f"FROM {table} "
            f"BIRTH FROM action = \"launch\" AND "
            f"time BETWEEN \"{d1}\" AND \"{d2}\" "
            f"COHORT BY country")


def q6(d1: str, d2: str, table: str = "GameActions") -> str:
    """Q6: Q3 with a [d1, d2] birth-time window (Figure 8's sweep)."""
    return (f"SELECT country, COHORTSIZE, AGE, Avg(gold) "
            f"FROM {table} "
            f"BIRTH FROM action = \"shop\" AND "
            f"time BETWEEN \"{d1}\" AND \"{d2}\" "
            f"AGE ACTIVITIES IN action = \"shop\" "
            f"COHORT BY country")


def q7(g: int, table: str = "GameActions") -> str:
    """Q7: Q1 restricted to ages below ``g`` days (Figure 9's sweep)."""
    return (f"SELECT country, COHORTSIZE, AGE, UserCount() "
            f"FROM {table} BIRTH FROM action = \"launch\" "
            f"AGE ACTIVITIES IN AGE < {g} "
            f"COHORT BY country")


def q8(g: int, table: str = "GameActions") -> str:
    """Q8: Q3 restricted to ages below ``g`` days (Figure 9's sweep)."""
    return (f"SELECT country, COHORTSIZE, AGE, Avg(gold) "
            f"FROM {table} BIRTH FROM action = \"shop\" "
            f"AGE ACTIVITIES IN action = \"shop\" AND AGE < {g} "
            f"COHORT BY country")


#: The comparative-study queries of Figures 6 and 11, by name.
MAIN_QUERIES = {"Q1": q1, "Q2": q2, "Q3": q3, "Q4": q4}


def bind(text: str, schema: ActivitySchema,
         **kw) -> CohortQuery:
    """Parse + bind a query text for ``schema``."""
    return bind_cohort_query(parse_cohort_query(text), schema, **kw)


def day_offset(start: str, days: int) -> str:
    """The date ``days`` after ``start`` (for building Q5/Q6 sweeps)."""
    from repro.schema import parse_timestamp
    return format_timestamp(parse_timestamp(start) + days * 86400)
