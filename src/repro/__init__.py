"""repro — a from-scratch reproduction of "Cohort Query Processing"
(Jiang et al., VLDB 2016) and the COHANA engine.

Public API highlights:

* :class:`repro.schema.ActivitySchema` / :class:`repro.table.ActivityTable`
  — the activity data model (Section 3.1).
* :class:`repro.cohort.CohortQuery` — the declarative cohort query
  (Section 3.4), parseable from the paper's SQL-style syntax.
* :class:`repro.cohana.CohanaEngine` — the columnar cohort engine
  (Section 4): compressed storage, pruning, push-down, skipping scan.
* :mod:`repro.baselines` — the non-intrusive SQL and materialized-view
  schemes (Section 2) on both bundled relational engines.
* :mod:`repro.datagen` — the synthetic mobile-game workload used by the
  benchmark suite (Section 5).
"""

from repro.schema import ActivitySchema, LogicalType
from repro.table import ActivityTable, ActivityTableBuilder

__version__ = "1.0.0"

__all__ = [
    "ActivitySchema",
    "ActivityTable",
    "ActivityTableBuilder",
    "LogicalType",
    "__version__",
]
