"""The vectorized columnar executor — the MonetDB stand-in.

Executes the same logical plans as :mod:`repro.relational.row_executor`
but operates on whole column arrays: filters are boolean masks, joins are
factorize-and-gather (a vectorized hash join), and group-bys run on dense
integer key codes with ``bincount``/``reduceat`` reductions. This is the
"state-of-the-art columnar database" whose gap to the row engine the
paper's Figure 11 shows.

Internally each operator produces ``(names, columns, n_rows)`` where
``columns`` is a list of numpy arrays positionally parallel to ``names``
(positional, not a dict, so duplicate names from self-joins survive).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ExecutionError
from repro.relational.expressions import (
    FuncCall,
    RelSchema,
    Star,
    eval_batch,
)
from repro.relational.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SubqueryScan,
)
from repro.relational.row_executor import split_equi_conjuncts
from repro.relational.rows import RelTable, _as_column_array


def execute(plan: LogicalPlan,
            lookup: Callable[[str], RelTable]) -> RelTable:
    """Run ``plan`` vectorized; ``lookup`` resolves base-table names."""
    names, columns, n = _run(plan, lookup)
    out_names = [n_.rpartition(".")[2] for n_ in names]
    rows = [tuple(_py(col[i]) for col in columns) for i in range(n)]
    return RelTable(out_names, rows)


def _py(value):
    if isinstance(value, np.generic):
        return value.item()
    return value


def _run(plan: LogicalPlan, lookup):
    """Returns (qualified names, [column arrays], n_rows)."""
    if isinstance(plan, Scan):
        table = lookup(plan.table)
        base = table.as_batch()
        names = plan.output_names()
        columns = [base[q.rpartition(".")[2]] for q in names]
        return names, columns, len(table)
    if isinstance(plan, SubqueryScan):
        names, columns, n = _run(plan.child, lookup)
        return plan.output_names(), columns, n
    if isinstance(plan, Filter):
        names, columns, n = _run(plan.child, lookup)
        schema = RelSchema(names)
        mask = eval_batch(plan.predicate, columns, schema, n).astype(bool)
        return names, [c[mask] for c in columns], int(mask.sum())
    if isinstance(plan, Project):
        names, columns, n = _run(plan.child, lookup)
        schema = RelSchema(names)
        out = [_materialize(eval_batch(e, columns, schema, n), n)
               for e in plan.exprs]
        return list(plan.names), out, n
    if isinstance(plan, Join):
        return _join(plan, lookup)
    if isinstance(plan, Aggregate):
        return _aggregate(plan, lookup)
    if isinstance(plan, Sort):
        names, columns, n = _run(plan.child, lookup)
        schema = RelSchema(names)
        order = np.arange(n)
        for key, ascending in zip(reversed(plan.keys),
                                  reversed(plan.ascending)):
            values = eval_batch(key, columns, schema, n)
            ranks = _rank(_materialize(values, n))
            sorted_idx = np.argsort(ranks[order], kind="stable")
            if not ascending:
                sorted_idx = sorted_idx[::-1]
            order = order[sorted_idx]
        return names, [c[order] for c in columns], n
    if isinstance(plan, Limit):
        names, columns, n = _run(plan.child, lookup)
        count = min(plan.count, n)
        return names, [c[:count] for c in columns], count
    if isinstance(plan, Distinct):
        names, columns, n = _run(plan.child, lookup)
        codes = _combine_codes([_factorize(c)[0] for c in columns], n)
        _, first = np.unique(codes, return_index=True)
        keep = np.sort(first)
        return names, [c[keep] for c in columns], len(keep)
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")


def _materialize(value, n: int) -> np.ndarray:
    if np.isscalar(value) or not isinstance(value, np.ndarray):
        return np.full(n, value)
    return value


def _rank(values: np.ndarray) -> np.ndarray:
    """Dense sortable int codes for any (possibly object) key array."""
    if values.dtype != object:
        return values
    order = sorted(range(len(values)), key=lambda i: str(values[i]))
    ranks = np.empty(len(values), dtype=np.int64)
    rank = 0
    prev = None
    for i in order:
        if prev is None or str(values[i]) != prev:
            prev = str(values[i])
            rank += 1
        ranks[i] = rank
    return ranks


# ---------------------------------------------------------------------------
# Factorization helpers
# ---------------------------------------------------------------------------


def _factorize(arr: np.ndarray) -> tuple[np.ndarray, int]:
    """Dense integer codes for an array; returns (codes, cardinality)."""
    if len(arr) == 0:
        return np.empty(0, dtype=np.int64), 0
    try:
        _, inverse = np.unique(arr, return_inverse=True)
        return inverse.astype(np.int64), int(inverse.max()) + 1
    except TypeError:
        mapping: dict = {}
        codes = np.empty(len(arr), dtype=np.int64)
        for i, v in enumerate(arr):
            codes[i] = mapping.setdefault(v, len(mapping))
        return codes, len(mapping)


def _combine_codes(code_arrays: list[np.ndarray], n: int) -> np.ndarray:
    """Mix several dense code arrays into one (row-wise key codes)."""
    if not code_arrays:
        return np.zeros(n, dtype=np.int64)
    combined = code_arrays[0].astype(np.int64)
    for codes in code_arrays[1:]:
        k = int(codes.max()) + 1 if len(codes) else 1
        combined = combined * k + codes
    return combined


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


def _join(plan: Join, lookup):
    l_names, l_cols, nl = _run(plan.left, lookup)
    r_names, r_cols, nr = _run(plan.right, lookup)
    l_schema = RelSchema(l_names)
    r_schema = RelSchema(r_names)
    out_names = l_names + r_names
    left_keys, right_keys, residual = split_equi_conjuncts(
        plan.predicate, l_schema, r_schema)
    if left_keys and nl and nr:
        l_codes_list, r_codes_list = [], []
        for lk, rk in zip(left_keys, right_keys):
            lvals = eval_batch(lk, l_cols, l_schema, nl)
            rvals = eval_batch(rk, r_cols, r_schema, nr)
            both = np.concatenate([np.asarray(lvals, dtype=object),
                                   np.asarray(rvals, dtype=object)])
            codes, _ = _factorize(both)
            l_codes_list.append(codes[:nl])
            r_codes_list.append(codes[nl:])
        l_key = _combine_codes(l_codes_list, nl)
        r_key = _combine_codes(r_codes_list, nr)
        size = max(int(l_key.max(initial=0)),
                   int(r_key.max(initial=0))) + 1
        counts = np.bincount(r_key, minlength=size)
        starts = np.cumsum(counts) - counts
        r_sorted = np.argsort(r_key, kind="stable")
        per_left = counts[l_key]
        out_left = np.repeat(np.arange(nl), per_left)
        total = int(per_left.sum())
        row_starts = np.cumsum(per_left) - per_left
        within = np.arange(total) - np.repeat(row_starts, per_left)
        out_right = r_sorted[np.repeat(starts[l_key], per_left) + within]
    else:
        # cross join
        out_left = np.repeat(np.arange(nl), nr)
        out_right = np.tile(np.arange(nr), nl)
        residual = plan.predicate
    columns = [c[out_left] for c in l_cols] + [c[out_right]
                                               for c in r_cols]
    n = len(out_left)
    if residual is not None:
        schema = RelSchema(out_names)
        mask = eval_batch(residual, columns, schema, n).astype(bool)
        columns = [c[mask] for c in columns]
        n = int(mask.sum())
    return out_names, columns, n


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _aggregate(plan: Aggregate, lookup):
    names, columns, n = _run(plan.child, lookup)
    schema = RelSchema(names)
    out_names = plan.output_names()

    if plan.group_exprs:
        key_values = [
            _materialize(eval_batch(e, columns, schema, n), n)
            for e in plan.group_exprs]
        codes = _combine_codes([_factorize(v)[0] for v in key_values], n)
        groups, first, inverse = np.unique(codes, return_index=True,
                                           return_inverse=True)
        n_groups = len(groups)
    else:
        key_values = []
        inverse = np.zeros(n, dtype=np.int64)
        first = np.zeros(1 if n else 0, dtype=np.int64)
        n_groups = 1  # global aggregate always yields one row

    out_columns: list[np.ndarray] = []
    for values in key_values:
        out_columns.append(values[first])
    for call in plan.agg_calls:
        if not plan.group_exprs and n == 0:
            out_columns.append(_as_column_array([_empty_result(call)]))
        else:
            out_columns.append(_agg_column(call, inverse, n_groups,
                                           columns, schema, n))
    return out_names, out_columns, n_groups


def _empty_result(call: FuncCall):
    if call.name == "COUNT":
        return 0
    if call.name == "SUM":
        return 0
    return None


def _agg_column(call: FuncCall, group: np.ndarray, n_groups: int,
                columns: list, schema: RelSchema, n: int) -> np.ndarray:
    name = call.name
    if name == "COUNT":
        if call.distinct:
            values = eval_batch(call.args[0], columns, schema, n)
            codes, _ = _factorize(np.asarray(values, dtype=object))
            pairs = np.unique(np.stack([group, codes], axis=1), axis=0)
            return np.bincount(pairs[:, 0], minlength=n_groups
                               ).astype(np.int64)
        return np.bincount(group, minlength=n_groups).astype(np.int64)
    values = eval_batch(call.args[0], columns, schema, n) \
        if call.args and not isinstance(call.args[0], Star) \
        else np.ones(n, dtype=np.int64)
    values = _materialize(values, n)
    if name == "SUM":
        sums = np.bincount(group, weights=values.astype(np.float64),
                           minlength=n_groups)
        if values.dtype.kind == "i":
            return np.round(sums).astype(np.int64)
        return sums
    if name == "AVG":
        sums = np.bincount(group, weights=values.astype(np.float64),
                           minlength=n_groups)
        counts = np.bincount(group, minlength=n_groups)
        out = np.empty(n_groups, dtype=object)
        for i in range(n_groups):
            out[i] = sums[i] / counts[i] if counts[i] else None
        return out
    if name in ("MIN", "MAX"):
        order = np.argsort(group, kind="stable")
        sorted_vals = values[order]
        present = np.unique(group)
        boundaries = np.searchsorted(group[order], present)
        if len(sorted_vals) == 0:
            reduced = sorted_vals
        elif name == "MIN":
            reduced = np.minimum.reduceat(sorted_vals, boundaries)
        else:
            reduced = np.maximum.reduceat(sorted_vals, boundaries)
        out = np.empty(n_groups, dtype=object)
        for i in range(n_groups):
            out[i] = None
        for slot, value in zip(present, reduced):
            out[slot] = _py(value)
        return out
    raise ExecutionError(f"unknown aggregate {name!r}")
