"""The vectorized columnar engine substrate (the MonetDB stand-in)."""

from repro.columnar.executor import execute

__all__ = ["execute"]
