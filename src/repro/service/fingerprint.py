"""Canonical query fingerprints for the caching service.

A fingerprint must satisfy one contract: two calls get the same
fingerprint **iff** they are guaranteed to produce the same result
relation. Three design decisions follow:

* fingerprints are computed from the **bound** :class:`CohortQuery`,
  not the query text — parsing plus binding already normalizes
  whitespace, case of keywords, and implicit defaults, so textual
  variants of one query share a fingerprint;
* the engine's per-table **version token** is folded in — the token
  changes whenever the table registration changes (``replace=True``,
  or a reloaded file whose content digest differs), so a stale result
  can never be served: its fingerprint simply no longer comes up;
* execution knobs (executor kernel, backend, jobs, scan mode,
  push-down, pruning) are **excluded** — the pipeline guarantees
  result parity across all of them (a property the test suite checks
  independently), so results cached under one configuration are valid
  answers for every other. Plans, whose shape *does* depend on those
  knobs, get their own key (:func:`plan_fingerprint`).

Bound queries are trees of frozen dataclasses (conditions, aggregate
specs, literals), whose ``repr`` is deterministic and total — that
``repr`` is the canonical form.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.cohort.query import CohortQuery

#: Bump when the canonical form changes incompatibly, so fingerprints
#: from older layouts cannot collide with current ones.
#: v2: CohortQuery grew the ``sessionize`` field (its repr — the
#: canonical form — changed for every query, sessionized or not).
FINGERPRINT_VERSION = 2


def query_key(query: CohortQuery) -> str:
    """The canonical, version-free identity of a bound query.

    Two bound queries with equal keys request the same result relation
    from the same table name; whether the cached answer is *current*
    is decided by the version token (:func:`result_fingerprint`).
    """
    return f"v{FINGERPRINT_VERSION}|{query!r}"


def result_fingerprint(query: CohortQuery, version_token: str) -> str:
    """Result-cache key: hash of the bound query + table version token."""
    payload = f"{version_token}|{query_key(query)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def view_fingerprint(query: CohortQuery) -> str:
    """Identity of a materialized view *definition*.

    Unlike result fingerprints, no version token is folded in — a view's
    partial store is keyed ``(view_fingerprint, shard content digest)``,
    so freshness is decided per shard, not per table version. The table
    *name* is excluded too (a sharded directory registered under a
    different catalog name still owns the same persisted partials);
    everything semantic — conditions, aggregates, age unit, time-bin
    origin — is part of the bound query's canonical ``repr``.
    """
    canonical = replace(query, table=None)
    payload = f"view{FINGERPRINT_VERSION}|{canonical!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def plan_fingerprint(query: CohortQuery, version_token: str,
                     pushdown: bool = True, prune: bool = True,
                     scan_mode: str = "auto") -> str:
    """Plan-cache key: the result fingerprint's inputs plus the
    planning knobs that shape the physical plan (push-down, pruning,
    scan mode) — unlike results, plans differ across these."""
    payload = (f"{version_token}|pushdown={pushdown}|prune={prune}|"
               f"scan_mode={scan_mode}|{query_key(query)}")
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
