"""Wire protocol for the HTTP service tier (and the shared statement
surface it has in common with the ``serve`` REPL).

Three concerns live here, all stdlib-only:

* **Statement surface** — :class:`StatementAccumulator` (multi-line
  statement accumulation, extracted verbatim from the ``serve`` piped
  reader) and the structured error codec (:func:`error_payload`,
  :func:`format_error`, :func:`status_for`). The REPL and the HTTP
  frontend classify a malformed statement through the *same* functions:
  the REPL renders the payload as an ``error:`` line, HTTP renders it
  as a JSON 400 body carrying the error type and, for parse errors,
  the character position — never a stack trace.

* **HTTP/1.1 codecs** — :func:`read_request` parses one request
  (request line, headers, ``Content-Length`` body) from an asyncio
  stream into an :class:`HttpRequest`; :func:`render_response` builds
  the response bytes. Deliberately minimal: no chunked bodies, no
  multipart — every payload this service speaks is one JSON document.

* **Result codecs** — :func:`result_payload` turns a
  :class:`~repro.cohort.result.CohortResult` (+ its
  :class:`~repro.cohana.pipeline.ExecStats`) into a JSON-able dict
  carrying a :func:`result_digest` computed server-side over the very
  rows being serialized, so clients (and CI) can assert digest parity
  against a direct engine run without re-deriving value types from
  JSON.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import asdict, dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import (
    CatalogError,
    ExecutionError,
    ReproError,
    StorageError,
)

#: Response reason phrases for every status this service emits.
REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    409: "Conflict", 411: "Length Required", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout", 505: "HTTP Version Not Supported",
}

#: Tenant attributed to requests that carry no ``X-Tenant`` header.
DEFAULT_TENANT = "public"

#: Hard caps on one request's header block and body.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024


class ProtocolError(ReproError):
    """A request violated HTTP framing (not query semantics).

    Attributes:
        status: the HTTP status code the violation maps to.
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


# ---------------------------------------------------------------------------
# Structured errors: one classification for the REPL and the wire
# ---------------------------------------------------------------------------


def error_payload(exc: BaseException) -> dict:
    """The structured error body both frontends derive from one
    exception: ``{"error": {"type", "message"[, "position"]}}``.

    ``position`` (character offset of the offending token) appears
    exactly when the exception carries one — :class:`ParseError` does —
    so clients can point at the broken token instead of re-lexing the
    statement themselves.
    """
    payload: dict = {"type": type(exc).__name__, "message": str(exc)}
    position = getattr(exc, "position", None)
    if position is not None:
        payload["position"] = position
    return {"error": payload}


def format_error(exc: BaseException) -> str:
    """The same classification as :func:`error_payload`, rendered as
    the one-line form the ``serve`` REPL prints after ``error:``."""
    inner = error_payload(exc)["error"]
    suffix = (f" (at position {inner['position']})"
              if "position" in inner else "")
    return f"{inner['message']}{suffix}"


def status_for(exc: BaseException) -> int:
    """Map a library exception to the HTTP status it should travel as.

    Client-side mistakes (parse/bind/semantic errors, service misuse)
    are 400s; an unknown table or view is a 404; everything the server
    itself broke on (storage corruption, execution failure) is a 500.
    """
    if isinstance(exc, ProtocolError):
        return exc.status
    if isinstance(exc, CatalogError):
        return 404
    if isinstance(exc, (StorageError, ExecutionError)):
        return 500
    if isinstance(exc, ReproError):
        return 400
    return 500


# ---------------------------------------------------------------------------
# Statement accumulation (shared with the serve REPL's piped mode)
# ---------------------------------------------------------------------------


class StatementAccumulator:
    """Accumulate input lines into complete statements.

    A statement may span several lines: a line ending with ``;`` always
    terminates it, and a buffer that parses as a complete statement is
    *held* — the next line may still extend it (clauses can follow in
    either order), and it only becomes a statement when a line arrives
    that cannot. A buffered fragment that can never complete is flushed
    as its own broken statement as soon as a self-contained statement
    follows it, so one typo does not swallow the rest of the session.

    Completed statements pile up in :attr:`pending`; callers take them
    with :meth:`take` at their flush points (meta commands, EOF).
    """

    def __init__(self, parses=None):
        if parses is None:
            from repro.cohana.parser import parse_statement

            def parses(text: str) -> bool:
                try:
                    parse_statement(text)
                except ReproError:
                    return False
                return True
        self._parses = parses
        self._fragment: list[str] = []
        self._complete = False
        self.pending: list[str] = []

    def feed(self, line: str) -> None:
        """Add one input line; move completed statements to pending."""
        joined = "\n".join([*self._fragment, line]).rstrip(";")
        if self._fragment and not self._parses(joined) \
                and (self._complete or self._parses(line.rstrip(";"))):
            # The buffer cannot absorb this line. If it was a held
            # complete statement, emit it; if it is a hopeless fragment
            # followed by a self-contained statement, fail it on its
            # own terms. Either way, the line starts fresh.
            self.pending.append("\n".join(self._fragment))
            self._fragment.clear()
        self._fragment.append(line)
        text = "\n".join(self._fragment)
        if line.endswith(";"):
            self.pending.append(text.rstrip(";"))
            self._fragment.clear()
            self._complete = False
        else:
            self._complete = self._parses(text)

    def drain(self) -> None:
        """A flush point ends any buffered statement (a partial one's
        parse error is reported downstream like any other broken
        query)."""
        if self._fragment:
            self.pending.append("\n".join(self._fragment))
            self._fragment.clear()
        self._complete = False

    def take(self) -> list[str]:
        """Return the completed statements and reset :attr:`pending`."""
        statements, self.pending = self.pending, []
        return statements


# ---------------------------------------------------------------------------
# HTTP/1.1 framing
# ---------------------------------------------------------------------------


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    target: str
    route: str
    params: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def tenant(self) -> str:
        """The admission identity: ``X-Tenant`` header or the default."""
        return self.headers.get("x-tenant", DEFAULT_TENANT) or \
            DEFAULT_TENANT

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body as one JSON object (empty body = empty object)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: "
                                f"{exc}") from None
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload


async def read_request(reader,
                       max_header_bytes: int = MAX_HEADER_BYTES,
                       max_body_bytes: int = MAX_BODY_BYTES,
                       ) -> HttpRequest | None:
    """Read one HTTP/1.1 request from an asyncio stream.

    Returns ``None`` on a clean EOF before any request byte (the peer
    closed an idle keep-alive connection). Raises
    :class:`ProtocolError` — carrying the right status — on malformed
    framing.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request header block too large",
                            status=431) from None
    if len(header_block) > max_header_bytes:
        raise ProtocolError("request header block too large", status=431)
    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported protocol {version!r}",
                            status=505)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ProtocolError("chunked request bodies are not supported",
                            status=411)
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length_text!r}") \
            from None
    if length < 0:
        raise ProtocolError(f"bad Content-Length {length}")
    if length > max_body_bytes:
        raise ProtocolError(f"request body of {length} bytes exceeds "
                            f"the {max_body_bytes}-byte cap",
                            status=413)
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    params = {k: v for k, v in parse_qsl(split.query)}
    return HttpRequest(method=method.upper(), target=target,
                       route=unquote(split.path) or "/",
                       params=params, headers=headers, body=body)


def render_response(status: int, body: dict | list | bytes | str,
                    *, keep_alive: bool = True,
                    extra_headers: dict[str, str] | None = None,
                    ) -> bytes:
    """Serialize one response. Dict/list bodies are sent as JSON."""
    if isinstance(body, (dict, list)):
        payload = (json.dumps(body, indent=None,
                              separators=(",", ":")) + "\n").encode()
        content_type = "application/json"
    elif isinstance(body, str):
        payload = body.encode()
        content_type = "text/plain; charset=utf-8"
    else:
        payload = body
        content_type = "application/octet-stream"
    headers = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + payload


# ---------------------------------------------------------------------------
# Result payloads
# ---------------------------------------------------------------------------


def result_digest(result) -> str:
    """The digest every parity check in this repo speaks:
    ``sha256(repr(rows))[:16]`` — identical to the benchmark suite's,
    so an HTTP response can be compared against a direct
    :class:`~repro.cohana.engine.CohanaEngine` run byte-for-byte."""
    return hashlib.sha256(repr(result.rows).encode()).hexdigest()[:16]


def result_payload(result, stats=None) -> dict:
    """A :class:`CohortResult` (+ optional stats) as one JSON body.

    The digest is computed over the very rows being serialized, before
    JSON degrades tuples to lists — it is the server-side truth a
    client compares against a direct engine run.
    """
    payload = {
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "n_cohort_columns": result.n_cohort_columns,
        "digest": result_digest(result),
    }
    if stats is not None:
        payload["stats"] = asdict(stats)
    return payload
