"""The caching query service: fingerprint, admit, execute, remember.

:class:`QueryService` sits between callers and
:class:`~repro.cohana.engine.CohanaEngine` and adds the serving-layer
behaviours the engine itself deliberately lacks:

* a **result cache** keyed by :func:`~repro.service.fingerprint.
  result_fingerprint` (bound query + table version token) — repeated
  queries over unchanged tables skip the scan entirely;
* a **plan cache** keyed by :func:`~repro.service.fingerprint.
  plan_fingerprint`, so cold runs of a known query at least skip
  planning;
* **single-flight admission** — concurrent identical queries execute
  once; followers block on the leader's in-flight computation and are
  served its result (counted as hits: nothing was re-scanned);
* a **batch API** running distinct queries concurrently on an
  admission thread pool, while each execution still uses the chunk
  pipeline's own serial/threads/processes scan backends.

Every call reports its **cache disposition** through
:class:`~repro.cohana.pipeline.ExecStats`:

===============  ====================================================
``hit``          served from cache (or a concurrent leader's run)
``miss``         executed cold and cached; for a view, re-merged from
                 warm per-shard partials (no chunk scanned)
``bypass``       caching disabled for this call — executed, not cached
``invalidated``  a cached result existed but its table version token
                 is stale — executed cold and re-cached
``refresh``      a materialized view was served after incrementally
                 scanning newly appended shards (:meth:`serve_view`)
===============  ====================================================

Materialized views (:meth:`QueryService.serve_view`) share the result
cache with direct queries: a view's result is identical to running its
bound query, so the fingerprint — and therefore the cached bytes — are
the same. On a result-cache miss the view is re-merged from its cached
per-shard partials instead of re-scanned; only shards appended since
the view's last refresh cost a scan.

Correctness leans on two invariants established elsewhere and tested
independently: result parity across execution knobs (kernel, backend,
jobs, scan mode — so one cached result answers every configuration),
and version tokens that change whenever a table registration changes
(so a stale fingerprint can never be looked up again).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.errors import ServiceError
from repro.cohana.engine import CohanaEngine
from repro.cohana.pipeline import (
    ExecStats,
    ExecutionConfig,
    execute,
    get_kernel,
)
from repro.cohana.operators import lower_plan
from repro.cohana.planner import plan_query
from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.service.cache import LRUCache
from repro.service.fingerprint import (
    plan_fingerprint,
    query_key,
    result_fingerprint,
)

#: Every cache disposition a call can report.
DISPOSITIONS = ("hit", "miss", "bypass", "invalidated", "refresh")


@dataclass
class CachedEntry:
    """One finished query execution, as the result cache stores it.

    ``stats`` and ``config`` describe the *cold* run that produced the
    result; hits hand out copies of both, so callers always see real
    scan counters (of the run that did the work) next to their own
    call's cache disposition.
    """

    fingerprint: str
    key: str
    token: str
    table: str
    result: CohortResult
    stats: ExecStats
    config: ExecutionConfig
    executor: str


@dataclass
class ServiceCounters:
    """Service-level admission counters (cache-level ones live on the
    two :class:`~repro.service.cache.LRUCache` instances)."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    invalidated: int = 0
    refreshes: int = 0
    singleflight_waits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "bypasses": self.bypasses,
                "invalidated": self.invalidated,
                "refreshes": self.refreshes,
                "singleflight_waits": self.singleflight_waits}


class QueryService:
    """A concurrent, caching frontend over one :class:`CohanaEngine`.

    Args:
        engine: the engine whose catalog and pipeline serve the queries.
        result_entries: LRU bound of the result cache.
        plan_entries: LRU bound of the plan cache.
        enabled: default caching behaviour; each call can override it
            with ``use_cache=``.
        executor: default per-chunk kernel family.

    Thread safety: all public methods may be called from many threads.
    The engine catalog is read, never written, during queries; callers
    that re-register tables concurrently with queries get whichever
    version token the registration race resolves to — never a torn
    result, because fingerprints bind result bytes to one token.
    """

    def __init__(self, engine: CohanaEngine, result_entries: int = 128,
                 plan_entries: int = 256, enabled: bool = True,
                 executor: str = "vectorized"):
        self.engine = engine
        self.results = LRUCache(result_entries)
        self.plans = LRUCache(plan_entries)
        self.enabled = enabled
        self.default_executor = executor
        self.counters = ServiceCounters()
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        #: query key -> (token, fingerprint) of the latest cached run,
        #: kept so a stale lookup can be told apart from a cold one
        #: (and its dead entry dropped eagerly instead of aging out).
        #: Bounded like an LRU (see _remember_latest) so a long-running
        #: service under a stream of distinct queries cannot grow it
        #: without limit; losing an old entry merely downgrades a later
        #: "invalidated" disposition to a plain "miss".
        self._latest: OrderedDict[str, tuple[str, str]] = OrderedDict()
        self._latest_bound = 4 * self.results.max_entries

    # -- public API -----------------------------------------------------------

    def query(self, query: CohortQuery | str, **kw) -> CohortResult:
        """Execute (or serve from cache) and return the result."""
        result, _ = self.query_with_stats(query, **kw)
        return result

    def query_with_stats(self, query: CohortQuery | str,
                         executor: str | None = None,
                         jobs: int = 1, backend: str | None = None,
                         scan_mode: str = "auto",
                         pushdown: bool = True, prune: bool = True,
                         use_cache: bool | None = None,
                         **parse_kw) -> tuple[CohortResult, ExecStats]:
        """Execute with the same loose options the engine accepts, plus
        ``use_cache`` (None = the service default); the returned
        :class:`ExecStats` carries the call's cache disposition."""
        executor = executor or self.default_executor
        bound = self._bind(query, parse_kw)
        table, token = self._snapshot(bound.table)
        return self._admit(bound, table, token, executor, jobs, backend,
                           scan_mode, pushdown, prune, use_cache)

    def query_batch(self, queries, concurrency: int | None = None,
                    with_stats: bool = False, **kw) -> list:
        """Run many queries concurrently; results come back in order.

        With caching on, identical queries are deduplicated by
        single-flight admission (one executes, the rest are served its
        result); distinct ones run in parallel on an admission thread
        pool of ``concurrency`` workers (default: one per query,
        capped at 8). When caching is bypassed (``use_cache=False`` or
        a disabled service) every query executes independently —
        bypass means "do not share results", so nothing is
        deduplicated. ``kw`` is passed through to
        :meth:`query_with_stats` for every query. With
        ``with_stats=True`` each element is a ``(result, stats)`` pair
        instead of a bare result.
        """
        if concurrency is not None and concurrency < 1:
            raise ServiceError(
                f"concurrency must be >= 1, got {concurrency}")
        queries = list(queries)
        if not queries:
            return []
        workers = concurrency or min(8, len(queries))
        call = self.query_with_stats if with_stats else self.query
        if workers == 1 or len(queries) == 1:
            return [call(q, **kw) for q in queries]
        with ThreadPoolExecutor(max_workers=min(workers,
                                                len(queries))) as pool:
            futures = [pool.submit(call, q, **kw) for q in queries]
            return [f.result() for f in futures]

    def serve_view(self, name: str, executor: str | None = None,
                   use_cache: bool | None = None,
                   ) -> tuple[CohortResult, ExecStats]:
        """Serve a materialized view through the result cache.

        Views and direct queries share the cache: the view's bound
        query produces an identical result relation, so its
        :func:`~repro.service.fingerprint.result_fingerprint` (bound
        query + table version token) names the same entry — a direct
        query can warm the view and vice versa.

        Dispositions: ``'hit'`` (result cache), ``'refresh'`` (one or
        more newly appended shards were scanned into the view's partial
        store before merging) or ``'miss'`` (re-merged entirely from
        warm per-shard partials — no chunk scanned). ``use_cache=False``
        reports ``'bypass'`` and skips the result cache, but still
        serves from the view's partial store (that is what a view *is*).
        """
        executor = executor or self.default_executor
        view = self.engine.view(name)
        table, token = self._snapshot(view.table)
        if not self._use_cache(use_cache):
            result, stats = self.engine.serve_view(name,
                                                   executor=executor)
            with self._lock:
                self.counters.bypasses += 1
            return result, replace(stats, cache_disposition="bypass")
        fingerprint = result_fingerprint(view.query, token)
        key = query_key(view.query)
        with self._lock:
            entry = self.results.get(fingerprint)
            if entry is not None:
                self.counters.hits += 1
                return self._serve_hit(entry)
        result, stats = self.engine.serve_view(name, executor=executor)
        disposition = "refresh" if stats.shards_scanned else "miss"
        entry = CachedEntry(
            fingerprint=fingerprint, key=key, token=token,
            table=view.table, result=result, stats=stats,
            config=ExecutionConfig.resolve(table=table),
            executor=executor)
        evicted = self.results.put(fingerprint, entry)
        with self._lock:
            self._remember_latest(key, token, fingerprint)
            if disposition == "refresh":
                self.counters.refreshes += 1
            else:
                self.counters.misses += 1
        stats = replace(stats, cache_misses=1, cache_evictions=evicted,
                        cache_disposition=disposition)
        return self._copy_result(result), stats

    def cache_disposition(self, query: CohortQuery | str,
                          use_cache: bool | None = None,
                          **parse_kw) -> str:
        """What a call would report right now, without executing
        (used by EXPLAIN; does not touch cache recency or counters)."""
        if not self._use_cache(use_cache):
            return "bypass"
        bound = self._bind(query, parse_kw)
        token = self.engine.version_token(bound.table)
        fingerprint = result_fingerprint(bound, token)
        if self.results.peek(fingerprint) is not None:
            return "hit"
        with self._lock:
            seen = self._latest.get(query_key(bound))
        if seen is not None and seen[0] != token:
            return "invalidated"
        return "miss"

    def explain(self, query: CohortQuery | str, jobs: int = 1,
                backend: str | None = None, scan_mode: str = "auto",
                pushdown: bool = True, prune: bool = True,
                use_cache: bool | None = None,
                executor: str | None = None, analyze: bool = False,
                **parse_kw) -> str:
        """EXPLAIN through the service: the physical operator tree and
        execution lines plus a ``Cache(...)`` line with the current
        disposition.

        An explicitly requested ``backend`` always survives into the
        output; with ``backend=None`` a *hit* reports the configuration
        of the run that produced the cached result instead of
        re-resolving (re-resolution could flip the auto-picked backend
        between the cold run and the hit, which would misreport what
        actually computed the bytes being served).

        ``analyze=True`` executes the query through the engine —
        deliberately *around* both caches, so EXPLAIN ANALYZE stays
        observational too — and annotates each operator line with its
        rows-in/rows-out and prune counters.
        """
        bound = self._bind(query, parse_kw)
        table, token = self._snapshot(bound.table)
        disposition = self.cache_disposition(bound, use_cache=use_cache)
        entry = self.results.peek(result_fingerprint(bound, token))
        if backend is None and entry is not None:
            config = entry.config
        else:
            config = ExecutionConfig.resolve(
                jobs=jobs, backend=backend, scan_mode=scan_mode,
                table=table)
        # EXPLAIN must not distort cache state: peek only, and plan
        # outside the cache when there is no entry to reuse.
        plan = self.plans.peek(plan_fingerprint(
            bound, token, pushdown=pushdown, prune=prune,
            scan_mode=config.scan_mode))
        if plan is None:
            plan = plan_query(bound, table, pushdown=pushdown,
                              prune=prune, scan_mode=config.scan_mode)
        executor = executor or self.default_executor
        physical = lower_plan(plan, get_kernel(executor))
        if analyze:
            result, stats = self.engine.query_with_stats(
                bound, executor=executor, pushdown=pushdown,
                prune=prune, config=config)
            tree = physical.describe(stats=stats, result=result)
        else:
            tree = physical.describe()
        return (f"{tree}\n{config.describe()}\n"
                f"Cache(disposition={disposition}, "
                f"token={token[:18]}, "
                f"entries={len(self.results)}/"
                f"{self.results.max_entries})")

    def invalidate_table(self, name: str) -> int:
        """Explicitly drop every cached result/plan for ``name``;
        returns how many result entries were removed."""
        dropped = self.results.invalidate_where(
            lambda e: e.table == name)
        self.plans.invalidate_where(
            lambda p: p.query.table == name)
        with self._lock:
            self._latest = OrderedDict(
                (k, v) for k, v in self._latest.items()
                if self.results.peek(v[1]) is not None)
        return dropped

    def clear(self) -> None:
        """Drop both caches (counters keep accumulating)."""
        self.results.clear()
        self.plans.clear()
        with self._lock:
            self._latest.clear()

    def stats_snapshot(self) -> dict:
        """All counters in one JSON-able dict (REPL ``.stats``)."""
        return {
            "service": self.counters.as_dict(),
            "results": self.results.counters.as_dict(),
            "plans": self.plans.counters.as_dict(),
            "entries": len(self.results),
            "max_entries": self.results.max_entries,
        }

    # -- admission ------------------------------------------------------------

    def _use_cache(self, use_cache: bool | None) -> bool:
        return self.enabled if use_cache is None else use_cache

    def _remember_latest(self, key: str, token: str,
                         fingerprint: str) -> None:
        """Record the latest (token, fingerprint) for a query key,
        evicting the least-recently refreshed entries past the bound.
        Caller holds ``self._lock``."""
        self._latest[key] = (token, fingerprint)
        self._latest.move_to_end(key)
        while len(self._latest) > self._latest_bound:
            self._latest.popitem(last=False)

    def _snapshot(self, name: str):
        """A (table, token) pair from one consistent registration.

        The catalog and the version map are two reads; a concurrent
        ``register(replace=True)`` could slip between them and pair
        content B with content A's token — which would let a later
        re-registration of content A serve B's cached bytes. Re-reading
        the token and retrying until it is unchanged guarantees the
        pair belongs to a single registration (tokens never repeat
        across distinct registrations: counters are monotonic, and a
        repeated digest means identical content).
        """
        while True:
            token = self.engine.version_token(name)
            table = self.engine.table(name)
            if self.engine.version_token(name) == token:
                return table, token

    def _bind(self, query: CohortQuery | str, parse_kw) -> CohortQuery:
        if isinstance(query, str):
            return self.engine.parse(query, **parse_kw)
        if parse_kw:
            raise ServiceError(
                "parse options only apply to textual queries")
        return query

    def _admit(self, bound: CohortQuery, table, token: str,
               executor: str, jobs: int, backend: str | None,
               scan_mode: str, pushdown: bool, prune: bool,
               use_cache: bool | None,
               ) -> tuple[CohortResult, ExecStats]:
        if not self._use_cache(use_cache):
            entry = self._execute(bound, table, token, executor, jobs,
                                  backend, scan_mode, pushdown, prune)
            with self._lock:
                self.counters.bypasses += 1
            stats = replace(entry.stats, cache_disposition="bypass")
            return entry.result, stats
        fingerprint = result_fingerprint(bound, token)
        key = query_key(bound)
        with self._lock:
            entry = self.results.get(fingerprint)
            if entry is not None:
                self.counters.hits += 1
                return self._serve_hit(entry)
            future = self._inflight.get(fingerprint)
            leader = future is None
            if leader:
                future = Future()
                self._inflight[fingerprint] = future
                disposition = "miss"
                seen = self._latest.get(key)
                if seen is not None and seen[0] != token:
                    # The table moved on under this query: drop the
                    # stale entry now instead of letting it age out.
                    self.results.invalidate(seen[1])
                    disposition = "invalidated"
        if not leader:
            # Single-flight follower: block on the leader's run. If
            # the leader failed, its exception is the honest answer
            # for identical inputs — propagate it. Counter updates are
            # read-modify-writes, so they happen under the lock (never
            # held across the blocking wait itself).
            with self._lock:
                self.counters.singleflight_waits += 1
            entry = future.result()
            with self._lock:
                self.counters.hits += 1
            return self._serve_hit(entry)
        try:
            entry = self._execute(bound, table, token, executor, jobs,
                                  backend, scan_mode, pushdown, prune)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(fingerprint, None)
            future.set_exception(exc)
            raise
        evicted = self.results.put(fingerprint, entry)
        with self._lock:
            self._remember_latest(key, token, fingerprint)
            self._inflight.pop(fingerprint, None)
            if disposition == "invalidated":
                self.counters.invalidated += 1
            else:
                self.counters.misses += 1
        future.set_result(entry)
        stats = replace(entry.stats, cache_misses=1,
                        cache_evictions=evicted,
                        cache_invalidations=(
                            1 if disposition == "invalidated" else 0),
                        cache_disposition=disposition)
        return self._copy_result(entry.result), stats

    def _serve_hit(self, entry: CachedEntry,
                   ) -> tuple[CohortResult, ExecStats]:
        stats = replace(entry.stats, cache_hits=1,
                        cache_disposition="hit")
        return self._copy_result(entry.result), stats

    @staticmethod
    def _copy_result(result: CohortResult) -> CohortResult:
        """A per-caller copy: rows are immutable tuples, but the row
        list and column list are not — never hand out cache-owned
        mutables."""
        return CohortResult(columns=list(result.columns),
                            rows=list(result.rows),
                            n_cohort_columns=result.n_cohort_columns)

    # -- execution ------------------------------------------------------------

    def _plan(self, bound: CohortQuery, table, token: str,
              scan_mode: str, pushdown: bool, prune: bool):
        key = plan_fingerprint(bound, token, pushdown=pushdown,
                               prune=prune, scan_mode=scan_mode)
        plan = self.plans.get(key)
        if plan is None:
            plan = plan_query(bound, table, pushdown=pushdown,
                              prune=prune, scan_mode=scan_mode)
            self.plans.put(key, plan)
        return plan

    def _execute(self, bound: CohortQuery, table, token: str,
                 executor: str, jobs: int, backend: str | None,
                 scan_mode: str, pushdown: bool,
                 prune: bool) -> CachedEntry:
        """One cold run: resolve config once, plan via the plan cache,
        run the chunk pipeline, wrap everything into a cache entry.

        ``table`` and ``token`` come from one :meth:`_snapshot`, so the
        cached bytes are guaranteed to describe the registration the
        fingerprint names even if the catalog changes mid-call.
        """
        config = ExecutionConfig.resolve(jobs=jobs, backend=backend,
                                         scan_mode=scan_mode,
                                         table=table)
        plan = self._plan(bound, table, token, config.scan_mode,
                          pushdown, prune)
        result, stats = execute(table, plan, get_kernel(executor),
                                config)
        return CachedEntry(
            fingerprint=result_fingerprint(bound, token),
            key=query_key(bound), token=token, table=bound.table,
            result=result, stats=stats, config=config,
            executor=executor)
