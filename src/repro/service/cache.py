"""A thread-safe, size-bounded LRU cache with observable counters.

Used twice by the query service: once for finished results, once for
physical plans. Deliberately minimal — string keys, opaque values, a
single lock — because the admission layer above it already provides
single-flight deduplication, so the cache itself sees one writer per
key at a time and contention stays low.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ServiceError


@dataclass
class CacheCounters:
    """Monotonic counters describing a cache's lifetime behaviour.

    ``hits``/``misses`` count :meth:`LRUCache.get` outcomes;
    ``evictions`` counts entries dropped by the LRU bound;
    ``invalidations`` counts entries removed explicitly because their
    underlying table version changed.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations}


class LRUCache:
    """Least-recently-used mapping bounded to ``max_entries``.

    ``get`` refreshes recency and counts a hit or miss; ``peek`` does
    neither (used by EXPLAIN, which must not distort cache state);
    ``put`` inserts/refreshes and returns how many entries the size
    bound evicted, oldest first.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ServiceError(
                f"cache needs max_entries >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.counters = CacheCounters()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str):
        """The cached value (refreshing its recency), or None."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.counters.hits += 1
                return self._entries[key]
            self.counters.misses += 1
            return None

    def peek(self, key: str):
        """The cached value without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value) -> int:
        """Insert/refresh ``key``; returns the number of evictions."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.counters.evictions += 1
                evicted += 1
        return evicted

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` because its table version changed; True when an
        entry was actually removed (and counted)."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.counters.invalidations += 1
                return True
            return False

    def invalidate_where(self, predicate) -> int:
        """Drop every entry whose value satisfies ``predicate``;
        returns how many were removed (all counted as invalidations)."""
        with self._lock:
            doomed = [k for k, v in self._entries.items() if predicate(v)]
            for key in doomed:
                del self._entries[key]
            self.counters.invalidations += len(doomed)
            return len(doomed)

    def keys(self) -> list[str]:
        """Current keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop everything (not counted as evictions)."""
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (f"LRUCache({len(self)}/{self.max_entries} entries, "
                f"{self.counters.as_dict()})")
