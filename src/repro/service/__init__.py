"""The caching cohort query service (serving frontend over the engine).

Layering::

    callers / CLI (query, serve)
        │
    QueryService          fingerprint → result/plan cache → admission
        │                 (single-flight, batch concurrency)
    CohanaEngine          catalog + version tokens
        │
    chunk pipeline        scheduler, kernels, backends

See :mod:`repro.service.service` for the admission semantics and
:mod:`repro.service.fingerprint` for what makes a fingerprint sound.
"""

from repro.service.cache import CacheCounters, LRUCache
from repro.service.fingerprint import (
    plan_fingerprint,
    query_key,
    result_fingerprint,
)
from repro.service.service import (
    DISPOSITIONS,
    CachedEntry,
    QueryService,
    ServiceCounters,
)

__all__ = [
    "CacheCounters",
    "CachedEntry",
    "DISPOSITIONS",
    "LRUCache",
    "QueryService",
    "ServiceCounters",
    "plan_fingerprint",
    "query_key",
    "result_fingerprint",
]
