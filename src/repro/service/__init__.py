"""The caching cohort query service (serving frontend over the engine).

Layering::

    HTTP clients          POST /query /batch /ingest, GET /explain ...
        │
    HttpCohortServer      asyncio frontend: admission control
        │                 (token buckets, quotas, bounded queue,
        │                 timeouts, graceful drain) → engine pool
    callers / CLI (query, serve)
        │
    QueryService          fingerprint → result/plan cache → admission
        │                 (single-flight, batch concurrency)
    CohanaEngine          catalog + version tokens
        │
    chunk pipeline        scheduler, kernels, backends

See :mod:`repro.service.service` for the admission semantics,
:mod:`repro.service.fingerprint` for what makes a fingerprint sound,
:mod:`repro.service.http` for the network tier and
:mod:`repro.service.protocol` for the wire codecs and the statement
surface shared with the ``serve`` REPL.
"""

from repro.service.cache import CacheCounters, LRUCache
from repro.service.fingerprint import (
    plan_fingerprint,
    query_key,
    result_fingerprint,
)
from repro.service.http import (
    AdmissionConfig,
    AdmissionController,
    HttpCohortServer,
    HttpCounters,
    ServerHandle,
    Shed,
    TokenBucket,
    start_in_thread,
)
from repro.service.protocol import (
    ProtocolError,
    StatementAccumulator,
    error_payload,
    format_error,
    result_digest,
    result_payload,
    status_for,
)
from repro.service.service import (
    DISPOSITIONS,
    CachedEntry,
    QueryService,
    ServiceCounters,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "CacheCounters",
    "CachedEntry",
    "DISPOSITIONS",
    "HttpCohortServer",
    "HttpCounters",
    "LRUCache",
    "ProtocolError",
    "QueryService",
    "ServerHandle",
    "ServiceCounters",
    "Shed",
    "StatementAccumulator",
    "TokenBucket",
    "error_payload",
    "format_error",
    "plan_fingerprint",
    "query_key",
    "result_digest",
    "result_fingerprint",
    "result_payload",
    "start_in_thread",
    "status_for",
]
