"""Asyncio HTTP frontend over :class:`~repro.service.QueryService`
with admission control.

This is the network service tier: one event loop accepts HTTP/1.1
connections (:func:`asyncio.start_server`, stdlib-only) and keeps all
engine work off itself — every admitted request runs on a bounded
thread pool whose size *is* the execution capacity. The request
lifecycle::

    accept ──▶ parse request ──▶ admit ──▶ cache/execute ──▶ respond
                     │             │                            ▲
                     │             ├─ rate limit ──▶ 429 + Retry-After
                     │             ├─ tenant quota ▶ 429 + Retry-After
                     │             ├─ queue full ──▶ 429 + Retry-After
                     │             └─ draining ────▶ 503
                     └─ malformed ─▶ structured 400 (type + position)

Admission control (:class:`AdmissionController`) is what keeps the
tier stable under overload instead of growing threads without bound:

* a **per-tenant token bucket** (``tenant_rate``/``tenant_burst``)
  smooths request rates; an empty bucket sheds with ``429`` and an
  honest ``Retry-After``;
* a **per-tenant in-flight quota** (``tenant_quota``) stops one tenant
  from occupying the whole pool;
* a **bounded admission queue**: at most ``max_inflight`` requests
  execute and at most ``queue_depth`` more wait; anything beyond is
  shed with ``429`` instead of queued without limit;
* **request timeouts with cancellation**: a request that times out
  *while queued* is truly cancelled (it never executes); one that
  times out mid-execution is answered ``504`` while its thread runs to
  completion in the background — the single-flight entry it leads
  still completes and populates the cache, so caches stay consistent
  and followers are served;
* **graceful drain** (SIGTERM/SIGINT or :meth:`HttpCohortServer.
  drain`): stop accepting, answer late arrivals ``503``, finish every
  in-flight request, flush a final stats line — zero in-flight queries
  dropped.

Execution slots are released when the worker thread actually finishes
(not when a timed-out awaiter gives up), so admission always reflects
true pool occupancy.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from collections import Counter as TallyCounter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.errors import ReproError, ServiceError
from repro.service.protocol import (
    HttpRequest,
    ProtocolError,
    error_payload,
    read_request,
    render_response,
    result_payload,
    status_for,
)

#: Admission shed reasons, in the order the checks run.
SHED_REASONS = ("rate", "quota", "queue", "draining")


class Shed(ServiceError):
    """A request was refused admission (mapped to 429, or 503 when the
    server is draining).

    Attributes:
        reason: one of :data:`SHED_REASONS`.
        retry_after: seconds after which a retry may succeed.
    """

    def __init__(self, reason: str, message: str,
                 retry_after: float = 1.0):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class TokenBucket:
    """The classic rate limiter: ``burst`` capacity refilled at
    ``rate`` tokens/second. Single-threaded by design — admission runs
    entirely on the event loop."""

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ServiceError(
                f"token bucket needs positive rate/burst, got "
                f"rate={rate}, burst={burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._updated = clock()

    def try_acquire(self) -> float:
        """Take one token. Returns ``0.0`` on success, otherwise the
        seconds until a token will have refilled (the honest
        ``Retry-After``)."""
        now = self._clock()
        self.tokens = min(self.burst,
                          self.tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class AdmissionConfig:
    """The admission-control knobs (CLI: ``serve --http``).

    Attributes:
        max_inflight: requests executing concurrently — also the size
            of the engine thread pool, so a slot is a real thread.
        queue_depth: admitted requests allowed to wait for a slot
            beyond the executing set; the bounded buffer that absorbs
            bursts without unbounded growth.
        tenant_quota: per-tenant cap on in-flight (executing + queued)
            requests.
        tenant_rate: per-tenant token-bucket refill in requests/second
            (``None`` disables rate limiting).
        tenant_burst: per-tenant token-bucket capacity.
        timeout_seconds: per-request budget covering queue wait plus
            execution; requests may lower (never raise) it per call.
    """

    max_inflight: int = 8
    queue_depth: int = 16
    tenant_quota: int = 8
    tenant_rate: float | None = None
    tenant_burst: int = 8
    timeout_seconds: float = 30.0

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ServiceError(f"max_inflight must be >= 1, "
                               f"got {self.max_inflight}")
        if self.queue_depth < 0:
            raise ServiceError(f"queue_depth must be >= 0, "
                               f"got {self.queue_depth}")
        if self.tenant_quota < 1:
            raise ServiceError(f"tenant_quota must be >= 1, "
                               f"got {self.tenant_quota}")
        if self.timeout_seconds <= 0:
            raise ServiceError(f"timeout_seconds must be > 0, "
                               f"got {self.timeout_seconds}")

    def as_dict(self) -> dict:
        return {"max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "tenant_quota": self.tenant_quota,
                "tenant_rate": self.tenant_rate,
                "tenant_burst": self.tenant_burst,
                "timeout_seconds": self.timeout_seconds}


@dataclass
class HttpCounters:
    """Serving-tier counters, exposed via ``GET /stats`` and stamped
    into each response's :class:`~repro.cohana.pipeline.ExecStats`."""

    received: int = 0
    admitted: int = 0
    completed: int = 0
    errors: int = 0
    shed_rate: int = 0
    shed_quota: int = 0
    shed_queue: int = 0
    shed_draining: int = 0
    timeouts: int = 0
    drained: int = 0

    @property
    def shed(self) -> int:
        return (self.shed_rate + self.shed_quota + self.shed_queue
                + self.shed_draining)

    def as_dict(self) -> dict[str, int]:
        return {"received": self.received, "admitted": self.admitted,
                "completed": self.completed, "errors": self.errors,
                "shed": self.shed, "shed_rate": self.shed_rate,
                "shed_quota": self.shed_quota,
                "shed_queue": self.shed_queue,
                "shed_draining": self.shed_draining,
                "timeouts": self.timeouts, "drained": self.drained}


class AdmissionController:
    """Token buckets, quotas, and one bounded waiting room.

    All state is touched only from the event loop thread, so there are
    no locks; :meth:`release` reaches the loop via
    ``call_soon_threadsafe`` when a worker thread finishes.
    """

    def __init__(self, config: AdmissionConfig, clock=time.monotonic):
        self.config = config
        self.counters = HttpCounters()
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._tenant_inflight: TallyCounter[str] = TallyCounter()
        self._inflight_total = 0
        self._slots = asyncio.Semaphore(config.max_inflight)

    @property
    def inflight(self) -> int:
        """Admitted requests currently executing or queued."""
        return self._inflight_total

    @property
    def waiting(self) -> int:
        """Admitted requests queued for an execution slot."""
        return max(0, self._inflight_total - self.config.max_inflight)

    def tenant_inflight(self, tenant: str) -> int:
        return self._tenant_inflight.get(tenant, 0)

    def _shed(self, reason: str, message: str,
              retry_after: float) -> None:
        setattr(self.counters, f"shed_{reason}",
                getattr(self.counters, f"shed_{reason}") + 1)
        raise Shed(reason, message, retry_after)

    async def admit(self, tenant: str) -> None:
        """Admit one request for ``tenant`` (or raise :class:`Shed`),
        then wait for an execution slot. Every successful ``admit``
        must be paired with exactly one :meth:`release`; cancellation
        while queued undoes the admission by itself."""
        cfg = self.config
        if cfg.tenant_rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    cfg.tenant_rate, cfg.tenant_burst, self._clock)
            retry_after = bucket.try_acquire()
            if retry_after > 0:
                self._shed("rate",
                           f"tenant {tenant!r} exceeded "
                           f"{cfg.tenant_rate}/s rate limit",
                           retry_after)
        if self._tenant_inflight[tenant] >= cfg.tenant_quota:
            self._shed("quota",
                       f"tenant {tenant!r} already has "
                       f"{self._tenant_inflight[tenant]} requests "
                       f"in flight (quota {cfg.tenant_quota})", 1.0)
        if self._inflight_total >= cfg.max_inflight + cfg.queue_depth:
            self._shed("queue",
                       f"admission queue full ({self.waiting} waiting "
                       f"on {cfg.max_inflight} slots)", 1.0)
        self._tenant_inflight[tenant] += 1
        self._inflight_total += 1
        try:
            await self._slots.acquire()
        except BaseException:
            # Cancelled (request timeout) while queued: the request
            # never executes — a true cancellation, undone in place.
            self._release_counts(tenant)
            raise
        self.counters.admitted += 1

    def release(self, tenant: str) -> None:
        """Free the execution slot taken by a finished worker."""
        self._slots.release()
        self._release_counts(tenant)

    def _release_counts(self, tenant: str) -> None:
        self._tenant_inflight[tenant] -= 1
        if self._tenant_inflight[tenant] <= 0:
            del self._tenant_inflight[tenant]
        self._inflight_total -= 1


@dataclass
class _Response:
    """One route's outcome before HTTP serialization."""

    status: int = 200
    body: dict | list | str | bytes = b""
    headers: dict[str, str] = field(default_factory=dict)
    close: bool = False


class HttpCohortServer:
    """The asyncio HTTP/1.1 frontend over one
    :class:`~repro.service.QueryService`.

    Endpoints (see ``docs/http-api.md``):

    ========  ===========  =============================================
    method    path         behaviour
    ========  ===========  =============================================
    POST      /query       one cohort query → result + stats + digest
    POST      /batch       many statements, one admission slot
    GET/POST  /explain     plan + cache disposition (``analyze`` opt-in)
    GET       /stats       service + cache + admission counters
    POST      /ingest      append a CSV batch as a new shard
    GET       /healthz     liveness (``503`` while draining)
    ========  ===========  =============================================

    Args:
        service: the query service whose caches and single-flight
            admission serve every request.
        host/port: bind address (port 0 picks a free port; see
            :attr:`address` after :meth:`start`).
        admission: the :class:`AdmissionConfig`.
        bind_table: optional ``callable(table_name)`` that loads a
            table into the engine on first use (the CLI binds the
            served path under each query's FROM name). Must be
            thread-safe; ``None`` means only pre-registered tables
            resolve.
        ingest_dir: sharded table directory that ``POST /ingest``
            appends to (``None`` disables ingest with a 400).
        csv_schema: schema for ingested CSV bodies (the CLI passes the
            game schema).
        parse_kw: forwarded to every parse (``age_unit``,
            ``time_bin_origin``).
        scan_mode / executor: execution defaults, overridable per
            request.
    """

    def __init__(self, service, *, host: str = "127.0.0.1",
                 port: int = 0,
                 admission: AdmissionConfig | None = None,
                 bind_table=None, ingest_dir=None, csv_schema=None,
                 parse_kw: dict | None = None,
                 scan_mode: str = "auto",
                 executor: str | None = None, clock=time.monotonic):
        self.service = service
        self.engine = service.engine
        self.config = admission or AdmissionConfig()
        self.admission = AdmissionController(self.config, clock)
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        self._bind_table = bind_table
        self._ingest_dir = ingest_dir
        self._csv_schema = csv_schema
        self._parse_kw = dict(parse_kw or {})
        self._scan_mode = scan_mode
        self._executor = executor
        self._pool: ThreadPoolExecutor | None = None
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._stopped: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._busy = 0
        self._writers: set[asyncio.StreamWriter] = set()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._ingest_lock = threading.Lock()
        self._routes = {
            ("GET", "/healthz"): self._route_healthz,
            ("GET", "/stats"): self._route_stats,
            ("GET", "/explain"): self._route_explain,
            ("POST", "/explain"): self._route_explain,
            ("POST", "/query"): self._route_query,
            ("POST", "/batch"): self._route_batch,
            ("POST", "/ingest"): self._route_ingest,
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listener and return the bound ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="cohana-http")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        self._ready.set()
        return self.address

    async def serve_until_drained(self) -> None:
        """Serve until :meth:`drain` (or a signal) completes."""
        if self._server is None:
            await self.start()
        try:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self._schedule_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread / platform without signal support
        await self._stopped.wait()

    def run(self) -> None:
        """Blocking entry point (the CLI and :func:`start_in_thread`):
        start, serve, drain, return."""
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface bind errors to waiters
            self._startup_error = exc
            self._ready.set()
            raise

    async def _amain(self) -> None:
        host, port = await self.start()
        print(f"serving http://{host}:{port} "
              f"(max_inflight={self.config.max_inflight}, "
              f"queue_depth={self.config.queue_depth}, "
              f"tenant_quota={self.config.tenant_quota})",
              file=sys.stderr, flush=True)
        await self.serve_until_drained()

    def wait_ready(self, timeout: float = 10.0) -> tuple[str, int]:
        """Block (from another thread) until the listener is bound."""
        if not self._ready.wait(timeout):
            raise ServiceError("HTTP server did not start in time")
        if self._startup_error is not None:
            raise ServiceError(
                f"HTTP server failed to start: {self._startup_error}")
        assert self.address is not None
        return self.address

    def _schedule_drain(self) -> None:
        """Begin drain from a signal handler or loop callback."""
        if self._drain_task is None and self._loop is not None:
            self._drain_task = self._loop.create_task(self.drain())

    def request_drain(self) -> None:
        """Thread-safe drain trigger (tests, embedding servers)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._schedule_drain)

    async def drain(self) -> dict:
        """Graceful shutdown: stop accepting, finish every in-flight
        request, flush the final stats line, release the loop.

        Returns the flushed stats snapshot. Idempotent: later calls
        wait for the first to finish.
        """
        if self._draining:
            await self._stopped.wait()
            return self.stats_snapshot()
        self._draining = True
        in_flight = self._busy
        self._server.close()
        await self._server.wait_closed()
        await self._idle.wait()
        self.admission.counters.drained = in_flight
        for writer in list(self._writers):
            writer.close()
        # Worker threads of timed-out requests may still be running;
        # they hold no admission state the drain needs, so don't block
        # the loop on them (the interpreter joins them at exit).
        self._pool.shutdown(wait=False)
        snapshot = self.stats_snapshot()
        print("drain: " + json.dumps(snapshot["http"]),
              file=sys.stderr, flush=True)
        self._stopped.set()
        return snapshot

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(render_response(
                        exc.status, error_payload(exc),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                # The busy window covers the response flush too: the
                # drain closes writers once idle, so a response still
                # in the socket buffer must keep the server busy.
                self._busy += 1
                self._idle.clear()
                try:
                    response = await self._dispatch(request)
                    close = (response.close or not request.keep_alive
                             or self._draining)
                    writer.write(render_response(
                        response.status, response.body,
                        keep_alive=not close,
                        extra_headers=response.headers))
                    await writer.drain()
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle.set()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: HttpRequest) -> _Response:
        handler = self._routes.get((request.method, request.route))
        if handler is None:
            known_methods = sorted(
                m for m, r in self._routes if r == request.route)
            if known_methods:
                return _Response(405, error_payload(ProtocolError(
                    f"{request.method} not allowed on "
                    f"{request.route}; use {'/'.join(known_methods)}",
                    status=405)),
                    headers={"Allow": ", ".join(known_methods)})
            return _Response(404, error_payload(ProtocolError(
                f"no such endpoint {request.route!r}", status=404)))
        try:
            return await handler(request)
        except Shed as shed:
            if shed.reason == "draining":
                return _Response(503, error_payload(shed), close=True)
            retry_after = max(1, int(-(-shed.retry_after // 1)))
            body = error_payload(shed)
            body["error"]["reason"] = shed.reason
            body["error"]["retry_after"] = retry_after
            return _Response(429, body,
                             headers={"Retry-After": str(retry_after)})
        except TimeoutError:
            self.admission.counters.timeouts += 1
            return _Response(504, {"error": {
                "type": "Timeout",
                "message": f"request exceeded its "
                           f"{self.config.timeout_seconds}s budget"}})
        except ReproError as exc:
            self.admission.counters.errors += 1
            return _Response(status_for(exc), error_payload(exc))
        except Exception as exc:  # never leak a stack trace on the wire
            self.admission.counters.errors += 1
            return _Response(500, error_payload(exc))

    # -- admission + execution -------------------------------------------------

    async def _run_admitted(self, request: HttpRequest, work,
                            timeout: float | None = None):
        """Admit one request and run ``work`` on the engine pool.

        Returns ``(value, admission_wait_seconds)``. The execution slot
        is released when the worker thread actually finishes — a
        timed-out awaiter does not free capacity its thread still
        occupies.
        """
        self.admission.counters.received += 1
        if self._draining:
            self.admission.counters.shed_draining += 1
            raise Shed("draining", "server is draining; connection "
                                   "will close", 1.0)
        budget = self.config.timeout_seconds
        if timeout is not None:
            budget = min(budget, timeout)
        tenant = request.tenant
        started = time.perf_counter()
        async with asyncio.timeout(budget):
            await self.admission.admit(tenant)
            wait_seconds = time.perf_counter() - started
            future = self._pool.submit(work)
            future.add_done_callback(
                lambda _f: self._release_threadsafe(tenant))
            value = await asyncio.wrap_future(future)
        self.admission.counters.completed += 1
        return value, wait_seconds

    def _release_threadsafe(self, tenant: str) -> None:
        try:
            self._loop.call_soon_threadsafe(self.admission.release,
                                            tenant)
        except RuntimeError:
            pass  # loop already closed (process exit)

    def _stamp(self, stats, wait_seconds: float):
        """Stamp the serving-tier counters into one response's
        :class:`~repro.cohana.pipeline.ExecStats`."""
        counters = self.admission.counters
        return replace(stats,
                       admission_wait_seconds=round(wait_seconds, 6),
                       http_admitted=counters.admitted,
                       http_shed=counters.shed,
                       http_timeouts=counters.timeouts,
                       http_drained=counters.drained)

    def _bind(self, text: str) -> None:
        """Load the served table under the query's FROM name (CLI
        mode); resolution errors surface as ordinary query errors."""
        if self._bind_table is not None:
            from repro.cohana.parser import parse_cohort_query
            self._bind_table(parse_cohort_query(text).table)

    def _exec_kw(self, body: dict) -> dict:
        kw = {"scan_mode": body.get("scan_mode", self._scan_mode)}
        if self._executor is not None:
            kw["executor"] = self._executor
        for key in ("executor", "jobs", "backend"):
            if key in body:
                kw[key] = body[key]
        if "use_cache" in body:
            kw["use_cache"] = bool(body["use_cache"])
        return kw

    @staticmethod
    def _required_query(body: dict, request: HttpRequest) -> str:
        text = body.get("query") or request.params.get("q")
        if not text or not isinstance(text, str):
            raise ProtocolError(
                'missing query text: pass {"query": "..."} in the '
                'body (or ?q= on GET)')
        return text

    @staticmethod
    def _timeout_of(body: dict) -> float | None:
        timeout = body.get("timeout")
        if timeout is None:
            return None
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise ProtocolError(f"bad timeout {timeout!r}") from None
        if timeout <= 0:
            raise ProtocolError(f"timeout must be > 0, got {timeout}")
        return timeout

    # -- routes ----------------------------------------------------------------

    async def _route_healthz(self, request: HttpRequest) -> _Response:
        if self._draining:
            return _Response(503, {"status": "draining"}, close=True)
        return _Response(200, {"status": "ok",
                               "inflight": self.admission.inflight})

    async def _route_stats(self, request: HttpRequest) -> _Response:
        return _Response(200, self.stats_snapshot())

    def stats_snapshot(self) -> dict:
        return {
            "http": {**self.admission.counters.as_dict(),
                     "inflight": self.admission.inflight,
                     "waiting": self.admission.waiting,
                     "draining": self._draining},
            "admission": self.config.as_dict(),
            "service": self.service.stats_snapshot(),
        }

    async def _route_query(self, request: HttpRequest) -> _Response:
        body = request.json()
        text = self._required_query(body, request)
        exec_kw = self._exec_kw(body)
        parse_kw = self._parse_kw

        def work():
            self._bind(text)
            return self.service.query_with_stats(text, **exec_kw,
                                                 **parse_kw)

        (result, stats), wait = await self._run_admitted(
            request, work, self._timeout_of(body))
        return _Response(200, result_payload(
            result, self._stamp(stats, wait)))

    async def _route_batch(self, request: HttpRequest) -> _Response:
        body = request.json()
        texts = body.get("queries")
        if not isinstance(texts, list) or \
                not all(isinstance(t, str) for t in texts):
            raise ProtocolError(
                'missing statements: pass {"queries": ["...", ...]}')
        exec_kw = self._exec_kw(body)
        parse_kw = self._parse_kw

        def one(text: str) -> dict:
            try:
                self._bind(text)
                result, stats = self.service.query_with_stats(
                    text, **exec_kw, **parse_kw)
            except ReproError as exc:
                return {"ok": False, "status": status_for(exc),
                        **error_payload(exc)}
            return {"ok": True, **result_payload(result, stats)}

        def work() -> list[dict]:
            # One admission slot for the whole batch; inside it the
            # statements run concurrently through the service, so
            # identical in-flight queries still collapse to one
            # execution (single-flight dedup).
            if len(texts) <= 1:
                return [one(t) for t in texts]
            with ThreadPoolExecutor(
                    max_workers=min(8, len(texts)),
                    thread_name_prefix="cohana-batch") as pool:
                return list(pool.map(one, texts))

        results, wait = await self._run_admitted(
            request, work, self._timeout_of(body))
        return _Response(200, {
            "results": results,
            "count": len(results),
            "admission_wait_seconds": round(wait, 6)})

    async def _route_explain(self, request: HttpRequest) -> _Response:
        body = request.json()
        text = self._required_query(body, request)
        analyze = bool(body.get("analyze")
                       or request.params.get("analyze"))
        exec_kw = self._exec_kw(body)
        parse_kw = self._parse_kw

        def work():
            self._bind(text)
            return self.service.explain(text, analyze=analyze,
                                        **exec_kw, **parse_kw)

        explain, wait = await self._run_admitted(
            request, work, self._timeout_of(body))
        return _Response(200, {
            "explain": explain,
            "admission_wait_seconds": round(wait, 6)})

    async def _route_ingest(self, request: HttpRequest) -> _Response:
        body = request.json()
        csv_text = body.get("csv")
        if not csv_text or not isinstance(csv_text, str):
            raise ProtocolError('missing rows: pass {"csv": "..."} '
                                'with a header row')
        if self._ingest_dir is None or self._csv_schema is None:
            raise ProtocolError(
                "ingest is enabled only when serving a sharded table "
                "directory")

        def work() -> dict:
            import tempfile
            from pathlib import Path

            from repro.errors import StorageError
            from repro.storage import append_shard, read_manifest
            from repro.table import read_csv

            with tempfile.NamedTemporaryFile(
                    "w", suffix=".csv", delete=False) as handle:
                handle.write(csv_text)
                tmp = handle.name
            try:
                batch = read_csv(tmp, self._csv_schema)
            finally:
                Path(tmp).unlink(missing_ok=True)
            with self._ingest_lock:
                name = body.get("table")
                if name is None:
                    loaded = self.engine.tables()
                    if len(loaded) != 1:
                        raise ProtocolError(
                            'pass {"table": "<name>"} — the engine '
                            'has no single loaded table to default to')
                    name = loaded[0]
                try:
                    entry = append_shard(self._ingest_dir, batch)
                except StorageError as exc:
                    raise ProtocolError(f"ingest rejected: {exc}",
                                        status=409) from None
                if name in self.engine.tables():
                    self.engine.refresh_table(name)
                elif self._bind_table is not None:
                    self._bind_table(name)
                manifest = read_manifest(self._ingest_dir)
            return {"table": name, "appended": entry["n_rows"],
                    "shard": entry["path"],
                    "shards_total": len(manifest["shards"]),
                    "rows_total": sum(s["n_rows"]
                                      for s in manifest["shards"])}

        outcome, wait = await self._run_admitted(
            request, work, self._timeout_of(body))
        outcome["admission_wait_seconds"] = round(wait, 6)
        return _Response(200, outcome)


# ---------------------------------------------------------------------------
# Embedding helper: run a server on a background thread (tests, bench)
# ---------------------------------------------------------------------------


@dataclass
class ServerHandle:
    """A server running on a background thread (tests, benchmarks)."""

    server: HttpCohortServer
    thread: threading.Thread
    address: tuple[str, int]

    def drain(self, timeout: float = 30.0) -> None:
        """Trigger a graceful drain and join the server thread."""
        self.server.request_drain()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise ServiceError("HTTP server did not drain in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        if self.thread.is_alive():
            self.drain()


def start_in_thread(server: HttpCohortServer,
                    timeout: float = 10.0) -> ServerHandle:
    """Run ``server`` on a daemon thread; returns once it is bound."""
    thread = threading.Thread(target=server.run,
                              name="cohana-http-server", daemon=True)
    thread.start()
    try:
        address = server.wait_ready(timeout)
    except ServiceError:
        thread.join(0.1)
        raise
    return ServerHandle(server=server, thread=thread, address=address)
