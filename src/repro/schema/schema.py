"""Activity-table schemas (the paper's Section 3.1 data model).

An :class:`ActivitySchema` is an ordered list of :class:`ColumnSpec` with
exactly one USER, one TIME and one ACTION column, plus any number of
dimensions and measures. The primary key is ``(Au, At, Ae)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.schema.column import ColumnRole, ColumnSpec
from repro.schema.types import LogicalType


@dataclass(frozen=True)
class ActivitySchema:
    """An ordered, validated activity-table schema.

    Use :meth:`ActivitySchema.build` or the ``game_schema`` helper in
    :mod:`repro.datagen` for common cases.
    """

    columns: tuple[ColumnSpec, ...]
    _by_name: dict = field(init=False, repr=False, compare=False, hash=False,
                           default=None)

    def __post_init__(self):
        if isinstance(self.columns, list):
            object.__setattr__(self, "columns", tuple(self.columns))
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        for role in (ColumnRole.USER, ColumnRole.TIME, ColumnRole.ACTION):
            count = sum(1 for c in self.columns if c.role is role)
            if count != 1:
                raise SchemaError(
                    f"schema must have exactly one {role.value} column, "
                    f"found {count}")
        object.__setattr__(self, "_by_name",
                           {c.name: c for c in self.columns})

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, user: str, time: str, action: str,
              dimensions: dict[str, LogicalType] | list[str] | None = None,
              measures: dict[str, LogicalType] | list[str] | None = None,
              ) -> "ActivitySchema":
        """Build a schema from column names.

        ``dimensions`` defaults each listed name to STRING; ``measures``
        default to INT. Pass dicts to control types explicitly.
        """
        cols = [
            ColumnSpec(user, LogicalType.STRING, ColumnRole.USER),
            ColumnSpec(time, LogicalType.TIMESTAMP, ColumnRole.TIME),
            ColumnSpec(action, LogicalType.STRING, ColumnRole.ACTION),
        ]
        if isinstance(dimensions, list):
            dimensions = {name: LogicalType.STRING for name in dimensions}
        if isinstance(measures, list):
            measures = {name: LogicalType.INT for name in measures}
        for name, ltype in (dimensions or {}).items():
            cols.append(ColumnSpec(name, ltype, ColumnRole.DIMENSION))
        for name, ltype in (measures or {}).items():
            cols.append(ColumnSpec(name, ltype, ColumnRole.MEASURE))
        return cls(tuple(cols))

    # -- lookups -----------------------------------------------------------

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> ColumnSpec:
        """Return the spec for ``name``, raising SchemaError if unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; have {self.names()}") from None

    def index_of(self, name: str) -> int:
        """Positional index of ``name`` in the schema."""
        for i, c in enumerate(self.columns):
            if c.name == name:
                return i
        raise SchemaError(f"unknown column {name!r}; have {self.names()}")

    def names(self) -> list[str]:
        """All column names in schema order."""
        return [c.name for c in self.columns]

    def _single(self, role: ColumnRole) -> ColumnSpec:
        return next(c for c in self.columns if c.role is role)

    @property
    def user(self) -> ColumnSpec:
        """The Au column."""
        return self._single(ColumnRole.USER)

    @property
    def time(self) -> ColumnSpec:
        """The At column."""
        return self._single(ColumnRole.TIME)

    @property
    def action(self) -> ColumnSpec:
        """The Ae column."""
        return self._single(ColumnRole.ACTION)

    @property
    def dimensions(self) -> tuple[ColumnSpec, ...]:
        """All dimension columns, in schema order."""
        return tuple(c for c in self.columns
                     if c.role is ColumnRole.DIMENSION)

    @property
    def measures(self) -> tuple[ColumnSpec, ...]:
        """All measure columns, in schema order."""
        return tuple(c for c in self.columns if c.role is ColumnRole.MEASURE)

    def validate_cohort_attributes(self, names: list[str]) -> None:
        """Check Definition 6's constraint ``L ∩ {Au, Ae} = ∅``.

        Cohort attributes may be dimensions or the time column (which is
        binned), but never the user or action column.
        """
        if not names:
            raise SchemaError("COHORT BY requires at least one attribute")
        for name in names:
            spec = self.column(name)
            if spec.role in (ColumnRole.USER, ColumnRole.ACTION):
                raise SchemaError(
                    f"cohort attribute {name!r} may not be the "
                    f"{spec.role.value} column (Definition 6)")
