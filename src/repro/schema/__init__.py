"""Schemas, logical types and column roles for activity tables."""

from repro.schema.column import (
    ColumnRole,
    ColumnSpec,
    action_column,
    dimension_column,
    measure_column,
    time_column,
    user_column,
)
from repro.schema.schema import ActivitySchema
from repro.schema.types import (
    TIME_UNIT_SECONDS,
    LogicalType,
    coerce_value,
    format_timestamp,
    parse_timestamp,
)

__all__ = [
    "ActivitySchema",
    "ColumnRole",
    "ColumnSpec",
    "LogicalType",
    "TIME_UNIT_SECONDS",
    "action_column",
    "coerce_value",
    "dimension_column",
    "format_timestamp",
    "measure_column",
    "parse_timestamp",
    "time_column",
    "user_column",
]
