"""Logical column types for activity tables and relational results.

The storage layer and both relational engines dispatch on these types to
pick value representations and compression schemes:

* ``STRING`` columns are dictionary encoded (two-level: global + chunk).
* ``INT`` and ``TIMESTAMP`` columns are delta encoded (two-level MIN/MAX).
* ``FLOAT`` columns are stored raw (the paper's measures are integers, but
  derived results such as ``Avg(gold)`` are floats).

Timestamps are represented as int64 epoch seconds throughout.
"""

from __future__ import annotations

import enum
from datetime import datetime, timezone

import numpy as np

from repro.errors import SchemaError


class LogicalType(enum.Enum):
    """The logical type of a column value."""

    STRING = "string"
    INT = "int"
    TIMESTAMP = "timestamp"
    FLOAT = "float"

    @property
    def is_integer_like(self) -> bool:
        """True for types persisted through the delta/bit-packed path."""
        return self in (LogicalType.INT, LogicalType.TIMESTAMP)

    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used for in-memory column arrays of this type."""
        if self is LogicalType.STRING:
            return np.dtype(object)
        if self is LogicalType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(np.int64)


def parse_timestamp(text: str) -> int:
    """Parse a timestamp literal into epoch seconds.

    Accepts the paper's ``YYYY/MM/DD:HHMM`` format (e.g.
    ``2013/05/19:1000``), ISO dates (``2013-05-21``), and ISO datetimes
    (``2013-05-21 14:00`` or ``2013-05-21T14:00:00``). All values are
    interpreted as UTC.

    Raises:
        SchemaError: if the text matches no supported format.
    """
    text = text.strip()
    if "/" in text and ":" in text:
        date_part, _, clock = text.partition(":")
        try:
            year, month, day = (int(p) for p in date_part.split("/"))
            hour, minute = int(clock[:2]), int(clock[2:] or 0)
            dt = datetime(year, month, day, hour, minute, tzinfo=timezone.utc)
            return int(dt.timestamp())
        except ValueError as exc:
            raise SchemaError(f"bad timestamp literal: {text!r}") from exc
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S", "%Y-%m-%d %H:%M",
                "%Y-%m-%dT%H:%M", "%Y-%m-%d"):
        try:
            dt = datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
            return int(dt.timestamp())
        except ValueError:
            continue
    raise SchemaError(f"bad timestamp literal: {text!r}")


def format_timestamp(epoch_seconds: int) -> str:
    """Render epoch seconds as an ISO UTC datetime string."""
    dt = datetime.fromtimestamp(int(epoch_seconds), tz=timezone.utc)
    if dt.hour == 0 and dt.minute == 0 and dt.second == 0:
        return dt.strftime("%Y-%m-%d")
    return dt.strftime("%Y-%m-%d %H:%M:%S")


#: Seconds in each supported age/binning unit.
TIME_UNIT_SECONDS: dict[str, int] = {
    "second": 1,
    "minute": 60,
    "hour": 3600,
    "day": 86400,
    "week": 7 * 86400,
}


def coerce_value(value, ltype: LogicalType):
    """Coerce a Python literal to the canonical value for ``ltype``.

    String timestamps are parsed; numerics are cast. Used when loading CSV
    data and when binding query literals against column types.
    """
    if ltype is LogicalType.STRING:
        return str(value)
    if ltype is LogicalType.TIMESTAMP:
        if isinstance(value, str):
            return parse_timestamp(value)
        return int(value)
    if ltype is LogicalType.INT:
        return int(value)
    if ltype is LogicalType.FLOAT:
        return float(value)
    raise SchemaError(f"unknown logical type: {ltype!r}")
