"""Column specifications: a name, a logical type, and a role.

The paper's activity table (Section 3.1) fixes three required attributes —
the user ``Au``, the action time ``At`` and the action ``Ae`` — followed by
arbitrary dimension and measure attributes. Roles capture that distinction
so the engine can validate queries (e.g. ``COHORT BY`` must not name the
user or action column) and so the storage layer can pick encodings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.schema.types import LogicalType


class ColumnRole(enum.Enum):
    """The role a column plays in an activity table."""

    USER = "user"          #: Au — string user identifier
    TIME = "time"          #: At — action timestamp
    ACTION = "action"      #: Ae — action name from a fixed vocabulary
    DIMENSION = "dimension"  #: descriptive attribute (e.g. country, role)
    MEASURE = "measure"    #: numeric attribute to aggregate (e.g. gold)


@dataclass(frozen=True)
class ColumnSpec:
    """An immutable column definition.

    Attributes:
        name: column name, unique within a schema.
        ltype: logical value type.
        role: role within the activity table.
    """

    name: str
    ltype: LogicalType
    role: ColumnRole

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"bad column name: {self.name!r}")
        expected = _REQUIRED_TYPE.get(self.role)
        if expected is not None and self.ltype is not expected:
            raise SchemaError(
                f"column {self.name!r} with role {self.role.value} must have "
                f"type {expected.value}, got {self.ltype.value}")
        if self.role is ColumnRole.MEASURE and self.ltype is LogicalType.STRING:
            raise SchemaError(
                f"measure column {self.name!r} must be numeric")


_REQUIRED_TYPE = {
    ColumnRole.USER: LogicalType.STRING,
    ColumnRole.TIME: LogicalType.TIMESTAMP,
    ColumnRole.ACTION: LogicalType.STRING,
}


def user_column(name: str = "user") -> ColumnSpec:
    """Convenience constructor for the Au column."""
    return ColumnSpec(name, LogicalType.STRING, ColumnRole.USER)


def time_column(name: str = "time") -> ColumnSpec:
    """Convenience constructor for the At column."""
    return ColumnSpec(name, LogicalType.TIMESTAMP, ColumnRole.TIME)


def action_column(name: str = "action") -> ColumnSpec:
    """Convenience constructor for the Ae column."""
    return ColumnSpec(name, LogicalType.STRING, ColumnRole.ACTION)


def dimension_column(name: str,
                     ltype: LogicalType = LogicalType.STRING) -> ColumnSpec:
    """Convenience constructor for a dimension column."""
    return ColumnSpec(name, ltype, ColumnRole.DIMENSION)


def measure_column(name: str,
                   ltype: LogicalType = LogicalType.INT) -> ColumnSpec:
    """Convenience constructor for a measure column."""
    return ColumnSpec(name, ltype, ColumnRole.MEASURE)
