"""Materialized cohort views with incremental per-shard refresh.

A materialized view is a named, bound cohort query whose *per-shard
value-space partials* are cached, keyed by ``(view fingerprint, shard
content digest)``. Because the writer never splits a user across chunks
and :func:`~repro.storage.sharded.append_shard` never splits a user
across shards, those partials merge exactly — including COHORTSIZE and
USERCOUNT — so serving a view is a re-merge + finalize over cached
partials, and an append only costs a scan of the *new* shard.

Layout: :mod:`repro.views.store` persists partials and view definitions
next to a sharded table's ``MANIFEST.json`` (``<dir>/VIEWS/``), with an
in-memory twin for tables that do not live in a sharded directory;
:mod:`repro.views.catalog` owns the view registry, the refresh loop and
the serve path, and is driven by :class:`~repro.cohana.engine.CohanaEngine`.
"""

from repro.views.catalog import MaterializedView, ViewCatalog
from repro.views.store import (
    VIEWS_DIRNAME,
    DiskViewStore,
    MemoryViewStore,
    decode_partial,
    encode_partial,
)

__all__ = [
    "DiskViewStore",
    "MaterializedView",
    "MemoryViewStore",
    "VIEWS_DIRNAME",
    "ViewCatalog",
    "decode_partial",
    "encode_partial",
]
