"""The materialized-view registry and its refresh / serve paths.

A :class:`MaterializedView` is a bound cohort query registered under a
name; :class:`ViewCatalog` (one per engine) maps names to views, keeps
the per-table partial stores, and implements the two operations that
make views cheap:

* **refresh** — walk the table's shards and compute a value-space
  partial for every shard whose content digest has no cached partial
  yet (:func:`~repro.cohana.pipeline.shard_value_partial`). After an
  append only the new shard's digest is unseen, so refresh cost is
  O(new shard); after a byte-identical reload every digest is already
  cached and refresh scans nothing.
* **serve** — refresh, then re-merge the cached partials of the
  *current* shard set and finalize. No chunk is scanned for shards with
  warm partials, so post-append serve latency stays flat as the table
  grows.

Exactness rests on two storage invariants: the writer never splits a
user across chunks, and :func:`~repro.storage.sharded.append_shard`
never splits a user across shards — per-shard partials therefore merge
exactly for every aggregate, including COHORTSIZE and USERCOUNT.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.errors import CatalogError
from repro.cohana.binder import bind_cohort_query
from repro.cohana.parser import parse_cohort_query
from repro.cohana.pipeline import (
    ExecStats,
    ExecutionConfig,
    MergeState,
    build_rows,
    shard_value_partial,
)
from repro.cohort.query import CohortQuery
from repro.cohort.result import CohortResult
from repro.service.fingerprint import view_fingerprint
from repro.views.store import (
    DEFINITION_VERSION,
    VIEWS_DIRNAME,
    DiskViewStore,
    MemoryViewStore,
)

#: View names must be safe as file-name stems (``<name>.view.json``).
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class MaterializedView:
    """One registered view.

    Attributes:
        name: catalog name (also the definition file's stem).
        table: the registered table the view reads.
        query: the bound cohort query.
        fingerprint: :func:`~repro.service.fingerprint.view_fingerprint`
            of ``query`` — the partial-store key prefix.
        text: the original statement text when the view was created
            from text, else None. Only text-backed views persist their
            definition (text is what makes them rebindable after a
            restart); partials are keyed by fingerprint and persist
            either way.
    """

    name: str
    table: str
    query: CohortQuery
    fingerprint: str
    text: str | None = None


class ViewCatalog:
    """Per-engine view registry. All methods are called by the engine
    under its catalog lock (views mutate with tables, atomically)."""

    def __init__(self, engine):
        self._engine = engine
        self._views: dict[str, MaterializedView] = {}
        #: Fallback stores for tables without a sharded directory,
        #: keyed by table name; kept for the process lifetime.
        self._mem_stores: dict[str, MemoryViewStore] = {}

    # -- registry -------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._views)

    def get(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(
                f"unknown view {name!r}; have {sorted(self._views)}"
            ) from None

    def views_of(self, table_name: str) -> list[MaterializedView]:
        return [v for v in self._views.values() if v.table == table_name]

    def create(self, name: str, query: CohortQuery,
               text: str | None = None,
               replace_existing: bool = False) -> MaterializedView:
        """Register a view over a bound query (no scan happens here)."""
        if not _NAME_RE.match(name):
            raise CatalogError(
                f"invalid view name {name!r} (need an identifier)")
        if name in self._views and not replace_existing:
            raise CatalogError(f"view {name!r} already exists")
        if query.table is None:
            raise CatalogError(
                "a materialized view needs a query bound to a table")
        self._engine.table(query.table)  # raises on unknown tables
        old = self._views.get(name)
        view = MaterializedView(name=name, table=query.table, query=query,
                                fingerprint=view_fingerprint(query),
                                text=text)
        self._views[name] = view
        if old is not None and old.fingerprint != view.fingerprint:
            self._drop_state(old, definition=True)
        if text is not None:
            self.store_for(view.table).save_definition(
                self._definition_payload(view))
        return view

    def drop(self, name: str, missing_ok: bool = False) -> bool:
        """Unregister a view and remove its persisted state."""
        view = self._views.pop(name, None)
        if view is None:
            if missing_ok:
                return False
            raise CatalogError(
                f"unknown view {name!r}; have {sorted(self._views)}")
        self._drop_state(view, definition=True)
        if not self.views_of(view.table):
            try:
                store = self.store_for(view.table)
            except CatalogError:
                store = None
            if isinstance(store, DiskViewStore):
                store.remove_if_empty()
        return True

    def _drop_state(self, view: MaterializedView,
                    definition: bool) -> None:
        """Remove a view's store files; partials are shared by
        fingerprint, so they survive while any other view of the same
        table still uses them."""
        try:
            store = self.store_for(view.table)
        except CatalogError:
            # Table already gone from the catalog (and a sharded
            # directory's store location is derived from it) — nothing
            # reachable to clean.
            return
        if definition:
            store.drop_definition(view.name)
        shared = any(v.fingerprint == view.fingerprint
                     and v.table == view.table
                     for v in self._views.values())
        if not shared:
            store.drop_partials(view.fingerprint)

    def drop_table_views(self, table_name: str) -> list[str]:
        """Drop every view of ``table_name`` (definitions + partials).
        Called by the engine *before* the table leaves the catalog, so
        the disk store is still reachable."""
        dropped = []
        for view in self.views_of(table_name):
            self.drop(view.name)
            dropped.append(view.name)
        if dropped:
            store = self.store_for(table_name)
            if isinstance(store, DiskViewStore):
                store.remove_if_empty()
        self._mem_stores.pop(table_name, None)
        return dropped

    # -- persistence ----------------------------------------------------------

    def store_for(self, table_name: str):
        """The partial store for a table: on disk next to the manifest
        for sharded directories, in memory otherwise."""
        table = self._engine.table(table_name)
        source = getattr(table, "source_path", None)
        if getattr(table, "is_sharded", False) and source:
            from pathlib import Path
            return DiskViewStore(Path(source) / VIEWS_DIRNAME)
        return self._mem_stores.setdefault(table_name, MemoryViewStore())

    def _definition_payload(self, view: MaterializedView) -> dict:
        return {
            "format": "cohana-view",
            "version": DEFINITION_VERSION,
            "name": view.name,
            "table": view.table,
            "text": view.text,
            "fingerprint": view.fingerprint,
            "age_unit": view.query.age_unit,
            "time_bin_origin": view.query.time_bin_origin,
        }

    def attach(self, table_name: str) -> list[MaterializedView]:
        """Register the views persisted next to ``table_name``'s data.

        Called when a table is (re)loaded from disk. Definitions are
        re-bound from their stored text against the current schema; the
        fingerprint is recomputed from the bound query (the stored one
        is informational). A name already registered to a *different*
        table is left alone.
        """
        attached = []
        for payload in self.store_for(table_name).load_definitions():
            name = payload["name"]
            existing = self._views.get(name)
            if existing is not None and existing.table != table_name:
                continue
            query = self._bind_text(table_name, payload["text"],
                                    payload.get("age_unit", "day"),
                                    payload.get("time_bin_origin", 0))
            view = MaterializedView(
                name=name, table=table_name, query=query,
                fingerprint=view_fingerprint(query), text=payload["text"])
            self._views[name] = view
            attached.append(view)
        return attached

    def _bind_text(self, table_name: str, text: str, age_unit: str,
                   time_bin_origin: int) -> CohortQuery:
        """Bind stored view text against a table, whatever catalog name
        the table currently goes by."""
        parsed = parse_cohort_query(text)
        schema = self._engine.table(table_name).schema
        bound = bind_cohort_query(parsed, schema, age_unit=age_unit,
                                  time_bin_origin=time_bin_origin)
        return replace(bound, table=table_name)

    def status(self, name: str) -> dict:
        """A JSON-able freshness summary of one view (CLI ``view list``
        and the serve frontend's ``.views``)."""
        view = self.get(name)
        store = self.store_for(view.table)
        _table, units = self._shard_units(view)
        cached = sum(1 for _shard, digest in units
                     if store.has_partial(view.fingerprint, digest))
        return {
            "name": view.name,
            "table": view.table,
            "fingerprint": view.fingerprint,
            "shards_total": len(units),
            "shards_cached": cached,
            "persisted": view.text is not None,
        }

    # -- refresh / serve ------------------------------------------------------

    def _shard_units(self, view: MaterializedView):
        """``(shard, digest)`` pairs covering the table's current data.

        A sharded table contributes one unit per shard; anything else
        is a single pseudo-shard keyed by its content digest (or the
        engine's version token for in-memory tables, which changes on
        every re-registration — exactly when a recompute is due).
        """
        table = self._engine.table(view.table)
        if getattr(table, "is_sharded", False):
            return table, list(zip(table.shards, table.shard_digests))
        digest = (getattr(table, "content_digest", None)
                  or self._engine.version_token(view.table))
        return table, [(table, digest)]

    def refresh(self, name: str, executor: str = "vectorized",
                config: ExecutionConfig | None = None,
                pushdown: bool = True, prune: bool = True) -> ExecStats:
        """Compute and cache partials for shards with unseen digests.

        Returns stats where ``shards_total`` counts the table's current
        shards and ``shards_scanned`` the ones actually computed now —
        0 when every partial was warm (e.g. after a byte-identical
        reload), exactly the number of new shards after an append. The
        chunk/row counters cover only the newly scanned shards.

        Partials keyed by digests the current shard set no longer
        contains — shards a compaction merged away or retention
        dropped — are stale by construction and deleted here, so
        ``VIEWS/partials/`` never accumulates orphans across shard
        rewrites.
        """
        view = self.get(name)
        store = self.store_for(view.table)
        _table, units = self._shard_units(view)
        stats = ExecStats(shards_total=len(units))
        funcs = [agg.func for agg in view.query.aggregates]
        for shard, digest in units:
            if store.get_partial(view.fingerprint, digest, funcs) \
                    is not None:
                continue
            partial = shard_value_partial(
                shard, view.query, kernel=executor, config=config,
                pushdown=pushdown, prune=prune, stats=stats)
            store.put_partial(view.fingerprint, digest, partial)
            stats.shards_scanned += 1
        store.prune_partials(view.fingerprint,
                             {digest for _shard, digest in units})
        return stats

    def serve(self, name: str, executor: str = "vectorized",
              config: ExecutionConfig | None = None,
              ) -> tuple[CohortResult, ExecStats]:
        """Refresh incrementally, then re-merge cached partials.

        The result is identical (rows, ordering, decoded labels) to
        executing the view's query directly: partials are merged with
        the same :class:`MergeState` protocol a sharded run uses, and
        rows are built by the same :func:`build_rows`.
        """
        stats = self.refresh(name, executor=executor, config=config)
        view = self.get(name)
        store = self.store_for(view.table)
        table, units = self._shard_units(view)
        funcs = [agg.func for agg in view.query.aggregates]
        state = MergeState(view.query)
        for _shard, digest in units:
            partial = store.get_partial(view.fingerprint, digest, funcs)
            if partial is None:  # pragma: no cover - store raced away
                raise CatalogError(
                    f"view {name!r}: partial for shard digest "
                    f"{digest[:12]}... vanished during serve")
            # collect_stats=False: the refresh above already counted
            # the work actually done; warm partials cost no scan.
            state.absorb(partial, stats, collect_stats=False)
        rows = build_rows(table, state, decoded_labels=True)
        query = view.query
        result = CohortResult(columns=query.output_columns, rows=rows,
                              n_cohort_columns=len(query.cohort_by))
        return result, stats
