"""Persistence for materialized-view partials and definitions.

A view's cached state is a set of **value-space**
:class:`~repro.cohana.pipeline.ChunkPartial` objects, one per shard,
keyed ``(view fingerprint, shard content digest)``. Value-space partials
are JSON-friendly by construction: cohort labels are tuples of strings
(decoded dictionary values, formatted timestamps) and ints, ages are
ints, and aggregate states are numbers or ``(sum, count)`` pairs (AVG).
JSON — not pickle — keeps the on-disk format inspectable and immune to
code-movement breakage across versions.

Two stores share one interface:

* :class:`DiskViewStore` lives in a ``VIEWS/`` directory next to a
  sharded table's ``MANIFEST.json``::

      GameActions/
          MANIFEST.json
          shard-000001.cohana
          VIEWS/
              weekly.view.json            <- definition (rebindable text)
              partials/<fingerprint>/<shard digest>.json

  Appends never touch existing shard bytes, so existing partial files
  stay valid verbatim; a byte-identical reload re-derives the same
  digests and finds every partial warm.

* :class:`MemoryViewStore` backs views over in-memory or single-file
  tables (keyed by the engine's version token when no content digest
  exists); it lives for the process only.

All writes are atomic (write-temp + fsync + ``os.replace``), matching
the manifest's discipline; a corrupt or unreadable partial file degrades to
a cache miss (the shard is re-scanned), never to a wrong answer.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.cohana.pipeline import ChunkPartial
from repro.errors import StorageError

#: Directory (inside a sharded table directory) holding view state.
VIEWS_DIRNAME = "VIEWS"
#: Partial-file schema version (bump on incompatible layout changes).
PARTIAL_VERSION = 1
#: Definition-file schema version.
DEFINITION_VERSION = 1


def encode_partial(partial: ChunkPartial) -> dict:
    """A JSON-able rendering of one value-space partial."""
    return {
        "format": "cohana-view-partial",
        "version": PARTIAL_VERSION,
        "n_aggregates": partial.n_aggregates,
        "rows_scanned": partial.rows_scanned,
        "users_seen": partial.users_seen,
        "users_qualified": partial.users_qualified,
        "tuples_aggregated": partial.tuples_aggregated,
        "cohort_sizes": [[list(label), count]
                         for label, count in partial.cohort_sizes.items()],
        "buckets": [[list(label), age,
                     [list(s) if isinstance(s, tuple) else s
                      for s in slots]]
                    for (label, age), slots in partial.buckets.items()],
    }


def decode_partial(payload: dict, funcs: list[str]) -> ChunkPartial:
    """Rebuild a :class:`ChunkPartial` from :func:`encode_partial` output.

    ``funcs`` is the query's aggregate function list in SELECT order —
    needed to restore AVG states to ``(sum, count)`` tuples (JSON turned
    them into lists).

    Raises:
        StorageError: on a structurally invalid payload.
    """
    if (payload.get("format") != "cohana-view-partial"
            or payload.get("version") != PARTIAL_VERSION):
        raise StorageError("not a cohana view partial (format="
                           f"{payload.get('format')!r}, version="
                           f"{payload.get('version')!r})")
    n_aggregates = payload["n_aggregates"]
    if n_aggregates != len(funcs):
        raise StorageError(
            f"view partial has {n_aggregates} aggregate slots, query "
            f"has {len(funcs)}")
    partial = ChunkPartial(
        n_aggregates=n_aggregates,
        rows_scanned=payload.get("rows_scanned", 0),
        users_seen=payload.get("users_seen", 0),
        users_qualified=payload.get("users_qualified", 0),
        tuples_aggregated=payload.get("tuples_aggregated", 0),
    )
    for label, count in payload["cohort_sizes"]:
        partial.cohort_sizes[tuple(label)] = count
    for label, age, slots in payload["buckets"]:
        if len(slots) != n_aggregates:
            raise StorageError("view partial bucket slot-count mismatch")
        restored = [tuple(s) if func == "AVG" and s is not None else s
                    for func, s in zip(funcs, slots)]
        partial.buckets[(tuple(label), age)] = restored
    return partial


class MemoryViewStore:
    """In-process store: definitions and partials in plain dicts."""

    def __init__(self):
        self._partials: dict[tuple[str, str], dict] = {}
        self._definitions: dict[str, dict] = {}

    # -- partials -------------------------------------------------------------

    def has_partial(self, fingerprint: str, digest: str) -> bool:
        return (fingerprint, digest) in self._partials

    def partial_digests(self, fingerprint: str) -> set[str]:
        return {d for f, d in self._partials if f == fingerprint}

    def get_partial(self, fingerprint: str, digest: str,
                    funcs: list[str]) -> ChunkPartial | None:
        payload = self._partials.get((fingerprint, digest))
        if payload is None:
            return None
        return decode_partial(payload, funcs)

    def put_partial(self, fingerprint: str, digest: str,
                    partial: ChunkPartial) -> None:
        self._partials[(fingerprint, digest)] = encode_partial(partial)

    def drop_partials(self, fingerprint: str) -> int:
        keys = [k for k in self._partials if k[0] == fingerprint]
        for key in keys:
            del self._partials[key]
        return len(keys)

    def prune_partials(self, fingerprint: str,
                       keep_digests: set[str]) -> int:
        keys = [k for k in self._partials
                if k[0] == fingerprint and k[1] not in keep_digests]
        for key in keys:
            del self._partials[key]
        return len(keys)

    # -- definitions ----------------------------------------------------------

    def save_definition(self, payload: dict) -> None:
        self._definitions[payload["name"]] = dict(payload)

    def load_definitions(self) -> list[dict]:
        return [dict(p) for _, p in sorted(self._definitions.items())]

    def drop_definition(self, name: str) -> bool:
        return self._definitions.pop(name, None) is not None


class DiskViewStore:
    """View state persisted inside a sharded table directory.

    Stateless wrapper over the directory: two instances pointing at the
    same path see the same store, so the engine can recreate it freely.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _partial_path(self, fingerprint: str, digest: str) -> Path:
        return self.root / "partials" / fingerprint / f"{digest}.json"

    def _definition_path(self, name: str) -> Path:
        return self.root / f"{name}.view.json"

    @staticmethod
    def _write_atomic(path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(json.dumps(payload, indent=2) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    # -- partials -------------------------------------------------------------

    def has_partial(self, fingerprint: str, digest: str) -> bool:
        return self._partial_path(fingerprint, digest).is_file()

    def partial_digests(self, fingerprint: str) -> set[str]:
        directory = self.root / "partials" / fingerprint
        if not directory.is_dir():
            return set()
        return {p.stem for p in directory.glob("*.json")}

    def get_partial(self, fingerprint: str, digest: str,
                    funcs: list[str]) -> ChunkPartial | None:
        path = self._partial_path(fingerprint, digest)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return decode_partial(payload, funcs)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, StorageError, KeyError, TypeError):
            # A damaged partial is a cache miss, never a wrong answer.
            return None

    def put_partial(self, fingerprint: str, digest: str,
                    partial: ChunkPartial) -> None:
        self._write_atomic(self._partial_path(fingerprint, digest),
                           encode_partial(partial))

    def drop_partials(self, fingerprint: str) -> int:
        directory = self.root / "partials" / fingerprint
        if not directory.is_dir():
            return 0
        files = list(directory.glob("*.json"))
        for path in files:
            path.unlink(missing_ok=True)
        try:
            directory.rmdir()
        except OSError:  # pragma: no cover - leftover foreign files
            pass
        return len(files)

    def prune_partials(self, fingerprint: str,
                       keep_digests: set[str]) -> int:
        """Delete partial files whose shard digest is no longer in
        ``keep_digests`` — shards that a compaction or retention prune
        removed from the manifest. The partial of a vanished shard can
        never be served again (no unit carries its digest), so keeping
        the file would only leak disk. Returns the number removed."""
        directory = self.root / "partials" / fingerprint
        if not directory.is_dir():
            return 0
        removed = 0
        for path in directory.glob("*.json"):
            if path.stem not in keep_digests:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    # -- definitions ----------------------------------------------------------

    def save_definition(self, payload: dict) -> None:
        self._write_atomic(self._definition_path(payload["name"]), payload)

    def load_definitions(self) -> list[dict]:
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("*.view.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if (payload.get("format") == "cohana-view"
                    and payload.get("version") == DEFINITION_VERSION
                    and isinstance(payload.get("name"), str)
                    and isinstance(payload.get("text"), str)):
                out.append(payload)
        return out

    def drop_definition(self, name: str) -> bool:
        path = self._definition_path(name)
        if path.is_file():
            path.unlink()
            return True
        return False

    def remove_if_empty(self) -> None:
        """Delete the ``VIEWS/`` scaffolding once the last view is gone
        (rmdir only succeeds on empty directories, so foreign files are
        never touched)."""
        for path in (self.root / "partials", self.root):
            try:
                path.rmdir()
            except OSError:
                pass
