"""Analyst-facing helpers built on cohort query results."""

from repro.analysis.retention import (
    RetentionMatrix,
    cohort_comparison,
    retention_matrix,
)

__all__ = ["RetentionMatrix", "cohort_comparison", "retention_matrix"]
