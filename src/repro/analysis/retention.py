"""Higher-level retention analytics on cohort query results.

The paper's headline application (Section 4.5) is user retention: a
``UserCount()`` cohort query yields absolute retained-user counts per
(cohort, age); this module turns that relation into the artifacts
analysts actually read — retention *rates* normalized by cohort size,
the classic retention triangle, and cross-cohort summary curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.cohort.result import CohortResult


@dataclass
class RetentionMatrix:
    """Retention rates per cohort per age.

    Attributes:
        cohort_labels: one per cohort, in sorted label order.
        cohort_sizes: users born into each cohort.
        ages: the age axis (sorted, positive).
        rates: ``rates[i][j]`` = retained fraction of cohort i at age
            ``ages[j]`` (None where the bucket is unobserved).
    """

    cohort_labels: list[str]
    cohort_sizes: list[int]
    ages: list[int]
    rates: list[list[float | None]]

    def rate(self, cohort_label: str, age: int) -> float | None:
        """The retention rate of one (cohort, age), or None."""
        try:
            i = self.cohort_labels.index(cohort_label)
            j = self.ages.index(age)
        except ValueError:
            return None
        return self.rates[i][j]

    def overall_curve(self) -> dict[int, float]:
        """Population-weighted retention rate per age across cohorts.

        Only cohorts with an observed bucket at an age contribute to
        that age's denominator (cohorts too young to have reached the
        age are excluded, avoiding the classic triangle bias).
        """
        curve: dict[int, float] = {}
        for j, age in enumerate(self.ages):
            retained = 0.0
            population = 0
            for i, size in enumerate(self.cohort_sizes):
                if self.rates[i][j] is None:
                    continue
                retained += self.rates[i][j] * size
                population += size
            if population:
                curve[age] = retained / population
        return curve

    def to_text(self, max_ages: int = 14) -> str:
        """The retention triangle as percentages."""
        ages = self.ages[:max_ages]
        label_w = max([len("cohort")]
                      + [len(f"{name} ({size})") for name, size in
                         zip(self.cohort_labels, self.cohort_sizes)])
        head = ("cohort".ljust(label_w) + " | "
                + "  ".join(f"{a:>4}" for a in ages))
        lines = ["retention (% of cohort)", head, "-" * len(head)]
        for label, size, row in zip(self.cohort_labels,
                                    self.cohort_sizes, self.rates):
            cells = "  ".join(
                "   ." if row[j] is None else f"{row[j] * 100:>3.0f}%"
                for j in range(len(ages)))
            lines.append(f"{label} ({size})".ljust(label_w) + " | "
                         + cells)
        return "\n".join(lines)


def retention_matrix(result: CohortResult,
                     measure: str | None = None) -> RetentionMatrix:
    """Normalize a ``UserCount()`` cohort result into retention rates.

    Args:
        result: a cohort query result whose measure counts distinct
            retained users (e.g. the paper's Q1).
        measure: the count column; defaults to the first measure.

    Raises:
        QueryError: if a bucket's count exceeds its cohort size (the
            measure is not a user count).
    """
    report = result.pivot(measure)
    rates: list[list[float | None]] = []
    for label, size, row in zip(report.cohort_labels,
                                report.cohort_sizes, report.cells):
        out_row: list[float | None] = []
        for value in row:
            if value is None:
                out_row.append(None)
                continue
            if value > size:
                raise QueryError(
                    f"bucket count {value} exceeds cohort size {size} "
                    f"for cohort {label!r}; retention needs a "
                    "UserCount()-style measure")
            out_row.append(value / size if size else None)
        rates.append(out_row)
    return RetentionMatrix(
        cohort_labels=report.cohort_labels,
        cohort_sizes=report.cohort_sizes,
        ages=report.ages,
        rates=rates,
    )


def cohort_comparison(result: CohortResult, measure: str | None = None,
                      at_age: int = 1) -> list[tuple[str, int, float]]:
    """Rank cohorts by a measure at a fixed age.

    Returns ``(label, size, value)`` triples sorted descending by value —
    a quick answer to "which cohorts perform best at age N?".
    """
    report = result.pivot(measure)
    ranked = []
    for label, size in zip(report.cohort_labels,
                           report.cohort_sizes):
        value = report.cell(label, at_age)
        if value is not None:
            ranked.append((label, size, value))
    ranked.sort(key=lambda item: item[2], reverse=True)
    return ranked
