"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure. Subsystems raise
the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema definition or schema/data mismatch is invalid."""


class PrimaryKeyError(SchemaError):
    """The (user, time, action) primary-key constraint is violated."""


class StorageError(ReproError):
    """A storage-format file is malformed or cannot be (de)serialized."""


class EncodingError(StorageError):
    """A column encoder received values it cannot represent."""


class QueryError(ReproError):
    """A query is semantically invalid for its target table."""


class ParseError(QueryError):
    """A query string failed to parse.

    Attributes:
        position: character offset of the offending token, if known.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(QueryError):
    """A parsed query references unknown tables, columns, or functions."""


class ExecutionError(ReproError):
    """A plan failed while executing (e.g. type error in an expression)."""


class CatalogError(ReproError):
    """A table name is unknown or already registered."""


class ServiceError(ReproError):
    """The query service was misconfigured or misused."""
