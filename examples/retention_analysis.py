"""User retention analysis (the paper's Q1/Q2 and Section 4.5).

Retention is the flagship cohort application: for each country launch
cohort, count the distinct users still active at each age. COHANA's
``UserCount()`` aggregate computes this per chunk (a user's tuples never
span chunks) and sums the partial counts.

Run:  python examples/retention_analysis.py
"""

from repro.cohana import CohanaEngine
from repro.datagen import GameConfig, generate
from repro.workloads import q1, q2

table = generate(GameConfig(n_users=200, seed=23))
engine = CohanaEngine()
engine.create_table("GameActions", table, target_chunk_rows=4096)

# -- Q1: retention of every country launch cohort -----------------------------

result, stats = engine.query_with_stats(q1())
print("Q1 — retained users per (country launch cohort, age):")
top = [row for row in result.rows if row[1] >= 10]  # cohorts of 10+ users
print(f"  ({len(result)} buckets total; showing cohorts with >= 10 "
      f"users)\n")
report = result.pivot("usercount")
shown = 0
for label, size, cells in zip(report.cohort_labels, report.cohort_sizes,
                              report.cells):
    if size < 10 or shown >= 6:
        continue
    shown += 1
    curve = "  ".join("." if v is None else str(v) for v in cells[:14])
    print(f"  {label:<15} (size {size:>3}): {curve}")
print(f"\nExecution: scanned {stats.chunks_scanned}/"
      f"{stats.chunks_total} chunks, {stats.users_qualified}/"
      f"{stats.users_seen} users qualified\n")

# -- Q2: restrict cohorts to a birth date range --------------------------------

result2, stats2 = engine.query_with_stats(q2())
print("Q2 — same, for cohorts born 2013-05-21 .. 2013-05-27:")
print(f"  buckets: {len(result2)}; users qualified: "
      f"{stats2.users_qualified}/{stats2.users_seen} "
      f"(birth-selection push-down skipped the rest)")
print(f"  chunks pruned by birth time range: {stats2.chunks_pruned}")

# -- the analysis API: rates, triangle, ranking --------------------------------

from repro.analysis import cohort_comparison, retention_matrix

matrix = retention_matrix(result)
print("\nOverall retention curve (population-weighted across cohorts):")
curve = matrix.overall_curve()
for age in (1, 3, 7, 14, 21):
    if age in curve:
        print(f"  day {age:>2}: {curve[age]:.0%} of each cohort still "
              "active")

print("\nBest-retaining cohorts at day 7 (cohorts of 10+ users):")
rated = [(label, size, matrix.rate(label, 7))
         for label, size in zip(matrix.cohort_labels,
                                matrix.cohort_sizes)
         if size >= 10 and matrix.rate(label, 7) is not None]
rated.sort(key=lambda item: item[2], reverse=True)
for label, size, rate in rated[:5]:
    print(f"  {label:<15} (size {size:>3}): {rate:.0%} retained")

print("\nMost retained users at day 7 (absolute, via "
      "cohort_comparison):")
for label, _size, count in cohort_comparison(result, at_age=7)[:3]:
    print(f"  {label:<15} {count} users")
