"""Quickstart: the paper's running example end to end.

Builds Table 1 (the mobile-game sample), compresses it into COHANA's
storage format, and runs Example 1 / query Q1:

    "For players who play the dwarf role at their birth time, cohort
     them by birth country and report the total gold spent on shopping
     since birth."

Run:  python examples/quickstart.py
"""

from repro.cohana import CohanaEngine
from repro.schema import ActivitySchema, LogicalType
from repro.table import ActivityTableBuilder

# -- 1. build the activity table (the paper's Table 1) -----------------------

schema = ActivitySchema.build(
    user="player", time="time", action="action",
    dimensions={"role": LogicalType.STRING, "country": LogicalType.STRING},
    measures={"gold": LogicalType.INT},
)

builder = ActivityTableBuilder(schema)
for row in [
    ("001", "2013/05/19:1000", "launch", "dwarf", "Australia", 0),
    ("001", "2013/05/20:0800", "shop", "dwarf", "Australia", 50),
    ("001", "2013/05/20:1400", "shop", "dwarf", "Australia", 100),
    ("001", "2013/05/21:1400", "shop", "assassin", "Australia", 50),
    ("001", "2013/05/22:0900", "fight", "assassin", "Australia", 0),
    ("002", "2013/05/20:0900", "launch", "wizard", "United States", 0),
    ("002", "2013/05/21:1500", "shop", "wizard", "United States", 30),
    ("002", "2013/05/22:1700", "shop", "wizard", "United States", 40),
    ("003", "2013/05/20:1000", "launch", "bandit", "China", 0),
    ("003", "2013/05/21:1000", "fight", "bandit", "China", 0),
]:
    builder.append_row(row)
table = builder.build()
print(f"Activity table: {table!r}\n")

# -- 2. load it into COHANA ---------------------------------------------------

engine = CohanaEngine()
compressed = engine.create_table("GameActions", table)
print(f"Compressed: {compressed!r}\n")

# -- 3. run the cohort query (the paper's Q1 for Example 1) -------------------

QUERY = """
SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
FROM GameActions
BIRTH FROM action = "launch" AND role = "dwarf"
AGE ACTIVITIES IN action = "shop"
COHORT BY country
"""

print("Query plan:")
print(engine.explain(QUERY))
print()

result = engine.query(QUERY)
print("Result relation:")
print(result.to_text())
print()
print("Cohort report (pivoted):")
print(result.pivot("spent").to_text())

# -- 4. parallel execution ----------------------------------------------------
#
# Execution is a chunk pipeline (parser → binder → planner → scheduler →
# kernels → merge; see ARCHITECTURE.md). ExecutionConfig picks the scan
# backend: `jobs=4` runs chunk scans on 4 threads, and chunk independence
# (no user spans two chunks) guarantees identical results.

parallel = engine.query(QUERY, jobs=4)          # backend="threads" implied
assert parallel.rows == result.rows
print("\nSame rows with jobs=4 over the chunk pipeline: OK")

# -- 5. compressed-domain scans ------------------------------------------------
#
# scan_mode selects the predicate-evaluation domain: "compressed"
# evaluates the birth/age conditions against the encoded chunks (chunk
# dictionaries, segment MIN/MAX, persisted zone maps) and prunes chunks
# from metadata alone; "decoded" materializes code arrays first. Rows
# are identical either way.

compressed = engine.query(QUERY, scan_mode="compressed")
decoded = engine.query(QUERY, scan_mode="decoded")
assert compressed.rows == decoded.rows == result.rows
_, stats = engine.query_with_stats(QUERY)       # scan_mode="auto"
print(f"Compressed-domain scan parity: OK "
      f"({stats.chunks_pruned}/{stats.chunks_total} chunks pruned, "
      f"{stats.chunks_pruned_zone} via zone maps/bounds)")
