"""The paper's motivating analysis: OLAP (Table 2) vs cohort (Table 3).

The OLAP query Qs reports weekly ``Avg(gold)`` and shows a muddled trend.
The cohort version separates the *aging* effect (read a row left to
right: players spend less as they age) from the *social-change* effect
(read a column top to bottom: later cohorts hold up better), which is
exactly the insight the flat GROUP BY cannot express.

Run:  python examples/shopping_trend.py
"""

from repro.cohana import CohanaEngine
from repro.datagen import GameConfig, generate
from repro.relational import Database
from repro.schema import parse_timestamp

config = GameConfig(n_users=200, seed=11)
table = generate(config)
origin = parse_timestamp(config.start)
print(f"Synthetic game dataset: {len(table)} activity tuples from "
      f"{len(table.distinct_users())} players\n")

# -- Table 2: the OLAP shopping trend (SQL GROUP BY) --------------------------

db = Database(executor="columnar")
db.register_activity_table("GameActions", table)
olap = db.execute(f"""
    SELECT week, Avg(gold) AS avgSpent
    FROM GameActions
    WHERE action = 'shop'
    GROUP BY Week(time, {origin}) AS week
    ORDER BY week
""")
from repro.relational import RelTable
from repro.schema import format_timestamp

pretty = RelTable(olap.names,
                  [(format_timestamp(week), round(avg, 2))
                   for week, avg in olap.rows])
print("Table 2 — OLAP weekly average spend:")
print(pretty.to_text())
print()

# -- Table 3: the cohort shopping trend ---------------------------------------

engine = CohanaEngine()
engine.create_table("GameActions", table, target_chunk_rows=4096)
query = engine.parse("""
    SELECT time, COHORTSIZE, AGE, Avg(gold) AS avgSpent
    FROM GameActions
    BIRTH FROM action = "launch"
    AGE ACTIVITIES IN action = "shop"
    COHORT BY time UNIT week
""", age_unit="week", time_bin_origin=origin)
result = engine.query(query)

print("Table 3 — weekly launch cohorts, Avg(gold) by age (weeks):")
print(result.pivot("avgSpent").to_text())
print()
print("Reading guide: rows show the aging effect (spend declines with "
      "age);\ncolumns show the social-change effect (later cohorts "
      "decline more slowly).")
