"""A miniature Figure 11: one query, every evaluation scheme.

Runs Q3 (country shop cohorts, average gold) on all five systems of the
paper's comparative study plus the iterator-executor ablation, verifies
they return identical results, and prints the timings.

Run:  python examples/scheme_comparison.py
"""

import time

from repro.baselines import SYSTEMS, prepare_system
from repro.datagen import BIRTH_ACTIONS, GameConfig, generate
from repro.workloads import bind, q3

table = generate(GameConfig(n_users=120, seed=31))
query = bind(q3("D"), table.schema)
print(f"Dataset: {len(table)} tuples, "
      f"{len(table.distinct_users())} players")
print(f"Query: Q3 — {q3('D')}\n")

reference = None
print(f"{'system':<14} {'prepare':>9} {'query':>9}   result")
for label in SYSTEMS:
    t0 = time.perf_counter()
    system = prepare_system(label, table, birth_actions=BIRTH_ACTIONS,
                            chunk_rows=4096)
    prepare_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = system.run(query)
    query_s = time.perf_counter() - t0
    rounded = [tuple(round(v, 6) if isinstance(v, float) else v
                     for v in row) for row in result.rows]
    if reference is None:
        reference = rounded
        status = f"{len(result)} buckets"
    else:
        status = "matches COHANA" if rounded == reference \
            else "!! MISMATCH !!"
    print(f"{label:<14} {prepare_s:>8.3f}s {query_s:>8.3f}s   {status}")

print("\n('prepare' = load + compress for COHANA, load + MV build for "
      "the -M schemes.)")
