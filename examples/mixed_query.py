"""Mixed cohort + SQL querying (the paper's Section 3.5 extension).

A cohort query runs first ("cohort query first" evaluation, which
guarantees no birth tuples are lost), its result is registered as a
relation, and an outer SQL query slices it — the paper's example of
retrieving specific cohort trends for further analysis:

    WITH cohorts AS (Q1)
    SELECT cohort, AGE, spent FROM cohorts
    WHERE cohort IN ["Australia", "China"]

Run:  python examples/mixed_query.py
"""

from repro.cohana import CohanaEngine
from repro.datagen import GameConfig, generate
from repro.relational import Database, RelTable

table = generate(GameConfig(n_users=150, seed=47))

# -- 1. the inner cohort query (evaluated first) -------------------------------

engine = CohanaEngine()
engine.create_table("GameActions", table, target_chunk_rows=4096)
cohorts = engine.query("""
    SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
    FROM GameActions
    BIRTH FROM action = "launch"
    AGE ACTIVITIES IN action = "shop"
    COHORT BY country
""")
print(f"Inner cohort query produced {len(cohorts)} "
      f"(cohort, age) buckets.\n")

# -- 2. register the cohort result and run the outer SQL -----------------------

db = Database(executor="columnar")
db.register("cohorts", RelTable(cohorts.columns, cohorts.rows))

outer = db.execute("""
    SELECT country, age, spent
    FROM cohorts
    WHERE country IN ('Australia', 'China') AND age <= 7
    ORDER BY country, age
""")
print("Outer SQL over the cohort result "
      "(WHERE cohort IN ['Australia','China'], first week):")
print(outer.to_text(max_rows=20))

# -- 3. OLAP on top: compare total early spend per selected cohort --------------

summary = db.execute("""
    SELECT country, Sum(spent) AS first_week_spend, Max(age) AS ages
    FROM cohorts
    WHERE age <= 7
    GROUP BY country
    ORDER BY first_week_spend DESC
    LIMIT 5
""")
print("\nTop cohorts by first-week spend (SQL aggregation over cohort "
      "results):")
print(summary.to_text())
