"""White-box tests of executor internals: join-key splitting, dense
factorization, sort ranking and empty-input edge cases."""

import numpy as np
import pytest

from repro.columnar.executor import _combine_codes, _factorize, _rank
from repro.relational import (
    BinaryOp,
    ColumnRef,
    Const,
    Database,
    RelSchema,
)
from repro.relational.row_executor import split_equi_conjuncts

from helpers import make_table1

LEFT = RelSchema(["a.p", "a.gold"])
RIGHT = RelSchema(["b.p", "b.gold"])


def col(name):
    return ColumnRef(name)


def equi(lhs, rhs):
    return BinaryOp("=", col(lhs), col(rhs))


class TestSplitEquiConjuncts:
    def test_simple_equi(self):
        lk, rk, residual = split_equi_conjuncts(equi("a.p", "b.p"),
                                                LEFT, RIGHT)
        assert [k.name for k in lk] == ["a.p"]
        assert [k.name for k in rk] == ["b.p"]
        assert residual is None

    def test_swapped_sides_normalized(self):
        lk, rk, residual = split_equi_conjuncts(equi("b.p", "a.p"),
                                                LEFT, RIGHT)
        assert [k.name for k in lk] == ["a.p"]
        assert [k.name for k in rk] == ["b.p"]

    def test_residual_preserved(self):
        pred = BinaryOp("AND", equi("a.p", "b.p"),
                        BinaryOp("<", col("a.gold"), col("b.gold")))
        lk, rk, residual = split_equi_conjuncts(pred, LEFT, RIGHT)
        assert len(lk) == 1
        assert residual is not None and residual.op == "<"

    def test_multi_key(self):
        pred = BinaryOp("AND", equi("a.p", "b.p"),
                        equi("a.gold", "b.gold"))
        lk, rk, residual = split_equi_conjuncts(pred, LEFT, RIGHT)
        assert len(lk) == 2 and residual is None

    def test_same_side_equality_is_residual(self):
        pred = equi("a.p", "a.gold")
        lk, rk, residual = split_equi_conjuncts(pred, LEFT, RIGHT)
        assert lk == [] and residual is pred

    def test_non_equality_is_residual(self):
        pred = BinaryOp("<", col("a.gold"), col("b.gold"))
        lk, _, residual = split_equi_conjuncts(pred, LEFT, RIGHT)
        assert lk == [] and residual is pred

    def test_literal_comparison_is_residual(self):
        pred = BinaryOp("=", col("a.gold"), Const(5))
        lk, _, residual = split_equi_conjuncts(pred, LEFT, RIGHT)
        assert lk == [] and residual is pred

    def test_none_predicate(self):
        lk, rk, residual = split_equi_conjuncts(None, LEFT, RIGHT)
        assert lk == [] and rk == [] and residual is None


class TestFactorize:
    def test_ints(self):
        codes, k = _factorize(np.array([5, 3, 5, 9]))
        assert k == 3
        assert codes[0] == codes[2]
        assert len(set(codes.tolist())) == 3

    def test_strings(self):
        arr = np.array(["b", "a", "b"], dtype=object)
        codes, k = _factorize(arr)
        assert k == 2
        assert codes[0] == codes[2] != codes[1]

    def test_mixed_types_fallback(self):
        # np.unique cannot sort int vs str; the dict fallback can.
        arr = np.array([1, "x", 1, None], dtype=object)
        codes, k = _factorize(arr)
        assert k == 3
        assert codes[0] == codes[2]

    def test_empty(self):
        codes, k = _factorize(np.array([], dtype=np.int64))
        assert len(codes) == 0 and k == 0

    def test_combine_codes_injective(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        combined = _combine_codes([a, b], 4)
        assert len(set(combined.tolist())) == 4

    def test_combine_codes_empty_list(self):
        assert _combine_codes([], 3).tolist() == [0, 0, 0]


class TestRank:
    def test_numeric_passthrough(self):
        arr = np.array([3, 1, 2])
        assert _rank(arr) is arr

    def test_object_ranks_lexicographic(self):
        arr = np.array(["b", "a", "c", "a"], dtype=object)
        ranks = _rank(arr)
        assert ranks[1] == ranks[3] < ranks[0] < ranks[2]


class TestExecutorEdgeCases:
    @pytest.fixture(params=["rows", "columnar"])
    def db(self, request):
        database = Database(executor=request.param)
        database.register_activity_table("D", make_table1())
        return database

    def test_join_against_empty_side(self, db):
        out = db.execute(
            "SELECT a.player FROM D a, "
            "(SELECT player FROM D WHERE gold > 9999) b "
            "WHERE a.player = b.player")
        assert len(out) == 0

    def test_group_by_on_empty_input_yields_nothing(self, db):
        out = db.execute("SELECT country, Sum(gold) AS s FROM D "
                         "WHERE gold > 9999 GROUP BY country")
        assert len(out) == 0

    def test_distinct_preserves_first_occurrence_order(self, db):
        out = db.execute("SELECT DISTINCT action FROM D")
        assert out.column("action")[0] == "launch"  # t1 comes first

    def test_limit_zero(self, db):
        assert len(db.execute("SELECT player FROM D LIMIT 0")) == 0

    def test_limit_beyond_size(self, db):
        assert len(db.execute("SELECT player FROM D LIMIT 999")) == 10

    def test_order_by_is_stable(self, db):
        out = db.execute("SELECT player, time FROM D ORDER BY player")
        times = [t for p, t in out.rows if p == "001"]
        assert times == sorted(times)  # original order kept within ties

    def test_min_max_on_strings(self, db):
        out = db.execute("SELECT Min(country) AS lo, Max(country) AS hi "
                         "FROM D")
        assert out.rows == [("Australia", "United States")]

    def test_nested_subquery_depth(self, db):
        out = db.execute(
            "SELECT x.player FROM (SELECT player FROM "
            "(SELECT player, gold FROM D WHERE gold > 0) y "
            "WHERE gold >= 50) x")
        assert len(out) == 3
