"""Unit tests for the cohort query language parser and binder."""

import pytest

from repro.errors import BindError, ParseError
from repro.cohana import bind_cohort_query, parse_cohort_query
from repro.cohort import (
    AgeRef,
    And,
    Between,
    BirthRef,
    Compare,
    InList,
)
from repro.schema import parse_timestamp

Q1 = """
SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
FROM D
AGE ACTIVITIES IN action = "shop"
BIRTH FROM action = "launch" AND role = "dwarf"
COHORT BY country
"""

Q4 = """
SELECT country, COHORTSIZE, AGE, Avg(gold)
FROM GameActions
BIRTH FROM action = "shop" AND
  time BETWEEN "2013-05-21" AND "2013-05-27" AND
  role = "dwarf" AND
  country IN ["China", "Australia", "United States"]
AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
COHORT BY country
"""


class TestParser:
    def test_q1_shape(self):
        parsed = parse_cohort_query(Q1)
        assert parsed.table == "D"
        assert parsed.cohort_by == ["country"]
        kinds = [i.kind for i in parsed.select_items]
        assert kinds == ["attr", "cohortsize", "age", "agg"]
        assert parsed.select_items[3].func == "SUM"
        assert parsed.select_items[3].column == "gold"
        assert parsed.select_items[3].alias == "spent"

    def test_clause_order_irrelevant(self):
        a = parse_cohort_query(Q1)
        b = parse_cohort_query(Q1.replace(
            'AGE ACTIVITIES IN action = "shop"\nBIRTH FROM action = '
            '"launch" AND role = "dwarf"',
            'BIRTH FROM action = "launch" AND role = "dwarf"\n'
            'AGE ACTIVITIES IN action = "shop"'))
        assert a.birth_clause == b.birth_clause
        assert a.age_clause == b.age_clause

    def test_q4_conditions(self):
        parsed = parse_cohort_query(Q4)
        assert isinstance(parsed.birth_clause, And)
        assert len(parsed.birth_clause.parts) == 4
        between = parsed.birth_clause.parts[1]
        assert isinstance(between, Between)
        in_list = parsed.birth_clause.parts[3]
        assert isinstance(in_list, InList)
        assert in_list.values == ("China", "Australia", "United States")
        assert isinstance(parsed.age_clause, And)
        birth_cmp = parsed.age_clause.parts[1]
        assert isinstance(birth_cmp.right, BirthRef)

    def test_age_keyword_in_condition(self):
        parsed = parse_cohort_query(
            'SELECT country, UserCount() FROM D '
            'BIRTH FROM action = "launch" '
            'AGE ACTIVITIES IN AGE < 7 COHORT BY country')
        cmp = parsed.age_clause
        assert isinstance(cmp, Compare)
        assert isinstance(cmp.left, AgeRef)

    def test_usercount_parses(self):
        parsed = parse_cohort_query(
            'SELECT country, COHORTSIZE, AGE, UserCount() FROM D '
            'BIRTH FROM action = "launch" COHORT BY country')
        agg = parsed.select_items[-1]
        assert agg.func == "USERCOUNT"
        assert agg.column is None

    def test_cohort_by_unit(self):
        parsed = parse_cohort_query(
            'SELECT time, Sum(gold) FROM D BIRTH FROM action = "launch" '
            'COHORT BY time UNIT week')
        assert parsed.cohort_by == ["time"]
        assert parsed.cohort_time_bin == "week"

    def test_multi_cohort_attrs(self):
        parsed = parse_cohort_query(
            'SELECT country, role, Sum(gold) FROM D '
            'BIRTH FROM action = "launch" COHORT BY country, role')
        assert parsed.cohort_by == ["country", "role"]

    def test_missing_birth_from(self):
        with pytest.raises(ParseError, match="BIRTH FROM"):
            parse_cohort_query(
                'SELECT country, Sum(gold) FROM D COHORT BY country')

    def test_missing_cohort_by(self):
        with pytest.raises(ParseError, match="COHORT BY"):
            parse_cohort_query(
                'SELECT country, Sum(gold) FROM D '
                'BIRTH FROM action = "launch"')

    def test_duplicate_clause(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_cohort_query(
                'SELECT c, Sum(g) FROM D BIRTH FROM action = "x" '
                'BIRTH FROM action = "y" COHORT BY c')

    def test_or_and_not_conditions(self):
        parsed = parse_cohort_query(
            'SELECT c, Sum(g) FROM D '
            'BIRTH FROM action = "x" AND (c = "a" OR NOT c = "b") '
            'COHORT BY c')
        assert isinstance(parsed.birth_clause, And)

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_cohort_query('SELECT c FROM D BIRTH FROM action = "x')

    def test_garbage_trailing_token(self):
        with pytest.raises(ParseError, match="unexpected"):
            parse_cohort_query(
                'SELECT c, Sum(g) FROM D BIRTH FROM action = "x" '
                'COHORT BY c EXTRA')

    def test_comments_ignored(self):
        parsed = parse_cohort_query(
            'SELECT c, Sum(g) FROM D -- a comment\n'
            'BIRTH FROM action = "x" COHORT BY c')
        assert parsed.table == "D"


class TestLexerLiterals:
    """The shared lexer's string/number edge cases."""

    def _strings(self, source):
        from repro.common import STRING, tokenize

        return [t.text for t in tokenize(source) if t.kind == STRING]

    def test_doubled_quote_escapes(self):
        assert self._strings("'O''Brien'") == ["O'Brien"]
        assert self._strings('"say ""hi"" now"') == ['say "hi" now']

    def test_doubled_quote_at_edges(self):
        assert self._strings("'''x'") == ["'x"]
        assert self._strings("'x'''") == ["x'"]
        assert self._strings("''''") == ["'"]

    def test_empty_string_still_empty(self):
        assert self._strings("''") == [""]
        assert self._strings("'' ''") == ["", ""]

    def test_unterminated_after_doubled_quote(self):
        from repro.common import tokenize

        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'abc''")

    def test_quoted_value_flows_through_parser(self):
        parsed = parse_cohort_query(
            "SELECT c, Sum(g) FROM D "
            "BIRTH FROM action = 'launch' AND c = 'O''Brien' "
            "COHORT BY c")
        assert parsed.table == "D"

    def test_number_with_two_dots_rejected(self):
        from repro.common import tokenize

        with pytest.raises(ParseError, match="more than one"):
            tokenize("1.2.3")

    def test_bad_number_in_query_is_parse_error(self):
        # Before the fix "1.2.3" lexed as one NUMBER and crashed
        # later in float().
        with pytest.raises(ParseError, match="more than one"):
            parse_cohort_query(
                'SELECT c, Sum(g) FROM D '
                'BIRTH FROM action = "x" AND g = 1.2.3 COHORT BY c')

    def test_plain_numbers_still_lex(self):
        from repro.common import NUMBER, tokenize

        tokens = [t.text for t in tokenize("7 1.5 0.25")
                  if t.kind == NUMBER]
        assert tokens == ["7", "1.5", "0.25"]


class TestBinder:
    def test_q1_binding(self, game_schema):
        query = bind_cohort_query(parse_cohort_query(Q1), game_schema)
        assert query.birth_action == "launch"
        assert str(query.birth_condition) == "role = 'dwarf'"
        assert query.cohort_by == ("country",)
        assert query.aggregates[0].alias == "spent"
        assert query.table == "D"

    def test_time_literals_coerced(self, game_schema):
        query = bind_cohort_query(parse_cohort_query(Q4), game_schema)
        between = query.birth_condition.parts[0]
        assert between.low.raw == parse_timestamp("2013-05-21")
        assert between.high.raw == parse_timestamp("2013-05-27")

    def test_missing_action_conjunct(self, game_schema):
        parsed = parse_cohort_query(
            'SELECT country, Sum(gold) FROM D '
            'BIRTH FROM role = "dwarf" COHORT BY country')
        with pytest.raises(BindError, match="action"):
            bind_cohort_query(parsed, game_schema)

    def test_select_attr_not_in_cohort_by(self, game_schema):
        parsed = parse_cohort_query(
            'SELECT role, Sum(gold) FROM D '
            'BIRTH FROM action = "launch" COHORT BY country')
        with pytest.raises(BindError, match="COHORT BY"):
            bind_cohort_query(parsed, game_schema)

    def test_no_aggregate(self, game_schema):
        parsed = parse_cohort_query(
            'SELECT country, COHORTSIZE FROM D '
            'BIRTH FROM action = "launch" COHORT BY country')
        with pytest.raises(BindError, match="aggregate"):
            bind_cohort_query(parsed, game_schema)

    def test_unknown_aggregate_column(self, game_schema):
        parsed = parse_cohort_query(
            'SELECT country, Sum(bogus) FROM D '
            'BIRTH FROM action = "launch" COHORT BY country')
        with pytest.raises(BindError):
            bind_cohort_query(parsed, game_schema)

    def test_unknown_condition_column(self, game_schema):
        parsed = parse_cohort_query(
            'SELECT country, Sum(gold) FROM D '
            'BIRTH FROM action = "launch" AND bogus = 1 COHORT BY country')
        with pytest.raises(BindError):
            bind_cohort_query(parsed, game_schema)

    def test_default_aliases_unique(self, game_schema):
        parsed = parse_cohort_query(
            'SELECT country, Sum(gold), Sum(gold) FROM D '
            'BIRTH FROM action = "launch" COHORT BY country')
        query = bind_cohort_query(parsed, game_schema)
        aliases = [a.alias for a in query.aggregates]
        assert aliases == ["sum_gold", "sum_gold_2"]

    def test_age_unit_passthrough(self, game_schema):
        query = bind_cohort_query(parse_cohort_query(Q1), game_schema,
                                  age_unit="week")
        assert query.age_unit == "week"
