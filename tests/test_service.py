"""The caching query service: fingerprints, caches, admission, CLI.

Covers the PR-4 surface: version tokens (content digests for on-disk
tables, monotonic counters in memory), canonical fingerprints, result
cache hit/miss digest parity, invalidation on ``replace=True`` and on
rewritten ``.cohana`` files, LRU eviction order, single-flight
deduplication under the threads backend, backend preservation on cached
hits, and the ``serve`` / ``query --no-cache`` CLI surface.
"""

import hashlib
import io
import threading

import pytest

from repro.cli import main
from repro.cohana import CohanaEngine
from repro.cohana.pipeline import ChunkKernel, KERNELS, register_kernel
from repro.datagen import GameConfig, generate
from repro.errors import CatalogError, ServiceError
from repro.service import (
    DISPOSITIONS,
    LRUCache,
    QueryService,
    plan_fingerprint,
    query_key,
    result_fingerprint,
)
from repro.storage import compress, load, save
from repro.storage.format import DIGEST_VERSION, serialize, deserialize

from helpers import make_table1

QUERY = ('SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent FROM G '
         'BIRTH FROM action = "launch" COHORT BY country')
QUERY_VARIANT = ('select   country, COHORTSIZE, AGE, Sum(gold) AS spent '
                 'FROM G BIRTH FROM action = "launch" COHORT BY country')
OTHER_QUERY = ('SELECT role, COHORTSIZE, AGE, UserCount() FROM G '
               'BIRTH FROM action = "launch" COHORT BY role')
THIRD_QUERY = ('SELECT country, COHORTSIZE, AGE, UserCount() FROM G '
               'BIRTH FROM action = "shop" COHORT BY country')


def _game_table(seed=3, users=30):
    return generate(GameConfig(n_users=users, seed=seed))


def _digest(result):
    return hashlib.sha256(repr(result.rows).encode()).hexdigest()


@pytest.fixture
def engine():
    eng = CohanaEngine()
    eng.create_table("G", _game_table(), target_chunk_rows=64)
    return eng


@pytest.fixture
def service(engine):
    return QueryService(engine)


# -- version tokens -----------------------------------------------------------


class TestVersionTokens:
    def test_memory_tokens_are_monotonic(self):
        eng = CohanaEngine()
        eng.create_table("A", make_table1())
        eng.create_table("B", make_table1())
        ta, tb = eng.version_token("A"), eng.version_token("B")
        assert ta.startswith("mem:") and tb.startswith("mem:")
        assert ta != tb

    def test_replace_bumps_memory_token(self):
        eng = CohanaEngine()
        eng.create_table("A", make_table1())
        before = eng.version_token("A")
        eng.create_table("A", make_table1(), replace=True)
        assert eng.version_token("A") != before

    def test_on_disk_token_is_content_digest(self, tmp_path):
        path = tmp_path / "t.cohana"
        save(compress(make_table1(), target_chunk_rows=4), path)
        eng = CohanaEngine()
        eng.load_table("D", path)
        token = eng.version_token("D")
        assert token.startswith("sha256:")
        # Reloading identical bytes yields the identical token.
        eng2 = CohanaEngine()
        eng2.load_table("D", path)
        assert eng2.version_token("D") == token

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            CohanaEngine().version_token("nope")

    def test_dropped_table_raises(self):
        eng = CohanaEngine()
        eng.create_table("A", make_table1())
        eng.drop_table("A")
        with pytest.raises(CatalogError):
            eng.version_token("A")


class TestFormatV4Digest:
    def test_header_digest_round_trips(self):
        compressed = compress(make_table1(), target_chunk_rows=4)
        data = serialize(compressed, version=DIGEST_VERSION)
        back = deserialize(data)
        assert back.content_digest is not None
        # The header digest covers every byte after the digest field.
        prefix = len(b"COHANA01") + 2 + 32
        assert back.content_digest == hashlib.sha256(
            data[prefix:]).hexdigest()

    def test_digest_deterministic_and_content_sensitive(self):
        a = deserialize(serialize(compress(make_table1(),
                                           target_chunk_rows=4)))
        b = deserialize(serialize(compress(make_table1(),
                                           target_chunk_rows=4)))
        c = deserialize(serialize(compress(_game_table(),
                                           target_chunk_rows=64)))
        assert a.content_digest == b.content_digest
        assert a.content_digest != c.content_digest

    @pytest.mark.parametrize("version", (1, 2))
    def test_old_eager_versions_get_computed_digest(self, tmp_path,
                                                    version):
        path = tmp_path / "t.cohana"
        save(compress(make_table1(), target_chunk_rows=4), path,
             version=version)
        table = load(path)
        assert table.content_digest is not None
        assert load(path).content_digest == table.content_digest

    def test_v3_lazy_load_hashes_bytes_once(self, tmp_path):
        """Lazy v3 loads hash the mmap'd bytes (no chunk is parsed) so
        they get the same sha256: token as eager loads — a byte-
        identical re-registration must not cold-start the cache."""
        path = tmp_path / "t.cohana"
        save(compress(make_table1(), target_chunk_rows=4), path,
             version=3)
        lazy = load(path)
        assert lazy.is_lazy
        assert lazy.chunks.loaded_count == 0  # digest without parsing
        eager = load(path, lazy=False)
        assert lazy.content_digest == eager.content_digest is not None
        eng = CohanaEngine()
        eng.register("D", lazy)
        token = eng.version_token("D")
        assert token.startswith("sha256:")
        eng.register("D", load(path), replace=True)
        assert eng.version_token("D") == token

    def test_in_memory_table_has_no_digest(self):
        assert compress(make_table1()).content_digest is None


# -- fingerprints -------------------------------------------------------------


class TestFingerprints:
    def test_textual_variants_share_fingerprint(self, engine):
        a = engine.parse(QUERY)
        b = engine.parse(QUERY_VARIANT)
        assert query_key(a) == query_key(b)
        assert result_fingerprint(a, "t") == result_fingerprint(b, "t")

    def test_parse_options_change_fingerprint(self, engine):
        a = engine.parse(QUERY)
        b = engine.parse(QUERY, age_unit="week")
        assert result_fingerprint(a, "t") != result_fingerprint(b, "t")

    def test_token_changes_fingerprint(self, engine):
        q = engine.parse(QUERY)
        assert result_fingerprint(q, "t1") != result_fingerprint(q, "t2")

    def test_plan_fingerprint_tracks_planning_knobs(self, engine):
        q = engine.parse(QUERY)
        base = plan_fingerprint(q, "t")
        assert plan_fingerprint(q, "t", prune=False) != base
        assert plan_fingerprint(q, "t", scan_mode="decoded") != base
        assert plan_fingerprint(q, "t") == base


# -- result cache -------------------------------------------------------------


class TestResultCache:
    def test_hit_digest_matches_miss(self, service):
        r1, s1 = service.query_with_stats(QUERY)
        r2, s2 = service.query_with_stats(QUERY)
        assert (s1.cache_disposition, s2.cache_disposition) \
            == ("miss", "hit")
        assert _digest(r1) == _digest(r2)
        assert s1.cache_misses == 1 and s2.cache_hits == 1
        # The hit's scan counters describe the cold run that did the work.
        assert s2.rows_scanned == s1.rows_scanned > 0

    def test_hit_matches_direct_engine_execution(self, service, engine):
        service.query(QUERY)
        cached = service.query(QUERY)
        assert _digest(cached) == _digest(engine.query(QUERY))

    def test_textual_variant_hits(self, service):
        _, s1 = service.query_with_stats(QUERY)
        _, s2 = service.query_with_stats(QUERY_VARIANT)
        assert s2.cache_disposition == "hit"

    def test_bypass_executes_without_caching(self, service):
        _, s1 = service.query_with_stats(QUERY, use_cache=False)
        assert s1.cache_disposition == "bypass"
        _, s2 = service.query_with_stats(QUERY)
        assert s2.cache_disposition == "miss"  # nothing was cached

    def test_disabled_service_defaults_to_bypass(self, engine):
        svc = QueryService(engine, enabled=False)
        _, s = svc.query_with_stats(QUERY)
        assert s.cache_disposition == "bypass"
        _, s = svc.query_with_stats(QUERY, use_cache=True)
        assert s.cache_disposition == "miss"

    def test_callers_cannot_poison_the_cache(self, service):
        first = service.query(QUERY)
        first.rows.clear()
        first.columns.append("junk")
        again = service.query(QUERY)
        assert len(again.rows) > 0
        assert "junk" not in again.columns

    def test_cross_configuration_hit(self, service):
        """Results are parity-guaranteed across executors/backends, so
        one cached result serves every configuration."""
        _, s1 = service.query_with_stats(QUERY, executor="vectorized")
        _, s2 = service.query_with_stats(QUERY, executor="iterator",
                                         backend="threads", jobs=2)
        assert s2.cache_disposition == "hit"

    def test_dispositions_enumerated(self):
        assert set(DISPOSITIONS) == {"hit", "miss", "bypass",
                                     "invalidated", "refresh"}


# -- invalidation -------------------------------------------------------------


class TestInvalidation:
    def test_register_replace_invalidates(self, service, engine):
        before = service.query(QUERY)
        engine.create_table("G", _game_table(seed=9), replace=True,
                            target_chunk_rows=64)
        after, stats = service.query_with_stats(QUERY)
        assert stats.cache_disposition == "invalidated"
        assert stats.cache_invalidations == 1
        assert _digest(after) != _digest(before)
        # The fresh result is cached under the new token.
        _, s2 = service.query_with_stats(QUERY)
        assert s2.cache_disposition == "hit"

    def test_rewritten_file_invalidates(self, tmp_path):
        path = tmp_path / "g.cohana"
        save(compress(_game_table(seed=3), target_chunk_rows=64), path)
        eng = CohanaEngine()
        eng.load_table("G", path)
        svc = QueryService(eng)
        before = svc.query(QUERY)
        # Rewrite the same path with different content and re-register.
        save(compress(_game_table(seed=9), target_chunk_rows=64), path)
        eng.register("G", load(path), replace=True)
        after, stats = svc.query_with_stats(QUERY)
        assert stats.cache_disposition == "invalidated"
        assert _digest(after) != _digest(before)

    def test_identical_rewrite_keeps_cache(self, tmp_path):
        """Re-registering byte-identical content keeps the same digest
        token, so cached results stay valid — a hit, not a stale read."""
        path = tmp_path / "g.cohana"
        save(compress(_game_table(seed=3), target_chunk_rows=64), path)
        eng = CohanaEngine()
        eng.load_table("G", path)
        svc = QueryService(eng)
        svc.query(QUERY)
        save(compress(_game_table(seed=3), target_chunk_rows=64), path)
        eng.register("G", load(path), replace=True)
        _, stats = svc.query_with_stats(QUERY)
        assert stats.cache_disposition == "hit"

    def test_explicit_invalidate_table(self, service):
        service.query(QUERY)
        assert service.invalidate_table("G") == 1
        _, stats = service.query_with_stats(QUERY)
        assert stats.cache_disposition == "miss"


# -- LRU ----------------------------------------------------------------------


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1     # refresh a; b is now oldest
        assert cache.put("c", 3) == 1  # evicts b
        assert cache.keys() == ["a", "c"]
        assert cache.get("b") is None
        assert cache.counters.evictions == 1
        assert cache.counters.misses == 1

    def test_peek_does_not_touch_recency_or_counters(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.counters.hits == 0
        cache.put("c", 3)  # a is still oldest: peek refreshed nothing
        assert cache.keys() == ["b", "c"]

    def test_invalidate_counts_separately_from_eviction(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.counters.invalidations == 1
        assert cache.counters.evictions == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ServiceError):
            LRUCache(max_entries=0)

    def test_service_lru_eviction_end_to_end(self, engine):
        svc = QueryService(engine, result_entries=2)
        svc.query(QUERY)
        svc.query(OTHER_QUERY)
        svc.query(QUERY)        # refresh QUERY
        svc.query(THIRD_QUERY)  # evicts OTHER_QUERY
        _, s_kept = svc.query_with_stats(QUERY)
        assert s_kept.cache_disposition == "hit"
        _, s_evicted = svc.query_with_stats(OTHER_QUERY)
        assert s_evicted.cache_disposition == "miss"
        assert svc.results.counters.evictions >= 1

    def test_eviction_count_reported_in_stats(self, engine):
        svc = QueryService(engine, result_entries=1)
        svc.query(QUERY)
        _, stats = svc.query_with_stats(OTHER_QUERY)
        assert stats.cache_disposition == "miss"
        assert stats.cache_evictions == 1


# -- single-flight ------------------------------------------------------------


@pytest.fixture
def gated_kernel():
    """A kernel that signals when the first scan starts and then blocks
    until released — lets the test hold a leader mid-execution while
    followers pile onto the same fingerprint."""
    started = threading.Event()
    release = threading.Event()
    calls = []
    inner = KERNELS["vectorized"].scan

    def scan(table, chunk, plan):
        calls.append(chunk.index)
        started.set()
        assert release.wait(timeout=10), "test forgot to release kernel"
        return inner(table, chunk, plan)

    register_kernel(ChunkKernel(name="gated", scan=scan))
    try:
        yield started, release, calls
    finally:
        del KERNELS["gated"]


class TestSingleFlight:
    def test_concurrent_identical_queries_execute_once(self, engine,
                                                       gated_kernel):
        started, release, calls = gated_kernel
        svc = QueryService(engine, executor="gated")
        outcomes = []

        def call():
            outcomes.append(svc.query_with_stats(QUERY, backend="threads",
                                                 jobs=2))

        threads = [threading.Thread(target=call) for _ in range(4)]
        threads[0].start()
        assert started.wait(timeout=10)
        for t in threads[1:]:
            t.start()
        # Followers must register as waiters before the leader finishes.
        deadline = threading.Event()
        for _ in range(200):
            if svc.counters.singleflight_waits == 3:
                break
            deadline.wait(0.01)
        assert svc.counters.singleflight_waits == 3
        release.set()
        for t in threads:
            t.join(timeout=30)
        assert len(outcomes) == 4
        dispositions = sorted(s.cache_disposition for _, s in outcomes)
        assert dispositions == ["hit", "hit", "hit", "miss"]
        digests = {_digest(r) for r, _ in outcomes}
        assert len(digests) == 1
        # One execution total: every chunk scanned exactly once.
        assert len(calls) == len(set(calls))

    def test_batch_deduplicates_and_preserves_order(self, service):
        results = service.query_batch([QUERY, OTHER_QUERY, QUERY],
                                      concurrency=3)
        assert len(results) == 3
        assert _digest(results[0]) == _digest(results[2])
        assert _digest(results[0]) != _digest(results[1])
        # 3 calls, but only 2 distinct executions.
        assert service.counters.misses == 2
        assert service.counters.hits == 1

    def test_batch_with_stats(self, service):
        pairs = service.query_batch([QUERY, QUERY], concurrency=2,
                                    with_stats=True)
        dispositions = sorted(s.cache_disposition for _, s in pairs)
        assert dispositions == ["hit", "miss"]

    def test_batch_rejects_bad_concurrency(self, service):
        with pytest.raises(ServiceError):
            service.query_batch([QUERY, OTHER_QUERY], concurrency=0)

    def test_empty_batch(self, service):
        assert service.query_batch([]) == []


# -- backend survival through the cache layer ---------------------------------


class TestBackendSurvival:
    @pytest.fixture
    def disk_service(self, tmp_path):
        path = tmp_path / "g.cohana"
        save(compress(_game_table(), target_chunk_rows=64), path)
        eng = CohanaEngine()
        eng.load_table("G", path)
        return QueryService(eng)

    def test_explicit_backend_survives_hit_explain(self, disk_service):
        """An explicitly requested backend must show up in EXPLAIN even
        when the result is served from cache — the cache layer must not
        re-resolve it away."""
        disk_service.query(QUERY, backend="threads", jobs=2)
        out = disk_service.explain(QUERY, backend="threads", jobs=2)
        assert "backend=threads" in out
        assert "disposition=hit" in out

    def test_hit_without_explicit_backend_reports_cold_config(
            self, disk_service):
        """With backend=None, a hit reports the configuration of the
        run that produced the cached bytes instead of re-resolving —
        re-resolution would flip to 'processes' for this on-disk table
        and misreport what actually executed."""
        disk_service.query(QUERY, backend="threads", jobs=2)
        out = disk_service.explain(QUERY)
        assert "backend=threads" in out
        assert "disposition=hit" in out

    def test_miss_resolves_processes_for_on_disk_tables(self,
                                                        disk_service):
        out = disk_service.explain(QUERY, jobs=2)
        assert "disposition=miss" in out
        assert "backend=processes" in out

    def test_explain_does_not_distort_cache_state(self, disk_service):
        """EXPLAIN is observational: no counters move, nothing is
        inserted into either cache."""
        disk_service.explain(QUERY)
        assert len(disk_service.plans) == 0
        assert len(disk_service.results) == 0
        assert disk_service.plans.counters.as_dict() == {
            "hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
        assert disk_service.results.counters.as_dict() == {
            "hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}

    def test_explain_reports_bypass_and_invalidated(self, disk_service):
        assert "disposition=bypass" in disk_service.explain(
            QUERY, use_cache=False)
        disk_service.query(QUERY)
        eng = disk_service.engine
        eng.create_table("G", _game_table(seed=9), replace=True,
                         target_chunk_rows=64)
        assert "disposition=invalidated" in disk_service.explain(QUERY)


# -- CLI ----------------------------------------------------------------------


@pytest.fixture
def demo_cohana(tmp_path):
    csv = tmp_path / "demo.csv"
    assert main(["generate", str(csv), "--users", "8", "--seed",
                 "5"]) == 0
    path = tmp_path / "demo.cohana"
    assert main(["compress", str(csv), str(path), "--chunk-rows",
                 "64"]) == 0
    return path


CLI_QUERY = ('SELECT country, COHORTSIZE, AGE, UserCount() FROM D '
             'BIRTH FROM action = "launch" COHORT BY country')


class TestServeCLI:
    def _serve(self, monkeypatch, capsys, path, text, extra=()):
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        assert main(["serve", str(path), *extra]) == 0
        return capsys.readouterr()

    def test_piped_queries_hit_after_miss(self, demo_cohana,
                                          monkeypatch, capsys):
        out = self._serve(monkeypatch, capsys, demo_cohana,
                          f"{CLI_QUERY}\n{CLI_QUERY}\n",
                          extra=("--jobs", "2", "--stats"))
        assert "== miss:" in out.out
        assert "== hit:" in out.out
        assert "cohort_size" in out.out
        assert "[batch of 2" in out.out

    def test_meta_stats_and_quit(self, demo_cohana, monkeypatch,
                                 capsys):
        out = self._serve(monkeypatch, capsys, demo_cohana,
                          f"{CLI_QUERY}\n.stats\n.quit\n")
        assert '"singleflight_waits"' in out.out

    def test_meta_explain(self, demo_cohana, monkeypatch, capsys):
        out = self._serve(monkeypatch, capsys, demo_cohana,
                          f".explain {CLI_QUERY}\n")
        assert "Cache(disposition=miss" in out.out

    def test_no_cache_flag(self, demo_cohana, monkeypatch, capsys):
        out = self._serve(monkeypatch, capsys, demo_cohana,
                          f"{CLI_QUERY}\n{CLI_QUERY}\n",
                          extra=("--no-cache",))
        assert "== bypass:" in out.out
        assert "== hit:" not in out.out

    def test_bad_query_reported_not_fatal(self, demo_cohana,
                                          monkeypatch, capsys):
        out = self._serve(monkeypatch, capsys, demo_cohana,
                          f"SELECT nonsense\n{CLI_QUERY}\n")
        assert "error:" in out.err
        assert "cohort_size" in out.out

    def test_comments_and_blanks_skipped(self, demo_cohana,
                                         monkeypatch, capsys):
        out = self._serve(monkeypatch, capsys, demo_cohana,
                          f"# a comment\n\n{CLI_QUERY};\n")
        assert "cohort_size" in out.out

    def test_multiline_query_accumulates(self, demo_cohana,
                                         monkeypatch, capsys):
        """A statement split across lines is one query, not a pile of
        broken fragments (terminated by ';' or by parsing whole)."""
        multiline = ('SELECT country, COHORTSIZE, AGE, UserCount()\n'
                     'FROM D\n'
                     'BIRTH FROM action = "launch"\n'
                     'COHORT BY country;\n')
        out = self._serve(monkeypatch, capsys, demo_cohana, multiline)
        assert "cohort_size" in out.out
        assert "error:" not in out.err

    def test_multiline_without_semicolon_completes_on_parse(
            self, demo_cohana, monkeypatch, capsys):
        multiline = ('SELECT country, COHORTSIZE, AGE, UserCount()\n'
                     'FROM D BIRTH FROM action = "launch"\n'
                     'COHORT BY country\n'
                     f'{CLI_QUERY}\n')
        out = self._serve(monkeypatch, capsys, demo_cohana, multiline,
                          extra=("--stats",))
        assert "[batch of 2" in out.out

    def test_parseable_prefix_still_extends(self, demo_cohana,
                                            monkeypatch, capsys):
        """A buffer that already parses is held, not executed: the next
        line may legally extend it (clauses accept either order), and
        splitting early would silently run a different query."""
        text = ('SELECT country, COHORTSIZE, AGE, UserCount() '
                'FROM D BIRTH FROM action = "launch" '
                'COHORT BY country\n'
                'AGE ACTIVITIES IN action = "shop";\n')
        out = self._serve(monkeypatch, capsys, demo_cohana, text)
        assert out.out.count("== ") == 1  # ONE statement, with the
        assert "error:" not in out.err    # age clause applied

    def test_broken_fragment_does_not_swallow_next_query(
            self, demo_cohana, monkeypatch, capsys):
        out = self._serve(monkeypatch, capsys, demo_cohana,
                          f"SELECT oops FROM\n{CLI_QUERY}\n")
        assert "error:" in out.err
        assert "cohort_size" in out.out

    def test_trailing_fragment_reported_at_eof(self, demo_cohana,
                                               monkeypatch, capsys):
        out = self._serve(monkeypatch, capsys, demo_cohana,
                          "SELECT country, COHORTSIZE FROM D\n")
        assert "error:" in out.err


class TestQueryCacheCLI:
    def test_explain_shows_disposition(self, demo_cohana, capsys):
        assert main(["query", str(demo_cohana), CLI_QUERY,
                     "--explain"]) == 0
        assert "Cache(disposition=miss" in capsys.readouterr().out

    def test_no_cache_explain_shows_bypass(self, demo_cohana, capsys):
        assert main(["query", str(demo_cohana), CLI_QUERY, "--explain",
                     "--no-cache"]) == 0
        assert "Cache(disposition=bypass" in capsys.readouterr().out

    def test_query_still_runs_with_no_cache(self, demo_cohana, capsys):
        assert main(["query", str(demo_cohana), CLI_QUERY,
                     "--no-cache"]) == 0
        assert "cohort_size" in capsys.readouterr().out
