"""Tests for the retention-analysis helpers."""

import pytest

from repro.analysis import cohort_comparison, retention_matrix
from repro.errors import QueryError
from repro.cohana import CohanaEngine
from repro.cohort import CohortResult
from repro.datagen import GameConfig, generate
from repro.workloads import q1

RESULT = CohortResult(
    columns=["country", "cohort_size", "age", "retained"],
    rows=[
        ("AU", 10, 1, 8), ("AU", 10, 2, 5),
        ("CN", 20, 1, 10), ("CN", 20, 3, 4),
    ],
)


class TestRetentionMatrix:
    def test_rates(self):
        matrix = retention_matrix(RESULT)
        assert matrix.rate("AU", 1) == pytest.approx(0.8)
        assert matrix.rate("AU", 2) == pytest.approx(0.5)
        assert matrix.rate("CN", 1) == pytest.approx(0.5)
        assert matrix.rate("AU", 3) is None
        assert matrix.rate("Narnia", 1) is None

    def test_overall_curve_weighted(self):
        curve = retention_matrix(RESULT).overall_curve()
        # age 1: (8 + 10) / (10 + 20)
        assert curve[1] == pytest.approx(18 / 30)
        # age 2: only AU observed -> 5/10
        assert curve[2] == pytest.approx(0.5)
        # age 3: only CN observed -> 4/20
        assert curve[3] == pytest.approx(0.2)

    def test_count_exceeding_size_rejected(self):
        bad = CohortResult(
            columns=["country", "cohort_size", "age", "retained"],
            rows=[("AU", 3, 1, 5)])
        with pytest.raises(QueryError, match="exceeds cohort size"):
            retention_matrix(bad)

    def test_to_text_triangle(self):
        text = retention_matrix(RESULT).to_text()
        assert "80%" in text
        assert "." in text  # unobserved buckets
        assert "AU (10)" in text

    def test_rates_never_exceed_one_on_real_workload(self):
        table = generate(GameConfig(n_users=40, seed=9))
        engine = CohanaEngine()
        engine.create_table("GameActions", table,
                            target_chunk_rows=512)
        matrix = retention_matrix(engine.query(q1()))
        for row in matrix.rates:
            for rate in row:
                assert rate is None or 0.0 < rate <= 1.0

    def test_age_one_retention_is_maximal_on_average(self):
        """Aging effect: overall retention at age 1 beats age 14."""
        table = generate(GameConfig(n_users=80, seed=21))
        engine = CohanaEngine()
        engine.create_table("GameActions", table,
                            target_chunk_rows=2048)
        curve = retention_matrix(engine.query(q1())).overall_curve()
        assert curve[1] > curve.get(14, 0.0)


class TestCohortComparison:
    def test_ranking(self):
        ranked = cohort_comparison(RESULT, at_age=1)
        assert ranked == [("CN", 20, 10), ("AU", 10, 8)]

    def test_missing_age_excluded(self):
        ranked = cohort_comparison(RESULT, at_age=2)
        assert ranked == [("AU", 10, 5)]

    def test_empty_for_unobserved_age(self):
        assert cohort_comparison(RESULT, at_age=99) == []
