"""Oracle tests against the paper's worked examples (Section 3.3).

The paper gives exact result sets for each operator over Table 1; these
tests pin the oracle to them, then check Equation (1) (commutativity of
birth and age selection) as a hypothesis property.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cohort import (
    AggregateSpec,
    CohortQuery,
    Compare,
    TrueCondition,
    age_select,
    attr,
    birth,
    birth_select,
    conjoin,
    eq,
    evaluate,
    lit,
)
from repro.errors import QueryError, SchemaError
from repro.table import ActivityTable

from helpers import make_game_schema


def row_ids(table, table1):
    """Map rows of ``table`` back to t1..t10 indices in Table 1."""
    originals = table1.to_rows()
    return sorted(originals.index(r) + 1 for r in table.to_rows())


class TestBirthSelect:
    def test_paper_example_australia_launch(self, table1):
        # σb_{country=Australia, launch}(D) = {t1..t5}
        out = birth_select(table1, eq("country", "Australia"), "launch")
        assert row_ids(out, table1) == [1, 2, 3, 4, 5]

    def test_unqualified_users_fully_dropped(self, table1):
        out = birth_select(table1, eq("role", "dwarf"), "launch")
        assert set(out.users.tolist()) == {"001"}

    def test_never_born_users_dropped(self, table1):
        # birth action shop: player 003 never shops
        out = birth_select(table1, TrueCondition(), "shop")
        assert set(out.users.tolist()) == {"001", "002"}

    def test_true_condition_keeps_all_born_users(self, table1):
        out = birth_select(table1, TrueCondition(), "launch")
        assert len(out) == 10


class TestAgeSelect:
    def test_paper_example_shop_not_china(self, table1):
        # σg_{action=shop ∧ country≠China, shop}(D) = {t2,t3,t4,t7,t8}
        cond = conjoin(eq("action", "shop"),
                       Compare(attr("country"), "!=", lit("China")))
        out = age_select(table1, cond, "shop")
        assert row_ids(out, table1) == [2, 3, 4, 7, 8]

    def test_paper_example_birth_role(self, table1):
        # σg_{role=Birth(role), shop}(D) = {t2,t3,t7,t8}
        cond = Compare(attr("role"), "=", birth("role"))
        out = age_select(table1, cond, "shop")
        assert row_ids(out, table1) == [2, 3, 7, 8]

    def test_birth_tuples_always_retained(self, table1):
        # A condition nothing satisfies still keeps each birth tuple.
        out = age_select(table1, eq("country", "Nowhere"), "launch")
        assert row_ids(out, table1) == [1, 6, 9]

    def test_age_condition(self, table1):
        from repro.cohort import age_ref
        cond = Compare(age_ref(), "<", lit(2))
        out = age_select(table1, cond, "launch")
        # birth tuples t1, t6, t9 plus age-1 tuples
        ids = row_ids(out, table1)
        assert 1 in ids and 6 in ids and 9 in ids
        assert 2 in ids  # t2 is 22h after birth -> age 1


class TestCohortAggregate:
    def test_example1_result(self, table1):
        """Example 1 / Q1: dwarf-at-birth launch cohorts by country,
        total gold spent on shopping."""
        query = CohortQuery(
            birth_action="launch",
            cohort_by=("country",),
            aggregates=(AggregateSpec("SUM", "gold", "spent"),),
            birth_condition=eq("role", "dwarf"),
            age_condition=eq("action", "shop"),
        )
        result = evaluate(query, table1)
        assert result.columns == ["country", "cohort_size", "age", "spent"]
        # Only player 001 (dwarf at launch); shop tuples at ages 1, 2, 3.
        assert result.rows == [
            ("Australia", 1, 1, 50),
            ("Australia", 1, 2, 100),
            ("Australia", 1, 3, 50),
        ]

    def test_cohort_sizes_counted_once_per_user(self, table1):
        query = CohortQuery(
            birth_action="launch",
            cohort_by=("country",),
            aggregates=(AggregateSpec("COUNT", None, "events"),),
        )
        result = evaluate(query, table1)
        sizes = {row[0]: row[1] for row in result.rows}
        assert sizes == {"Australia": 1, "United States": 1, "China": 1}

    def test_usercount_retention(self, table1):
        query = CohortQuery(
            birth_action="launch",
            cohort_by=("country",),
            aggregates=(AggregateSpec("USERCOUNT", None, "retained"),),
        )
        result = evaluate(query, table1)
        by_key = {(r[0], r[2]): r[3] for r in result.rows}
        # Player 003 (China) acts at age 1 only (t10, 24h after launch).
        assert by_key[("China", 1)] == 1
        assert ("China", 2) not in by_key

    def test_avg_aggregate(self, table1):
        query = CohortQuery(
            birth_action="shop",
            cohort_by=("country",),
            aggregates=(AggregateSpec("AVG", "gold", "avg_gold"),),
            age_condition=eq("action", "shop"),
        )
        result = evaluate(query, table1)
        by_key = {(r[0], r[2]): r[3] for r in result.rows}
        # Player 001: birth shop t2; age tuples t3 (6h -> age 1),
        # t4 (30h -> age 2). Player 002: birth t7; t8 (26h -> age 2).
        assert by_key[("Australia", 1)] == 100
        assert by_key[("Australia", 2)] == 50
        assert by_key[("United States", 2)] == 40

    def test_min_max(self, table1):
        query = CohortQuery(
            birth_action="launch",
            cohort_by=("country",),
            aggregates=(AggregateSpec("MIN", "gold", "lo"),
                        AggregateSpec("MAX", "gold", "hi")),
            age_condition=eq("action", "shop"),
        )
        result = evaluate(query, table1)
        by_key = {(r[0], r[2]): (r[3], r[4]) for r in result.rows}
        assert by_key[("Australia", 2)] == (100, 100)

    def test_time_cohorts_binned_weekly(self, table1):
        from repro.schema import parse_timestamp
        query = CohortQuery(
            birth_action="launch",
            cohort_by=("time",),
            aggregates=(AggregateSpec("COUNT", None, "n"),),
            cohort_time_bin="week",
            time_bin_origin=parse_timestamp("2013-05-19"),
        )
        result = evaluate(query, table1)
        labels = set(result.column_values("time"))
        assert labels == {"2013-05-19"}  # all 3 players born that week

    def test_pre_birth_tuples_not_aggregated(self, game_schema):
        rows = [("u", "2013-05-19", "fight", "d", "C", 10),
                ("u", "2013-05-20", "shop", "d", "C", 20),
                ("u", "2013-05-21", "fight", "d", "C", 30)]
        table = ActivityTable.from_rows(game_schema, rows)
        query = CohortQuery(
            birth_action="shop",
            cohort_by=("country",),
            aggregates=(AggregateSpec("SUM", "gold", "s"),),
        )
        result = evaluate(query, table)
        # Only the age-1 fight tuple (gold 30) is aggregated; the
        # pre-birth fight (gold 10) has negative age.
        assert result.rows == [("C", 1, 1, 30)]


class TestQueryValidation:
    def make(self, **kw):
        base = dict(birth_action="launch", cohort_by=("country",),
                    aggregates=(AggregateSpec("SUM", "gold", "s"),))
        base.update(kw)
        return CohortQuery(**base)

    def test_valid(self, game_schema):
        self.make().validate(game_schema)

    def test_empty_birth_action(self):
        with pytest.raises(QueryError):
            self.make(birth_action="")

    def test_no_aggregates(self):
        with pytest.raises(QueryError):
            self.make(aggregates=())

    def test_bad_age_unit(self):
        with pytest.raises(QueryError):
            self.make(age_unit="fortnight")

    def test_bad_time_bin(self):
        with pytest.raises(QueryError):
            self.make(cohort_time_bin="eon")

    def test_cohort_by_user_rejected(self, game_schema):
        with pytest.raises(QueryError):
            self.make(cohort_by=("player",)).validate(game_schema)

    def test_aggregate_on_dimension_rejected(self, game_schema):
        q = self.make(aggregates=(AggregateSpec("SUM", "country", "s"),))
        with pytest.raises(QueryError):
            q.validate(game_schema)

    def test_birth_condition_with_age_rejected(self, game_schema):
        from repro.cohort import age_ref
        q = self.make(birth_condition=Compare(age_ref(), "<", lit(3)))
        with pytest.raises(QueryError, match="AGE"):
            q.validate(game_schema)

    def test_birth_condition_with_birth_ref_rejected(self, game_schema):
        q = self.make(birth_condition=Compare(attr("role"), "=",
                                              birth("role")))
        with pytest.raises(QueryError, match="Birth"):
            q.validate(game_schema)

    def test_unknown_condition_attr_rejected(self, game_schema):
        q = self.make(birth_condition=eq("bogus", 1))
        with pytest.raises(SchemaError):
            q.validate(game_schema)

    def test_output_columns(self):
        q = self.make(cohort_by=("country", "role"))
        assert q.output_columns == ["country", "role", "cohort_size",
                                    "age", "s"]


# -- Equation (1): σb and σg commute --------------------------------------------

_users = st.integers(min_value=0, max_value=8).map(lambda i: f"u{i}")
_actions = st.sampled_from(["launch", "shop", "fight"])
_countries = st.sampled_from(["AU", "CN", "US"])
_roles = st.sampled_from(["dwarf", "wizard"])
_times = st.integers(min_value=0, max_value=30 * 86400)


@st.composite
def random_table(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    keys = set()
    for _ in range(n):
        keys.add((draw(_users), draw(_times), draw(_actions)))
    rows = [(u, t, a, draw(_roles), draw(_countries),
             draw(st.integers(0, 100))) for (u, t, a) in sorted(keys)]
    return ActivityTable.from_rows(make_game_schema(), rows)


@given(table=random_table(),
       birth_action=_actions,
       country=_countries)
@settings(max_examples=60, deadline=None)
def test_property_selections_commute(table, birth_action, country):
    """Equation (1): σb(σg(D)) == σg(σb(D)) for the same birth action."""
    birth_cond = eq("country", country)
    age_cond = eq("action", "shop")
    ab = age_select(birth_select(table, birth_cond, birth_action),
                    age_cond, birth_action)
    ba = birth_select(age_select(table, age_cond, birth_action),
                      birth_cond, birth_action)
    assert ab.to_rows() == ba.to_rows()


@given(table=random_table(), birth_action=_actions)
@settings(max_examples=40, deadline=None)
def test_property_age_select_keeps_birth_tuples(table, birth_action):
    """Definition 5: every born user's birth tuple survives σg."""
    from repro.cohort import birth_times, NEVER_BORN
    out = age_select(table, eq("country", "NOWHERE"), birth_action)
    births = birth_times(table, birth_action)
    born = {u for u, t in births.items() if t != NEVER_BORN}
    assert set(out.users.tolist()) == born


@given(table=random_table(), birth_action=_actions)
@settings(max_examples=40, deadline=None)
def test_property_cohort_sizes_partition_born_users(table, birth_action):
    """Cohort sizes sum to the number of born users (L partitions them)."""
    from repro.cohort import birth_times, NEVER_BORN
    query = CohortQuery(
        birth_action=birth_action,
        cohort_by=("country",),
        aggregates=(AggregateSpec("COUNT", None, "n"),),
    )
    result = evaluate(query, table)
    sizes = {}
    for row in result.rows:
        sizes[row[0]] = row[1]
    births = birth_times(table, birth_action)
    born = {u for u, t in births.items() if t != NEVER_BORN}
    # Sizes can only be compared when every cohort produced a bucket, so
    # check the weaker invariant: no cohort is larger than the born count.
    assert all(0 < s <= len(born) for s in sizes.values())
    assert sum(sizes.values()) <= len(born) or len(sizes) == 0
