"""Render → parse → bind round-trip tests for cohort queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.cohana import bind_cohort_query, parse_cohort_query, \
    render_condition, render_query
from repro.cohort import (
    AggregateSpec,
    And,
    Between,
    CohortQuery,
    Compare,
    InList,
    Not,
    Or,
    TrueCondition,
    age_ref,
    attr,
    birth,
    eq,
    lit,
)

from helpers import make_game_schema


class TestRenderCondition:
    def test_compare(self):
        assert render_condition(eq("country", "AU")) == 'country = "AU"'

    def test_birth_and_age(self):
        cond = Compare(attr("role"), "=", birth("role"))
        assert render_condition(cond) == "role = Birth(role)"
        cond = Compare(age_ref(), "<", lit(7))
        assert render_condition(cond) == "AGE < 7"

    def test_between_and_in(self):
        cond = Between(attr("gold"), lit(1), lit(5))
        assert render_condition(cond) == "gold BETWEEN 1 AND 5"
        cond = InList(attr("country"), ("AU", "CN"))
        assert render_condition(cond) == 'country IN ["AU", "CN"]'

    def test_nesting_parenthesized(self):
        cond = And((Or((eq("a", 1), eq("b", 2))), Not(eq("c", 3))))
        text = render_condition(cond)
        assert text == "(a = 1 OR b = 2) AND NOT c = 3"

    def test_quote_escaping(self):
        assert render_condition(eq("c", 'x"y')) == 'c = "x""y"'

    def test_true_condition_rejected(self):
        with pytest.raises(QueryError):
            render_condition(TrueCondition())


class TestRenderQuery:
    def test_round_trip_q1(self, game_schema):
        query = CohortQuery(
            birth_action="launch",
            cohort_by=("country",),
            aggregates=(AggregateSpec("SUM", "gold", "spent"),),
            birth_condition=eq("role", "dwarf"),
            age_condition=eq("action", "shop"),
            table="D",
        )
        text = render_query(query)
        back = bind_cohort_query(parse_cohort_query(text), game_schema)
        assert back == query

    def test_requires_table(self):
        query = CohortQuery(
            birth_action="launch", cohort_by=("country",),
            aggregates=(AggregateSpec("COUNT", None, "n"),))
        with pytest.raises(QueryError, match="table"):
            render_query(query)


# -- property round trip ----------------------------------------------------------

_conditions = st.sampled_from([
    TrueCondition(),
    eq("role", "dwarf"),
    And((eq("role", "dwarf"), eq("country", "CN"))),
    Or((eq("country", "AU"), eq("country", "US"))),
    Not(eq("role", "wizard")),
    Between(attr("time"), lit(0), lit(86400 * 7)),
    InList(attr("country"), ("AU", "CN")),
])
_age_conditions = st.sampled_from([
    TrueCondition(),
    eq("action", "shop"),
    Compare(age_ref(), "<=", lit(9)),
    Compare(attr("role"), "=", birth("role")),
    And((eq("action", "shop"),
         Compare(attr("country"), "=", birth("country")))),
])
_aggregates = st.sampled_from([
    (AggregateSpec("SUM", "gold", "m"),),
    (AggregateSpec("AVG", "gold", "m"),),
    (AggregateSpec("USERCOUNT", None, "m"),),
    (AggregateSpec("COUNT", None, "m"),
     AggregateSpec("MAX", "gold", "peak")),
])


@given(birth_condition=_conditions, age_condition=_age_conditions,
       aggregates=_aggregates,
       cohort_by=st.sampled_from([("country",), ("country", "role"),
                                  ("time",)]),
       birth_action=st.sampled_from(["launch", "shop"]),
       age_unit=st.sampled_from(["day", "week"]),
       time_bin=st.sampled_from(["day", "week"]))
@settings(max_examples=150, deadline=None)
def test_property_render_parse_bind_round_trip(
        birth_condition, age_condition, aggregates, cohort_by,
        birth_action, age_unit, time_bin):
    query = CohortQuery(
        birth_action=birth_action,
        cohort_by=cohort_by,
        aggregates=aggregates,
        birth_condition=birth_condition,
        age_condition=age_condition,
        age_unit=age_unit,
        cohort_time_bin=time_bin,
        table="D",
    )
    schema = make_game_schema()
    text = render_query(query)
    back = bind_cohort_query(parse_cohort_query(text), schema,
                             age_unit=age_unit)
    assert back == query
