"""Shared fixtures: the paper's Table 1 example (see helpers.py)."""

from __future__ import annotations

import pytest

from repro.schema import ActivitySchema
from repro.table import ActivityTable

from helpers import TABLE1_ROWS, make_game_schema, make_table1  # noqa: F401

__all__ = ["TABLE1_ROWS", "make_game_schema", "make_table1"]


@pytest.fixture
def game_schema() -> ActivitySchema:
    return make_game_schema()


@pytest.fixture
def table1() -> ActivityTable:
    return make_table1()
