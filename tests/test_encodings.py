"""Unit & property tests for the RLE / dictionary / delta column encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.storage import (
    GlobalDictionary,
    GlobalRange,
    encode_chunk_integers,
    encode_chunk_strings,
    encode_users,
)
from repro.storage.raw import RawFloatColumn


class TestRle:
    def test_triples(self):
        rle = encode_users([5, 5, 5, 2, 2, 9])
        assert rle.triples() == [(5, 0, 3), (2, 3, 2), (9, 5, 1)]
        assert rle.n_users == 3
        assert rle.n_rows == 6

    def test_triple_access(self):
        rle = encode_users([1, 1, 2])
        assert rle.triple(0) == (1, 0, 2)
        assert rle.triple(1) == (2, 2, 1)

    def test_expand_roundtrip(self):
        ids = [7, 7, 3, 3, 3, 1]
        rle = encode_users(ids)
        assert rle.expand().tolist() == ids

    def test_single_user(self):
        rle = encode_users([4] * 10)
        assert rle.triples() == [(4, 0, 10)]

    def test_empty(self):
        rle = encode_users([])
        assert rle.n_rows == 0
        assert rle.n_users == 0
        assert rle.expand().tolist() == []

    def test_unclustered_rejected(self):
        with pytest.raises(EncodingError, match="clustered"):
            encode_users([1, 2, 1])

    def test_nbytes_positive(self):
        assert encode_users([1, 1, 2]).nbytes > 0


class TestGlobalDictionary:
    def test_from_column_sorted_unique(self):
        gdict = GlobalDictionary.from_column(["b", "a", "b", "c"])
        assert gdict.values == ("a", "b", "c")
        assert len(gdict) == 3

    def test_ids_and_values(self):
        gdict = GlobalDictionary(("apple", "pear"))
        assert gdict.global_id("apple") == 0
        assert gdict.global_id("pear") == 1
        assert gdict.global_id("zebra") is None
        assert gdict.value(1) == "pear"

    def test_id_order_is_lexicographic(self):
        gdict = GlobalDictionary.from_column(["China", "Australia", "US"])
        ids = [gdict.global_id(v) for v in sorted(["China", "Australia",
                                                   "US"])]
        assert ids == sorted(ids)

    def test_encode_decode(self):
        gdict = GlobalDictionary.from_column(["x", "y"])
        codes = gdict.encode(["y", "x", "y"])
        assert codes.tolist() == [1, 0, 1]
        assert gdict.decode(codes).tolist() == ["y", "x", "y"]

    def test_encode_unknown_value(self):
        gdict = GlobalDictionary.from_column(["x"])
        with pytest.raises(EncodingError):
            gdict.encode(["nope"])

    def test_unsorted_construction_rejected(self):
        with pytest.raises(EncodingError):
            GlobalDictionary(("b", "a"))
        with pytest.raises(EncodingError):
            GlobalDictionary(("a", "a"))


class TestChunkStrings:
    def test_roundtrip_global_ids(self):
        gids = np.array([4, 2, 4, 9, 2])
        col = encode_chunk_strings(gids)
        assert col.decode_to_global_ids().tolist() == gids.tolist()
        assert col.cardinality == 3

    def test_contains_global_id(self):
        col = encode_chunk_strings(np.array([4, 2, 9]))
        assert col.contains_global_id(4)
        assert col.contains_global_id(9)
        assert not col.contains_global_id(5)
        assert not col.contains_global_id(100)

    def test_random_access(self):
        gids = np.array([4, 2, 4, 9])
        col = encode_chunk_strings(gids)
        for i, g in enumerate(gids):
            assert col.global_id_at(i) == g

    def test_chunk_ids_narrower_than_global(self):
        # 2 distinct values from a large global id space -> 1-bit ids.
        col = encode_chunk_strings(np.array([1000, 2000, 1000]))
        assert col.chunk_ids.bit_width == 1

    def test_empty(self):
        col = encode_chunk_strings(np.array([], dtype=np.int64))
        assert len(col) == 0
        assert not col.contains_global_id(0)


class TestChunkIntegers:
    def test_roundtrip(self):
        vals = np.array([100, 105, 103, 100])
        col = encode_chunk_integers(vals)
        assert col.decode().tolist() == vals.tolist()
        assert col.min_value == 100
        assert col.max_value == 105

    def test_random_access(self):
        vals = np.array([100, 105, 103])
        col = encode_chunk_integers(vals)
        assert [col.value_at(i) for i in range(3)] == vals.tolist()

    def test_decode_range(self):
        col = encode_chunk_integers(np.arange(50, 150))
        assert col.decode_range(10, 13).tolist() == [60, 61, 62]

    def test_negative_values_ok(self):
        vals = np.array([-10, -5, -7])
        col = encode_chunk_integers(vals)
        assert col.decode().tolist() == vals.tolist()

    def test_constant_column_uses_one_bit(self):
        col = encode_chunk_integers(np.full(100, 42))
        assert col.deltas.bit_width == 1

    def test_overlaps(self):
        col = encode_chunk_integers(np.array([100, 200]))
        assert col.overlaps(150, 250)
        assert col.overlaps(None, 100)
        assert col.overlaps(200, None)
        assert col.overlaps(None, None)
        assert not col.overlaps(201, None)
        assert not col.overlaps(None, 99)

    def test_empty_never_overlaps(self):
        col = encode_chunk_integers(np.array([], dtype=np.int64))
        assert not col.overlaps(None, None)


class TestGlobalRange:
    def test_from_column(self):
        rng = GlobalRange.from_column(np.array([5, -2, 7]))
        assert (rng.min_value, rng.max_value) == (-2, 7)

    def test_empty(self):
        rng = GlobalRange.from_column(np.array([], dtype=np.int64))
        assert (rng.min_value, rng.max_value) == (0, 0)

    def test_merge(self):
        merged = GlobalRange(0, 5).merge(GlobalRange(-3, 2))
        assert (merged.min_value, merged.max_value) == (-3, 5)


class TestRawFloat:
    def test_roundtrip(self):
        col = RawFloatColumn.encode([1.5, -2.25])
        assert col.decode().tolist() == [1.5, -2.25]
        assert col.value_at(1) == -2.25

    def test_overlaps(self):
        col = RawFloatColumn.encode([1.0, 2.0])
        assert col.overlaps(1.5, None)
        assert not col.overlaps(2.5, None)
        assert not RawFloatColumn.encode([]).overlaps(None, None)


# -- property tests -----------------------------------------------------------

@given(st.lists(st.integers(min_value=-2**40, max_value=2**40), max_size=200))
@settings(max_examples=80, deadline=None)
def test_property_delta_roundtrip(values):
    col = encode_chunk_integers(np.asarray(values, dtype=np.int64))
    assert col.decode().tolist() == values


@given(st.lists(st.text(alphabet="abcdef", max_size=6), min_size=1,
                max_size=100))
@settings(max_examples=80, deadline=None)
def test_property_dictionary_roundtrip(values):
    gdict = GlobalDictionary.from_column(values)
    codes = gdict.encode(values)
    assert gdict.decode(codes).tolist() == values
    col = encode_chunk_strings(codes)
    assert gdict.decode(col.decode_to_global_ids()).tolist() == values


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                          st.integers(min_value=1, max_value=5)),
                max_size=40))
@settings(max_examples=80, deadline=None)
def test_property_rle_roundtrip(runs):
    # Build a clustered id sequence with unique run ids.
    expanded = []
    used = set()
    next_id = 0
    for base, length in runs:
        run_id = base + next_id
        while run_id in used:
            run_id += 1
        used.add(run_id)
        next_id = run_id + 1
        expanded.extend([run_id] * length)
    rle = encode_users(expanded)
    assert rle.expand().tolist() == expanded
    assert rle.n_users == len(runs)
