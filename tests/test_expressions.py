"""Unit tests for the relational expression layer (row + batch eval)."""

import numpy as np
import pytest

from repro.errors import BindError, ExecutionError
from repro.relational import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Const,
    FuncCall,
    InListExpr,
    RelSchema,
    Star,
    UnaryNot,
    contains_aggregate,
    eval_batch,
    eval_row,
)

SCHEMA = RelSchema(["t.gold", "t.country", "t.time"])
ROW = (50, "AU", 1000)
BATCH = [np.array([50, 10]), np.array(["AU", "CN"], dtype=object),
         np.array([1000, 2000])]


def run_row(expr):
    return eval_row(expr, ROW, SCHEMA)


def run_batch(expr):
    return eval_batch(expr, BATCH, SCHEMA, 2)


class TestRelSchema:
    def test_exact_and_suffix_resolution(self):
        assert SCHEMA.resolve("t.gold") == 0
        assert SCHEMA.resolve("gold") == 0

    def test_unknown(self):
        with pytest.raises(BindError, match="unknown column"):
            SCHEMA.resolve("nope")

    def test_ambiguous(self):
        schema = RelSchema(["a.gold", "b.gold"])
        with pytest.raises(BindError, match="ambiguous"):
            schema.resolve("gold")
        # exact qualification resolves fine
        assert schema.resolve("a.gold") == 0

    def test_concat(self):
        combined = SCHEMA.concat(RelSchema(["x"]))
        assert combined.resolve("x") == 3
        assert len(combined) == 4


class TestRowEval:
    def test_comparisons_and_arithmetic(self):
        assert run_row(BinaryOp("=", ColumnRef("gold"), Const(50)))
        assert run_row(BinaryOp("+", ColumnRef("gold"), Const(1))) == 51
        assert run_row(BinaryOp("/", ColumnRef("gold"), Const(4))) == 12.5
        assert run_row(BinaryOp("*", Const(2), Const(3))) == 6
        assert run_row(BinaryOp("-", ColumnRef("gold"), Const(60))) == -10

    def test_boolean_logic(self):
        true = BinaryOp("=", Const(1), Const(1))
        false = BinaryOp("=", Const(1), Const(2))
        assert run_row(BinaryOp("AND", true, true))
        assert not run_row(BinaryOp("AND", true, false))
        assert run_row(BinaryOp("OR", false, true))
        assert run_row(UnaryNot(false))

    def test_between_in(self):
        assert run_row(BetweenExpr(ColumnRef("gold"), Const(50),
                                   Const(60)))
        assert not run_row(BetweenExpr(ColumnRef("gold"), Const(51),
                                       Const(60)))
        assert run_row(InListExpr(ColumnRef("country"), ("AU", "CN")))

    def test_scalar_functions(self):
        assert run_row(FuncCall("TimeDiff", (ColumnRef("time"),
                                             Const(400)))) == 600
        week = FuncCall("Week", (ColumnRef("time"),))
        assert run_row(week) == 0
        ceil = FuncCall("CeilDiv", (Const(5), Const(2)))
        assert run_row(ceil) == 3
        assert run_row(FuncCall("CeilDiv", (Const(4), Const(2)))) == 2
        tb = FuncCall("TimeBin", (ColumnRef("time"), Const(600),
                                  Const(0)))
        assert run_row(tb) == 600

    def test_function_arity_errors(self):
        with pytest.raises(ExecutionError):
            run_row(FuncCall("TimeDiff", (Const(1),)))
        with pytest.raises(ExecutionError):
            run_row(FuncCall("CeilDiv", (Const(1),)))
        with pytest.raises(ExecutionError):
            run_row(FuncCall("TimeBin", (Const(1),)))
        with pytest.raises(ExecutionError):
            run_row(FuncCall("Week", ()))

    def test_unknown_function(self):
        with pytest.raises(ExecutionError, match="unknown function"):
            run_row(FuncCall("Sqrt", (Const(4),)))

    def test_aggregate_outside_aggregation(self):
        with pytest.raises(ExecutionError, match="outside"):
            run_row(FuncCall("Sum", (ColumnRef("gold"),)))

    def test_unknown_operator(self):
        with pytest.raises(ExecutionError):
            run_row(BinaryOp("%", Const(5), Const(2)))


class TestBatchEval:
    def test_column_and_const(self):
        assert run_batch(ColumnRef("gold")).tolist() == [50, 10]
        assert run_batch(Const(7)).tolist() == [7, 7]
        assert run_batch(Const("x")).tolist() == ["x", "x"]

    def test_comparison_masks(self):
        expr = BinaryOp(">", ColumnRef("gold"), Const(20))
        assert run_batch(expr).tolist() == [True, False]
        expr = BinaryOp("=", ColumnRef("country"), Const("CN"))
        assert run_batch(expr).tolist() == [False, True]

    def test_logic_masks(self):
        a = BinaryOp(">", ColumnRef("gold"), Const(20))
        b = BinaryOp("=", ColumnRef("country"), Const("AU"))
        assert run_batch(BinaryOp("AND", a, b)).tolist() == [True, False]
        assert run_batch(BinaryOp("OR", a, b)).tolist() == [True, False]
        assert run_batch(UnaryNot(a)).tolist() == [False, True]

    def test_between_in(self):
        expr = BetweenExpr(ColumnRef("gold"), Const(10), Const(49))
        assert run_batch(expr).tolist() == [False, True]
        expr = InListExpr(ColumnRef("country"), ("AU", "XX"))
        assert run_batch(expr).tolist() == [True, False]

    def test_arithmetic_vectorized(self):
        expr = BinaryOp("*", ColumnRef("gold"), Const(2))
        assert run_batch(expr).tolist() == [100, 20]

    def test_scalar_functions_vectorized(self):
        expr = FuncCall("TimeDiff", (ColumnRef("time"), Const(500)))
        assert run_batch(expr).tolist() == [500, 1500]
        expr = FuncCall("CeilDiv", (ColumnRef("time"), Const(600)))
        assert run_batch(expr).tolist() == [2, 4]
        expr = FuncCall("TimeBin", (ColumnRef("time"), Const(600),
                                    Const(0)))
        assert run_batch(expr).tolist() == [600, 1800]
        expr = FuncCall("Week", (ColumnRef("time"), Const(0)))
        assert run_batch(expr).tolist() == [0, 0]

    def test_row_and_batch_agree(self):
        exprs = [
            BinaryOp(">", ColumnRef("gold"), Const(20)),
            BetweenExpr(ColumnRef("time"), Const(900), Const(1500)),
            FuncCall("CeilDiv", (ColumnRef("gold"), Const(7))),
            BinaryOp("+", BinaryOp("*", ColumnRef("gold"), Const(3)),
                     Const(1)),
        ]
        rows = [(50, "AU", 1000), (10, "CN", 2000)]
        for expr in exprs:
            batch_out = run_batch(expr)
            for i, row in enumerate(rows):
                row_out = eval_row(expr, row, SCHEMA)
                assert row_out == pytest.approx(batch_out[i])


class TestHelpers:
    def test_contains_aggregate(self):
        agg = FuncCall("Sum", (ColumnRef("gold"),))
        assert contains_aggregate(agg)
        assert contains_aggregate(BinaryOp("/", agg, Const(2)))
        assert contains_aggregate(UnaryNot(agg))
        assert contains_aggregate(
            BetweenExpr(agg, Const(0), Const(1)))
        assert contains_aggregate(InListExpr(agg, (1,)))
        assert contains_aggregate(
            FuncCall("TimeDiff", (agg, Const(0))))
        assert not contains_aggregate(ColumnRef("gold"))
        assert not contains_aggregate(Star())

    def test_references(self):
        expr = BinaryOp("+", ColumnRef("a"),
                        FuncCall("TimeDiff", (ColumnRef("b"),
                                              Const(1))))
        assert expr.references() == {"a", "b"}
        assert Star().references() == set()

    def test_str_rendering(self):
        expr = BinaryOp("=", ColumnRef("c"), Const("x"))
        assert str(expr) == "(c = 'x')"
        assert str(FuncCall("Count", (Star(),))) == "COUNT(*)"
        assert "DISTINCT" in str(FuncCall("Count", (ColumnRef("p"),),
                                          distinct=True))
        assert "BETWEEN" in str(BetweenExpr(ColumnRef("a"), Const(0),
                                            Const(1)))
        assert "IN" in str(InListExpr(ColumnRef("a"), (1, 2)))
        assert "NOT" in str(UnaryNot(ColumnRef("a")))
