"""Tests for non-materialized views and negative-number literals."""

import pytest

from repro.errors import CatalogError
from repro.cohana import parse_cohort_query
from repro.relational import Database
from repro.sqlparser import parse_sql

from helpers import make_table1


@pytest.fixture(params=["rows", "columnar"])
def db(request):
    database = Database(executor=request.param)
    database.register_activity_table("D", make_table1())
    return database


class TestViews:
    def test_view_queryable(self, db):
        db.create_view("shops", "SELECT * FROM D WHERE action = 'shop'")
        out = db.execute("SELECT Count(*) AS n FROM shops")
        assert out.rows == [(5,)]

    def test_view_composes_with_where(self, db):
        db.create_view("shops", "SELECT player, gold FROM D "
                                "WHERE action = 'shop'")
        out = db.execute("SELECT player FROM shops WHERE gold >= 50")
        assert len(out) == 3

    def test_view_over_view(self, db):
        db.create_view("shops", "SELECT * FROM D WHERE action = 'shop'")
        db.create_view("big", "SELECT * FROM shops WHERE gold >= 50")
        out = db.execute("SELECT Count(*) AS n FROM big")
        assert out.rows == [(3,)]

    def test_view_join_with_base_table(self, db):
        db.create_view("launches",
                       "SELECT player AS p, time AS bt FROM D "
                       "WHERE action = 'launch'")
        out = db.execute(
            "SELECT D.player FROM D, launches "
            "WHERE D.player = launches.p AND D.time = launches.bt")
        assert len(out) == 3

    def test_view_name_conflicts(self, db):
        with pytest.raises(CatalogError):
            db.create_view("D", "SELECT * FROM D")
        db.create_view("v", "SELECT * FROM D")
        with pytest.raises(CatalogError):
            db.create_view("v", "SELECT * FROM D")

    def test_cte_shadows_view(self, db):
        db.create_view("v", "SELECT player FROM D")
        out = db.execute("WITH v AS (SELECT gold FROM D) "
                         "SELECT Count(*) AS n FROM v")
        assert out.rows == [(10,)]

    def test_view_not_materialized(self, db):
        """A view reflects later-registered data paths (it re-plans),
        unlike create_table_as which freezes rows."""
        db.create_table_as("frozen", "SELECT * FROM D "
                                     "WHERE action = 'shop'")
        assert len(db.table("frozen")) == 5


class TestNegativeLiterals:
    def test_sql_unary_minus(self, db):
        out = db.execute("SELECT player FROM D WHERE gold > -1")
        assert len(out) == 10

    def test_sql_negative_arithmetic(self, db):
        out = db.execute("SELECT gold - 60 AS v FROM D "
                         "WHERE action = 'shop' AND gold = 50 LIMIT 1")
        assert out.rows == [(-10,)]

    def test_sql_negative_in_expression_context(self):
        query = parse_sql("SELECT a FROM t WHERE a = -(5)")
        assert query is not None

    def test_cohort_negative_literal(self):
        parsed = parse_cohort_query(
            'SELECT country, Sum(gold) FROM D '
            'BIRTH FROM action = "launch" AND gold > -5 '
            'COHORT BY country')
        compare = parsed.birth_clause.parts[1]
        assert compare.right.raw == -5

    def test_cohort_negative_float(self):
        parsed = parse_cohort_query(
            'SELECT country, Sum(gold) FROM D '
            'BIRTH FROM action = "launch" AND gold > -5.5 '
            'COHORT BY country')
        assert parsed.birth_clause.parts[1].right.raw == -5.5

    def test_cohort_minus_without_number_rejected(self):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            parse_cohort_query(
                'SELECT country, Sum(gold) FROM D '
                'BIRTH FROM action = "launch" AND gold > - x '
                'COHORT BY country')
