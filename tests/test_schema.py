"""Unit tests for repro.schema: types, column specs and activity schemas."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.schema import (
    ActivitySchema,
    ColumnRole,
    ColumnSpec,
    LogicalType,
    action_column,
    coerce_value,
    dimension_column,
    format_timestamp,
    measure_column,
    parse_timestamp,
    time_column,
    user_column,
)


class TestParseTimestamp:
    def test_paper_format(self):
        # 2013/05/19:1000 == 2013-05-19 10:00 UTC
        ts = parse_timestamp("2013/05/19:1000")
        assert format_timestamp(ts) == "2013-05-19 10:00:00"

    def test_iso_date(self):
        ts = parse_timestamp("2013-05-21")
        assert format_timestamp(ts) == "2013-05-21"

    def test_iso_datetime_space(self):
        ts = parse_timestamp("2013-05-21 14:30")
        assert format_timestamp(ts) == "2013-05-21 14:30:00"

    def test_iso_datetime_t_and_seconds(self):
        ts = parse_timestamp("2013-05-21T14:30:05")
        assert format_timestamp(ts) == "2013-05-21 14:30:05"

    def test_ordering_of_paper_timestamps(self):
        earlier = parse_timestamp("2013/05/19:1000")
        later = parse_timestamp("2013/05/20:0800")
        assert earlier < later

    def test_bad_literal_raises(self):
        with pytest.raises(SchemaError):
            parse_timestamp("not a time")

    def test_bad_paper_format_raises(self):
        with pytest.raises(SchemaError):
            parse_timestamp("2013/xx/19:1000")

    def test_day_roundtrip(self):
        assert parse_timestamp("2013-05-20") - parse_timestamp(
            "2013-05-19") == 86400


class TestLogicalType:
    def test_integer_like(self):
        assert LogicalType.INT.is_integer_like
        assert LogicalType.TIMESTAMP.is_integer_like
        assert not LogicalType.STRING.is_integer_like
        assert not LogicalType.FLOAT.is_integer_like

    def test_numpy_dtypes(self):
        assert LogicalType.STRING.numpy_dtype() == np.dtype(object)
        assert LogicalType.INT.numpy_dtype() == np.dtype(np.int64)
        assert LogicalType.TIMESTAMP.numpy_dtype() == np.dtype(np.int64)
        assert LogicalType.FLOAT.numpy_dtype() == np.dtype(np.float64)

    def test_coerce_string(self):
        assert coerce_value(5, LogicalType.STRING) == "5"

    def test_coerce_timestamp_from_string(self):
        assert coerce_value("2013-05-19", LogicalType.TIMESTAMP) == \
            parse_timestamp("2013-05-19")

    def test_coerce_timestamp_from_int(self):
        assert coerce_value(12345, LogicalType.TIMESTAMP) == 12345

    def test_coerce_numerics(self):
        assert coerce_value("7", LogicalType.INT) == 7
        assert coerce_value("2.5", LogicalType.FLOAT) == 2.5


class TestColumnSpec:
    def test_role_type_enforcement(self):
        with pytest.raises(SchemaError):
            ColumnSpec("u", LogicalType.INT, ColumnRole.USER)
        with pytest.raises(SchemaError):
            ColumnSpec("t", LogicalType.STRING, ColumnRole.TIME)
        with pytest.raises(SchemaError):
            ColumnSpec("a", LogicalType.INT, ColumnRole.ACTION)

    def test_measure_must_be_numeric(self):
        with pytest.raises(SchemaError):
            measure_column("gold", LogicalType.STRING)

    def test_bad_name(self):
        with pytest.raises(SchemaError):
            ColumnSpec("", LogicalType.INT, ColumnRole.MEASURE)
        with pytest.raises(SchemaError):
            ColumnSpec("a b", LogicalType.INT, ColumnRole.MEASURE)

    def test_helpers(self):
        assert user_column().role is ColumnRole.USER
        assert time_column().role is ColumnRole.TIME
        assert action_column().role is ColumnRole.ACTION
        assert dimension_column("country").ltype is LogicalType.STRING
        assert measure_column("gold").ltype is LogicalType.INT


class TestActivitySchema:
    def test_build_and_accessors(self, game_schema):
        assert game_schema.user.name == "player"
        assert game_schema.time.name == "time"
        assert game_schema.action.name == "action"
        assert [d.name for d in game_schema.dimensions] == ["role", "country"]
        assert [m.name for m in game_schema.measures] == ["gold"]
        assert game_schema.names() == [
            "player", "time", "action", "role", "country", "gold"]
        assert len(game_schema) == 6
        assert "country" in game_schema
        assert "nope" not in game_schema

    def test_index_of(self, game_schema):
        assert game_schema.index_of("action") == 2
        with pytest.raises(SchemaError):
            game_schema.index_of("nope")

    def test_unknown_column(self, game_schema):
        with pytest.raises(SchemaError):
            game_schema.column("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            ActivitySchema.build("u", "t", "a", dimensions=["u"])

    def test_missing_role_rejected(self):
        cols = (user_column("u"), time_column("t"))
        with pytest.raises(SchemaError, match="action"):
            ActivitySchema(cols)

    def test_two_user_columns_rejected(self):
        cols = (user_column("u"), user_column("v"), time_column("t"),
                action_column("a"))
        with pytest.raises(SchemaError):
            ActivitySchema(cols)

    def test_list_dimensions_default_to_string(self):
        schema = ActivitySchema.build("u", "t", "a",
                                      dimensions=["country"],
                                      measures=["gold"])
        assert schema.column("country").ltype is LogicalType.STRING
        assert schema.column("gold").ltype is LogicalType.INT

    def test_cohort_attribute_validation(self, game_schema):
        game_schema.validate_cohort_attributes(["country"])
        game_schema.validate_cohort_attributes(["time", "role"])
        with pytest.raises(SchemaError):
            game_schema.validate_cohort_attributes(["player"])
        with pytest.raises(SchemaError):
            game_schema.validate_cohort_attributes(["action"])
        with pytest.raises(SchemaError):
            game_schema.validate_cohort_attributes([])
