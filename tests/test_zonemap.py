"""Zone maps and compressed-domain scans: persistence round-trips,
version-1 compatibility, pruning exactness, and decoded/compressed
parity across the workload queries."""

import numpy as np
import pytest

from repro.errors import ExecutionError, StorageError
from repro.cohana import CohanaEngine, ExecutionConfig
from repro.cohana.compressed import leaf_value_range, single_attr_name
from repro.datagen import GameConfig, generate
from repro.storage import (
    ZoneMap,
    build_zone_map,
    compress,
    deserialize,
    encode_chunk_integers,
    encode_chunk_strings,
    serialize,
)
from repro.storage.format import SUPPORTED_VERSIONS, VERSION
from repro.storage.raw import RawFloatColumn
from repro.workloads import MAIN_QUERIES, queries as W


TABLE = "GameActions"

#: Birth selections that exercise every coded-domain rewrite family:
#: time ranges (delta), equality + IN (dict membership), string ranges
#: (dict gid ranges) and plain Q1-Q4.
PARITY_QUERIES = {
    **{name: fn(TABLE) for name, fn in MAIN_QUERIES.items()},
    "Q5_narrow": W.q5("2013-05-19", "2013-05-22", TABLE),
    "Q7": W.q7(4, TABLE),
    "rare_country": (
        f'SELECT role, COHORTSIZE, AGE, UserCount() FROM {TABLE} '
        f'BIRTH FROM action = "launch" AND country = "Norway" '
        f'COHORT BY role'),
    "country_range": (
        f'SELECT country, COHORTSIZE, AGE, Sum(gold) FROM {TABLE} '
        f'BIRTH FROM action = "launch" AND country >= "United" '
        f'COHORT BY country'),
    "country_in": (
        f'SELECT country, COHORTSIZE, AGE, Avg(gold) FROM {TABLE} '
        f'BIRTH FROM action = "shop" AND '
        f'country IN ["China", "Norway"] COHORT BY country'),
}


@pytest.fixture(scope="module")
def game_engine():
    eng = CohanaEngine()
    eng.create_table(TABLE, generate(GameConfig(n_users=57, seed=7)),
                     target_chunk_rows=256)
    return eng


class TestZoneMapBuild:
    def test_dict_column_gid_range(self):
        col = encode_chunk_strings(np.array([7, 3, 7, 5], dtype=np.int64))
        zm = build_zone_map(col)
        assert (zm.min_value, zm.max_value) == (3, 7)
        assert zm.distinct_count == 3
        assert zm.null_count == 0

    def test_delta_column_range(self):
        col = encode_chunk_integers(np.array([10, 25, 10], dtype=np.int64))
        zm = build_zone_map(col)
        assert (zm.min_value, zm.max_value) == (10, 25)
        assert zm.distinct_count == 2

    def test_raw_column_is_float(self):
        zm = build_zone_map(RawFloatColumn.encode([1.5, -2.5]))
        assert zm.is_float
        assert (zm.min_value, zm.max_value) == (-2.5, 1.5)

    def test_empty_segment(self):
        zm = build_zone_map(encode_chunk_integers(np.array([], np.int64)))
        assert zm.is_empty
        assert not zm.overlaps(None, None)
        assert not zm.within(None, None)

    def test_overlaps_and_within(self):
        zm = ZoneMap(10, 20, 5)
        assert zm.overlaps(15, None) and zm.overlaps(None, 10)
        assert not zm.overlaps(21, None) and not zm.overlaps(None, 9)
        assert zm.within(10, 20) and zm.within(None, None)
        assert not zm.within(11, 20) and not zm.within(10, 19)

    def test_invalid_counts_rejected(self):
        with pytest.raises(StorageError):
            ZoneMap(0, 1, -1)
        with pytest.raises(StorageError):
            ZoneMap(5, 1, 3)


class TestPersistence:
    def test_writer_populates_zone_maps(self, table1):
        compressed = compress(table1, target_chunk_rows=4)
        assert compressed.has_zone_maps
        for chunk in compressed.chunks:
            assert set(chunk.zone_maps) == set(chunk.columns)

    def test_roundtrip_preserves_zone_maps(self, table1):
        compressed = compress(table1, target_chunk_rows=4)
        restored = deserialize(serialize(compressed))
        assert restored.has_zone_maps
        for orig, back in zip(compressed.chunks, restored.chunks):
            assert back.zone_maps == orig.zone_maps
        assert restored.decompress() == table1

    def test_zone_maps_match_recomputation(self, table1):
        restored = deserialize(serialize(compress(table1,
                                                  target_chunk_rows=4)))
        for chunk in restored.chunks:
            for name, col in chunk.columns.items():
                assert chunk.zone_map(name) == build_zone_map(col)

    def test_v1_file_still_opens_without_zone_maps(self, table1):
        compressed = compress(table1, target_chunk_rows=4)
        legacy = deserialize(serialize(compressed, version=1))
        assert not legacy.has_zone_maps
        assert all(not c.has_zone_maps for c in legacy.chunks)
        assert legacy.decompress() == table1

    def test_unsupported_write_version(self, table1):
        with pytest.raises(StorageError, match="version"):
            serialize(compress(table1), version=99)
        assert VERSION in SUPPORTED_VERSIONS

    def test_v1_falls_back_to_unpruned_scans(self, table1):
        # A string range bound can only prune via persisted zone maps:
        # the v2 table prunes the chunk whose country ids are all below
        # the bound, the v1 load scans it — results identical.
        text = ('SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D '
                'BIRTH FROM action = "launch" AND country >= "China" '
                'AND country <= "China" COHORT BY country')
        compressed = compress(table1, target_chunk_rows=4)
        v2, v1 = CohanaEngine(), CohanaEngine()
        v2.register("D", deserialize(serialize(compressed)))
        v1.register("D", deserialize(serialize(compressed, version=1)))
        res2, stats2 = v2.query_with_stats(text)
        res1, stats1 = v1.query_with_stats(text)
        assert res2.rows == res1.rows
        assert stats2.chunks_pruned_zone > 0
        assert stats1.chunks_pruned_zone == 0
        assert stats1.chunks_scanned > stats2.chunks_scanned


class TestPruning:
    def test_membership_pruning_on_equality(self, table1):
        eng = CohanaEngine()
        eng.create_table("D", table1, target_chunk_rows=4)
        text = ('SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D '
                'BIRTH FROM action = "launch" AND role = "dwarf" '
                'COHORT BY country')
        _, stats = eng.query_with_stats(text)
        assert stats.chunks_pruned_zone > 0
        # The legacy mode scans those chunks and reaches the same rows.
        res_auto = eng.query(text)
        res_dec = eng.query(text, scan_mode="decoded")
        assert res_auto.rows == res_dec.rows

    def test_unsatisfiable_birth_condition_prunes_everything(self, table1):
        eng = CohanaEngine()
        eng.create_table("D", table1, target_chunk_rows=4)
        text = ('SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D '
                'BIRTH FROM action = "launch" AND role = "paladin" '
                'COHORT BY country')
        result, stats = eng.query_with_stats(text)
        assert result.rows == []
        assert stats.chunks_scanned == 0
        assert stats.chunks_pruned == stats.chunks_total
        assert eng.query(text, scan_mode="decoded").rows == []

    def test_prune_counters_add_up(self, game_engine):
        for text in PARITY_QUERIES.values():
            _, stats = game_engine.query_with_stats(text)
            assert stats.chunks_pruned + stats.chunks_scanned \
                == stats.chunks_total
            assert stats.chunks_pruned_zone <= stats.chunks_pruned

    def test_explain_shows_scan_mode_and_bounds(self, game_engine):
        text = game_engine.explain(PARITY_QUERIES["rare_country"])
        assert "scan_mode=auto" in text
        assert "bounds=" in text


class TestScanModeParity:
    """scan_mode must never change results — only the work done."""

    @pytest.mark.parametrize("qname", sorted(PARITY_QUERIES))
    def test_compressed_equals_decoded(self, game_engine, qname):
        text = PARITY_QUERIES[qname]
        decoded = game_engine.query(text, scan_mode="decoded")
        compressed = game_engine.query(text, scan_mode="compressed")
        auto = game_engine.query(text)
        assert compressed.rows == decoded.rows
        assert auto.rows == decoded.rows
        assert compressed.columns == decoded.columns

    @pytest.mark.parametrize("qname", ("Q4", "rare_country"))
    def test_parity_across_kernels_and_jobs(self, game_engine, qname):
        text = PARITY_QUERIES[qname]
        base = game_engine.query(text, scan_mode="decoded")
        for executor in ("vectorized", "iterator"):
            for jobs in (1, 4):
                got = game_engine.query(text, executor=executor,
                                        jobs=jobs,
                                        scan_mode="compressed")
                assert got.rows == base.rows

    def test_v1_table_auto_mode_matches(self, game_engine):
        # auto over a zone-map-less (v1) table degrades to decoded.
        legacy = deserialize(serialize(game_engine.table(TABLE),
                                       version=1))
        eng = CohanaEngine()
        eng.register(TABLE, legacy)
        for qname in ("Q2", "rare_country"):
            text = PARITY_QUERIES[qname]
            assert eng.query(text).rows == \
                game_engine.query(text, scan_mode="decoded").rows


class TestConfigAndCli:
    def test_bad_scan_mode_rejected(self):
        with pytest.raises(ExecutionError, match="scan_mode"):
            ExecutionConfig(scan_mode="turbo")

    def test_config_and_loose_options_conflict(self, game_engine):
        with pytest.raises(ExecutionError, match="not both"):
            game_engine.query(PARITY_QUERIES["Q1"],
                              config=ExecutionConfig(),
                              scan_mode="compressed")

    def test_cli_scan_mode(self, tmp_path, capsys):
        from repro.cli import main
        csv = tmp_path / "d.csv"
        store = tmp_path / "d.cohana"
        assert main(["generate", str(csv), "--users", "8"]) == 0
        assert main(["compress", str(csv), str(store),
                     "--chunk-rows", "64"]) == 0
        text = ('SELECT country, COHORTSIZE, AGE, UserCount() FROM G '
                'BIRTH FROM action = "launch" COHORT BY country')
        capsys.readouterr()  # drop generate/compress chatter
        outputs = []
        for mode in ("decoded", "compressed"):
            assert main(["query", str(store), text,
                         "--scan-mode", mode]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestCompressedHelpers:
    def test_single_attr_name_shapes(self):
        from repro.cohort.conditions import (AttrRef, Between, Compare,
                                             InList, Literal)
        attr = AttrRef("gold")
        assert single_attr_name(Compare(attr, "<", Literal(5))) == "gold"
        assert single_attr_name(Compare(Literal(5), "<", attr)) == "gold"
        assert single_attr_name(Between(attr, Literal(1),
                                        Literal(2))) == "gold"
        assert single_attr_name(InList(attr, (1, 2))) == "gold"
        assert single_attr_name(Compare(attr, "=", attr)) is None

    def test_leaf_value_range_integral(self):
        from repro.cohort.conditions import (AttrRef, Between, Compare,
                                             InList, Literal)
        attr = AttrRef("gold")
        rng = lambda c: leaf_value_range(c, integral=True)  # noqa: E731
        assert rng(Compare(attr, "=", Literal(5))) == (5, 5, True)
        assert rng(Compare(attr, "<", Literal(5))) == (None, 4, True)
        assert rng(Compare(Literal(5), "<", attr)) == (6, None, True)
        assert rng(Between(attr, Literal(1), Literal(9))) == (1, 9, True)
        assert rng(InList(attr, (3, 7))) == (3, 7, False)
        assert rng(Compare(attr, "!=", Literal(5))) is None

    def test_leaf_value_range_float_column(self):
        # Over a float column the integer ±1 rewrite would be wrong:
        # 4.5 satisfies "< 5" but not "<= 4". Strict bounds stay at the
        # literal, inclusive and inexact.
        from repro.cohort.conditions import AttrRef, Compare, Literal
        attr = AttrRef("score")
        assert leaf_value_range(Compare(attr, "<", Literal(5)),
                                integral=False) == (None, 5, False)
        assert leaf_value_range(Compare(attr, ">", Literal(5)),
                                integral=False) == (5, None, False)
        assert leaf_value_range(Compare(attr, "<=", Literal(5)),
                                integral=False) == (None, 5, True)


class TestFloatColumnBounds:
    """Regression: int literals over FLOAT columns must not be
    tightened as if the column were integer-valued."""

    @pytest.fixture
    def float_engine(self):
        from repro.schema import ActivitySchema, LogicalType
        from repro.table import ActivityTable
        schema = ActivitySchema.build(
            user="player", time="time", action="action",
            dimensions={"country": LogicalType.STRING},
            measures={"score": LogicalType.FLOAT})
        rows = [("a", "2013-05-19", "launch", "US", 4.5),
                ("a", "2013-05-20", "shop", "US", 4.5),
                ("b", "2013-05-19", "launch", "CN", 9.5),
                ("b", "2013-05-20", "shop", "CN", 9.5)]
        eng = CohanaEngine()
        eng.create_table("D", ActivityTable.from_rows(schema, rows),
                         target_chunk_rows=2)
        return eng

    def test_strict_less_than_int_literal(self, float_engine):
        # score < 5 must keep the 4.5-score birth tuple: the coded
        # bound may not collapse to high=4.
        from repro.cohort.aggregates import AggregateSpec
        from repro.cohort.conditions import AttrRef, Compare, Literal
        from repro.cohort.query import CohortQuery
        query = CohortQuery(
            birth_action="launch",
            cohort_by=("country",),
            aggregates=(AggregateSpec("COUNT", None, "events"),),
            birth_condition=Compare(AttrRef("score"), "<", Literal(5)),
            table="D",
        )
        decoded = float_engine.query(query, scan_mode="decoded")
        compressed = float_engine.query(query, scan_mode="compressed")
        assert decoded.rows == compressed.rows
        assert len(decoded.rows) == 1  # the US user qualifies
