"""Integration & property tests: compress → (serialize →) decompress."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import (
    collect_stats,
    compress,
    deserialize,
    load,
    save,
    serialize,
)
from repro.table import ActivityTable

from helpers import make_game_schema


class TestCompress:
    def test_roundtrip_table1(self, table1):
        compressed = compress(table1, target_chunk_rows=4)
        assert compressed.n_rows == 10
        assert compressed.n_users == 3
        assert compressed.decompress() == table1

    def test_single_chunk(self, table1):
        compressed = compress(table1, target_chunk_rows=1000)
        assert compressed.n_chunks == 1

    def test_user_never_spans_chunks(self, table1):
        compressed = compress(table1, target_chunk_rows=2)
        seen: dict[int, int] = {}
        for chunk in compressed.chunks:
            for gid, _, _ in chunk.users.triples():
                assert gid not in seen, "user appears in two chunks"
                seen[gid] = chunk.index
        assert len(seen) == 3

    def test_unsorted_input_is_sorted(self, game_schema):
        rows = [
            ("b", "2013-05-20", "launch", "d", "C", 0),
            ("a", "2013-05-19", "launch", "d", "C", 0),
        ]
        table = ActivityTable.from_rows(game_schema, rows)
        compressed = compress(table)
        assert compressed.decompress().users.tolist() == ["a", "b"]

    def test_bad_chunk_rows(self, table1):
        with pytest.raises(StorageError):
            compress(table1, target_chunk_rows=0)

    def test_global_id_lookup(self, table1):
        compressed = compress(table1)
        gid = compressed.global_id("action", "launch")
        assert compressed.value_of("action", gid) == "launch"
        assert compressed.global_id("action", "no_such_action") is None

    def test_empty_table(self, game_schema):
        compressed = compress(ActivityTable.empty(game_schema))
        assert compressed.n_rows == 0
        assert compressed.n_chunks == 0
        assert compressed.decompress() == ActivityTable.empty(game_schema)

    def test_repr(self, table1):
        assert "chunks" in repr(compress(table1))


class TestPruningMetadata:
    def test_action_pruning(self, table1):
        compressed = compress(table1, target_chunk_rows=5)
        assert compressed.n_chunks == 2
        shop_gid = compressed.global_id("action", "shop")
        flags = [compressed.chunk_may_contain_action(c, shop_gid)
                 for c in compressed.chunks]
        # players 001 & 002 shop; player 003 never shops
        assert flags[0] is True

    def test_chunk_without_action_pruned(self, game_schema):
        rows = [
            ("a", "2013-05-19", "launch", "d", "C", 0),
            ("b", "2013-05-19", "fight", "d", "C", 0),
        ]
        table = ActivityTable.from_rows(game_schema, rows)
        compressed = compress(table, target_chunk_rows=1)
        assert compressed.n_chunks == 2
        launch_gid = compressed.global_id("action", "launch")
        flags = [compressed.chunk_may_contain_action(c, launch_gid)
                 for c in compressed.chunks]
        assert flags == [True, False]

    def test_time_range_pruning(self, table1):
        compressed = compress(table1, target_chunk_rows=5)
        chunk = compressed.chunks[0]
        assert compressed.chunk_overlaps_range(chunk, "time", None, None)
        assert not compressed.chunk_overlaps_range(chunk, "time",
                                                   2**60, None)

    def test_range_pruning_requires_integer_column(self, table1):
        compressed = compress(table1, target_chunk_rows=5)
        with pytest.raises(StorageError):
            compressed.chunk_overlaps_range(compressed.chunks[0],
                                            "country", None, None)


class TestSerialization:
    def test_bytes_roundtrip(self, table1):
        compressed = compress(table1, target_chunk_rows=4)
        data = serialize(compressed)
        back = deserialize(data)
        assert back.decompress() == table1
        assert back.target_chunk_rows == 4
        assert back.n_chunks == compressed.n_chunks

    def test_file_roundtrip(self, tmp_path, table1):
        compressed = compress(table1)
        path = tmp_path / "t.cohana"
        n = save(compressed, path)
        assert path.stat().st_size == n
        assert load(path).decompress() == table1

    def test_bad_magic(self):
        with pytest.raises(StorageError, match="magic"):
            deserialize(b"NOTMAGIC" + b"\x00" * 64)

    def test_truncated(self, table1):
        data = serialize(compress(table1))
        with pytest.raises(StorageError):
            deserialize(data[:len(data) // 2])

    def test_trailing_bytes(self, table1):
        data = serialize(compress(table1))
        with pytest.raises(StorageError, match="trailing"):
            deserialize(data + b"\x00")

    def test_bad_version(self, table1):
        data = bytearray(serialize(compress(table1)))
        data[8] = 99  # version u16 little-endian low byte
        with pytest.raises(StorageError, match="version"):
            deserialize(bytes(data))


class TestStats:
    def test_total_accounts_for_everything(self, table1):
        compressed = compress(table1, target_chunk_rows=4)
        stats = collect_stats(compressed)
        assert stats.n_rows == 10
        assert stats.n_chunks == compressed.n_chunks
        assert stats.total_bytes > 0
        assert stats.bits_per_tuple > 0
        assert set(stats.columns) == {"time", "action", "role", "country",
                                      "gold"}

    def test_larger_chunks_cost_no_less(self, table1):
        small = collect_stats(compress(table1, target_chunk_rows=2))
        big = collect_stats(compress(table1, target_chunk_rows=1000))
        # Figure 7's effect needs larger data to show; here we only check
        # both measurements are sane and comparable.
        assert small.total_bytes > 0 and big.total_bytes > 0

    def test_empty_table_stats(self, game_schema):
        stats = collect_stats(compress(ActivityTable.empty(game_schema)))
        assert stats.total_bytes >= 0
        assert stats.bits_per_tuple == 0.0


# -- property test -------------------------------------------------------------

_users = st.integers(min_value=0, max_value=20).map(lambda i: f"u{i:03d}")
_actions = st.sampled_from(["launch", "shop", "fight", "achieve"])
_countries = st.sampled_from(["AU", "CN", "US", "SG"])
_times = st.integers(min_value=0, max_value=10**7)


@st.composite
def activity_rows(draw, max_rows=60):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    rows = set()
    for _ in range(n):
        rows.add((draw(_users), draw(_times), draw(_actions)))
    return [(u, t, a, "role", draw(_countries), draw(st.integers(0, 500)))
            for (u, t, a) in sorted(rows)]


@given(rows=activity_rows(),
       chunk_rows=st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_property_compress_roundtrip(rows, chunk_rows):
    schema = make_game_schema()
    table = ActivityTable.from_rows(schema, rows).sorted_by_primary_key()
    compressed = compress(table, target_chunk_rows=chunk_rows)
    assert compressed.decompress() == table
    assert compressed.n_users == len(table.distinct_users())
    # serialize roundtrip too
    assert deserialize(serialize(compressed)).decompress() == table
