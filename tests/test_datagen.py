"""Tests for the synthetic workload generator and scale factors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import (
    ACTIONS,
    BIRTH_ACTIONS,
    COUNTRIES,
    GameConfig,
    aging_activity,
    birth_day_weights,
    game_schema,
    generate,
    scale_dataset,
    zipf_weights,
)
from repro.cohort import NEVER_BORN, birth_times
from repro.errors import QueryError
from repro.schema import parse_timestamp


@pytest.fixture(scope="module")
def small():
    return generate(GameConfig(n_users=20, seed=3))


class TestDistributions:
    def test_zipf_normalized_and_decreasing(self):
        w = zipf_weights(10)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] >= w[i + 1] for i in range(9))

    def test_birth_day_weights_front_loaded(self):
        w = birth_day_weights(39)
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[10] > w[38]

    def test_aging_decays(self):
        young = aging_activity(1.0, 9.0, 0, 0.35)
        old = aging_activity(20.0, 9.0, 0, 0.35)
        assert young > old

    def test_social_change_slows_decay(self):
        week0 = aging_activity(10.0, 9.0, 0, 0.35)
        week4 = aging_activity(10.0, 9.0, 4, 0.35)
        assert week4 > week0


class TestGenerator:
    def test_deterministic(self):
        a = generate(GameConfig(n_users=5, seed=42))
        b = generate(GameConfig(n_users=5, seed=42))
        assert a == b

    def test_different_seed_differs(self):
        a = generate(GameConfig(n_users=5, seed=1))
        b = generate(GameConfig(n_users=5, seed=2))
        assert a != b

    def test_schema_and_user_count(self, small):
        assert small.schema == game_schema()
        assert len(small.distinct_users()) == 20

    def test_primary_key_holds(self, small):
        small.check_primary_key()

    def test_sorted_and_clustered(self, small):
        assert small.is_sorted_by_primary_key()

    def test_first_action_is_launch(self, small):
        births = birth_times(small, "launch")
        for user, start, _ in small.user_blocks():
            assert small.actions[start] == "launch"
            assert int(small.times[start]) == births[user]

    def test_actions_within_vocabulary(self, small):
        assert set(small.actions.tolist()) <= set(ACTIONS)
        assert set(BIRTH_ACTIONS) <= set(ACTIONS)

    def test_time_window(self, small):
        config = GameConfig()
        lo = parse_timestamp(config.start)
        hi = lo + config.n_days * 86400
        assert int(small.times.min()) >= lo
        assert int(small.times.max()) < hi

    def test_gold_only_on_shop(self, small):
        gold = small.column("gold")
        actions = small.actions
        for i in range(len(small)):
            if actions[i] != "shop":
                assert gold[i] == 0

    def test_session_length_only_on_launch(self, small):
        sl = small.column("session_length")
        actions = small.actions
        for i in range(len(small)):
            if actions[i] == "launch":
                assert sl[i] >= 1
            else:
                assert sl[i] == 0

    def test_countries_within_vocabulary(self, small):
        assert set(small.column("country").tolist()) <= set(COUNTRIES)

    def test_aging_effect_visible(self):
        """Average gold per shop declines from early to late ages."""
        table = generate(GameConfig(n_users=60, seed=5))
        births = birth_times(table, "launch")
        early, late = [], []
        for i in range(len(table)):
            if table.actions[i] != "shop":
                continue
            age_days = (int(table.times[i])
                        - births[table.users[i]]) / 86400
            gold = int(table.column("gold")[i])
            (early if age_days <= 3 else late).append(gold)
        assert early and late
        assert np.mean(early) > np.mean(late)

    def test_bad_config(self):
        with pytest.raises(ValueError):
            GameConfig(n_users=0)
        with pytest.raises(ValueError):
            GameConfig(n_days=0)


class TestScaling:
    def test_scale_one_is_identity(self, small):
        assert scale_dataset(small, 1) is small

    def test_scale_multiplies_users_and_rows(self, small):
        scaled = scale_dataset(small, 3)
        assert len(scaled) == 3 * len(small)
        assert len(scaled.distinct_users()) == 3 * 20
        scaled.check_primary_key()

    def test_scaled_copies_behave_identically(self, small):
        scaled = scale_dataset(small, 2)
        by_user: dict[str, list] = {}
        for user, start, stop in scaled.user_blocks():
            base = user.rsplit("#", 1)[0]
            signature = tuple(
                (int(scaled.times[i]), scaled.actions[i],
                 int(scaled.column("gold")[i]))
                for i in range(start, stop))
            by_user.setdefault(base, []).append(signature)
        for signatures in by_user.values():
            assert len(signatures) == 2
            assert signatures[0] == signatures[1]

    def test_scale_preserves_sort(self, small):
        assert scale_dataset(small, 2).is_sorted_by_primary_key()

    def test_bad_factor(self, small):
        with pytest.raises(QueryError):
            scale_dataset(small, 0)


@given(n_users=st.integers(1, 12), seed=st.integers(0, 10))
@settings(max_examples=15, deadline=None)
def test_property_generated_tables_valid(n_users, seed):
    table = generate(GameConfig(n_users=n_users, seed=seed))
    table.check_primary_key()
    assert table.is_sorted_by_primary_key()
    assert len(table.distinct_users()) == n_users
    # every user is born w.r.t. launch
    births = birth_times(table, "launch")
    assert all(t != NEVER_BORN for t in births.values())
