"""Shard compaction, retention, snapshot pinning, and the caches that
must (and must not) survive a rewrite.

The contract under test: compaction is *physically* a new table —
shard files, content digests, and manifest generation all change — but
*logically* the identical multiset of rows. So the engine's version
token (derived from the logical digest) is stable across a compaction,
the service's result cache keeps hitting, and materialized-view
partials re-key to the new shard digests with the stale ones pruned.
Retention is the one operation that changes the logical content, and
it must roll the token. Snapshot pinning keeps every already-open
reader on its generation's files until release, and the GC never
deletes a pinned file.
"""

import os
import threading

import pytest

from repro.cohana import CohanaEngine
from repro.cohana.pipeline import KERNELS, ChunkKernel, register_kernel
from repro.errors import StorageError
from repro.schema import parse_timestamp
from repro.service import QueryService
from repro.storage import (
    SHARD_VERIFY_STATS,
    append_shard,
    clear_shard_verify_cache,
    compact,
    gc_shards,
    load_sharded,
    prune_retention,
    publish_manifest,
    read_manifest,
    select_small_shards,
)

from helpers import make_game_schema
from test_materialized_views import DDL, QUERY, _random_table, _user_batches

COHORT_QUERY = ('SELECT country, COHORTSIZE, AGE, UserCount() FROM G '
                'BIRTH FROM action = "launch" COHORT BY country')


@pytest.fixture
def shard_dir(tmp_path):
    d = tmp_path / "G"
    for batch in _user_batches(_random_table(7, n_users=24), 3):
        append_shard(d, batch, target_chunk_rows=16)
    return d


def _rows(directory):
    table = load_sharded(directory)
    try:
        return sorted(table.decompress().to_rows())
    finally:
        table.release()


def _shard_files(directory):
    return sorted(p.name for p in directory.glob("shard-*.cohana"))


# ---------------------------------------------------------------------------
# The rewrite itself
# ---------------------------------------------------------------------------


class TestCompact:
    def test_merges_to_one_shard_same_rows(self, shard_dir):
        rows0 = _rows(shard_dir)
        gen0 = read_manifest(shard_dir)["generation"]
        result = compact(shard_dir)
        assert result.compacted
        assert len(result.merged) == 3
        assert result.generation == gen0 + 1
        manifest = read_manifest(shard_dir)
        assert manifest["generation"] == gen0 + 1
        assert [e["path"] for e in manifest["shards"]] \
            == [result.new_shard]
        assert result.n_rows == len(rows0)
        assert _rows(shard_dir) == rows0

    def test_logical_digest_invariant_physical_not(self, shard_dir):
        before = load_sharded(shard_dir)
        logical0, physical0 = (before.logical_digest,
                               before.content_digest)
        before.release()
        compact(shard_dir)
        after = load_sharded(shard_dir)
        try:
            assert after.logical_digest == logical0
            assert after.content_digest != physical0
        finally:
            after.release()

    def test_small_rows_merges_only_small_shards(self, tmp_path):
        d = tmp_path / "G"
        parts = _user_batches(_random_table(8, n_users=48), 6)
        big = parts[0].concat(parts[1]).concat(parts[2])
        smalls = parts[3:]
        append_shard(d, big, target_chunk_rows=16)
        for small in smalls:
            append_shard(d, small, target_chunk_rows=16)
        entries = read_manifest(d)["shards"]
        threshold = max(e["n_rows"] for e in entries[1:])
        assert entries[0]["n_rows"] > threshold
        picked = select_small_shards(entries, threshold)
        assert picked == list(range(1, len(entries)))

        rows0 = _rows(d)
        result = compact(d, small_rows=threshold)
        assert result.compacted
        assert entries[0]["path"] not in result.merged
        manifest = read_manifest(d)
        # The big shard survives untouched, in place.
        assert manifest["shards"][0] == entries[0]
        assert len(manifest["shards"]) == 2
        assert _rows(d) == rows0

    def test_single_shard_is_a_noop(self, tmp_path):
        d = tmp_path / "G"
        append_shard(d, _random_table(10, n_users=8),
                     target_chunk_rows=16)
        gen0 = read_manifest(d)["generation"]
        result = compact(d)
        assert not result.compacted
        assert result.generation == gen0
        assert read_manifest(d)["generation"] == gen0

    def test_fewer_than_two_small_shards_is_a_noop(self, shard_dir):
        assert not compact(shard_dir, small_rows=0).compacted


# ---------------------------------------------------------------------------
# What survives a compaction: version token, result cache; what
# re-keys: per-shard plans and partials
# ---------------------------------------------------------------------------


class TestCachesAcrossCompaction:
    def test_version_token_stable_result_cache_hits(self, shard_dir):
        engine = CohanaEngine()
        engine.load_table("G", shard_dir)
        service = QueryService(engine)
        token0 = engine.version_token("G")
        cold = service.query(COHORT_QUERY)

        compact(shard_dir)
        engine.refresh_table("G")
        assert engine.version_token("G") == token0
        warm, stats = service.query_with_stats(COHORT_QUERY)
        assert stats.cache_disposition == "hit"
        assert warm.rows == cold.rows

    def test_append_still_rolls_the_token(self, tmp_path):
        d = tmp_path / "G"
        batches = _user_batches(_random_table(12, n_users=24), 3)
        for batch in batches[:2]:
            append_shard(d, batch, target_chunk_rows=16)
        engine = CohanaEngine()
        engine.load_table("G", d)
        token0 = engine.version_token("G")
        append_shard(d, batches[2], target_chunk_rows=16)
        engine.refresh_table("G")
        assert engine.version_token("G") != token0

    def test_view_partials_rekey_and_stale_ones_prune(self, shard_dir):
        engine = CohanaEngine()
        engine.load_table("G", shard_dir)
        engine.execute_statement(DDL)
        direct = engine.query(QUERY).rows
        partials_dir = shard_dir / "VIEWS" / "partials"
        assert len(list(partials_dir.rglob("*.json"))) == 3

        compact(shard_dir)
        engine.refresh_table("G")  # default: refreshes views too
        result, stats = engine.serve_view("weekly")
        assert result.rows == direct
        assert stats.shards_total == 1
        # The three pre-compaction partials are orphans (their shard
        # digests exist nowhere anymore) and must be pruned, not
        # accumulated.
        leftover = list(partials_dir.rglob("*.json"))
        assert len(leftover) == 1

    def test_refresh_after_compaction_scans_merged_shard_once(
            self, shard_dir):
        engine = CohanaEngine()
        engine.load_table("G", shard_dir)
        engine.execute_statement(DDL)
        compact(shard_dir)
        engine.refresh_table("G", refresh_views=False)
        stats = engine.refresh_view("weekly")
        assert stats.shards_total == 1
        assert stats.shards_scanned == 1  # new digest, one recompute
        _, serve_stats = engine.serve_view("weekly")
        assert serve_stats.shards_scanned == 0


# ---------------------------------------------------------------------------
# Retention
# ---------------------------------------------------------------------------


def _batches_by_day(seed=21):
    """Three user-disjoint batches whose time ranges are separated by
    whole days, so a day-granular cutoff cleanly classifies shards."""
    from repro.table import ActivityTable

    rows_by_day = {d: [] for d in (1, 5, 9)}
    for i, day in enumerate(sorted(rows_by_day) * 6):
        u = f"u{i:03d}"
        rows_by_day[day].append(
            (u, f"2013/05/{day:02d}:0{i % 4}15", "launch", "wizard",
             "Peru", i))
        rows_by_day[day].append(
            (u, f"2013/05/{day:02d}:1{i % 4}15", "shop", "wizard",
             "Peru", i))
    schema = make_game_schema()
    return [ActivityTable.from_rows(schema, rows_by_day[d])
            for d in (1, 5, 9)]


class TestRetention:
    def test_drops_only_fully_expired_shards(self, tmp_path):
        d = tmp_path / "G"
        for batch in _batches_by_day():
            append_shard(d, batch, target_chunk_rows=16)
        gen0 = read_manifest(d)["generation"]
        cutoff = parse_timestamp("2013/05/05:0000")
        result = prune_retention(d, older_than=cutoff)
        assert result.pruned
        assert len(result.removed) == 1 and result.kept == 2
        assert result.generation == gen0 + 1
        table = load_sharded(d)
        try:
            times = [r[1] for r in table.decompress().to_rows()]
            assert min(times) >= cutoff
        finally:
            table.release()

    def test_noop_keeps_generation(self, tmp_path):
        d = tmp_path / "G"
        for batch in _batches_by_day():
            append_shard(d, batch, target_chunk_rows=16)
        gen0 = read_manifest(d)["generation"]
        result = prune_retention(
            d, older_than=parse_timestamp("2013/05/01:0000"))
        assert not result.pruned
        assert result.generation == gen0
        assert read_manifest(d)["generation"] == gen0

    def test_refuses_to_empty_the_table(self, tmp_path):
        d = tmp_path / "G"
        for batch in _batches_by_day():
            append_shard(d, batch, target_chunk_rows=16)
        with pytest.raises(StorageError, match="every shard"):
            prune_retention(
                d, older_than=parse_timestamp("2014/01/01:0000"))

    def test_pre_time_range_manifest_falls_back_to_header(
            self, tmp_path):
        """Manifests written before time ranges were recorded still
        prune correctly: the shard's own header range is the truth."""
        d = tmp_path / "G"
        for batch in _batches_by_day():
            append_shard(d, batch, target_chunk_rows=16)
        manifest = read_manifest(d)
        for entry in manifest["shards"]:
            del entry["time_range"]
        publish_manifest(d, manifest)
        result = prune_retention(
            d, older_than=parse_timestamp("2013/05/05:0000"))
        assert len(result.removed) == 1 and result.kept == 2


# ---------------------------------------------------------------------------
# Snapshot pinning and GC
# ---------------------------------------------------------------------------


class TestPinningAndGC:
    def test_gc_never_deletes_pinned_files(self, shard_dir):
        pinned = load_sharded(shard_dir)
        old_files = _shard_files(shard_dir)
        result = compact(shard_dir)
        assert result.compacted
        assert result.gc_removed == ()  # the pin protected every file
        assert set(old_files) <= set(_shard_files(shard_dir))
        # The pinned snapshot still reads its own generation.
        assert pinned.generation == result.generation - 1
        pinned.decompress()
        pinned.release()
        removed = gc_shards(shard_dir)
        assert sorted(removed) == old_files
        assert _shard_files(shard_dir) == [result.new_shard]

    def test_reader_mid_query_never_sees_mixed_generations(
            self, shard_dir):
        """Event-sequenced: a reader blocks *inside* a scan while a
        compaction publishes the next generation and tries to GC. The
        reader's pinned files must survive until it finishes, and its
        answer must equal the pre-compaction truth."""
        started, release = threading.Event(), threading.Event()
        inner = KERNELS["vectorized"].scan

        def scan(table, chunk, plan):
            started.set()
            assert release.wait(timeout=30), "never released"
            return inner(table, chunk, plan)

        register_kernel(ChunkKernel(name="gated", scan=scan))
        try:
            engine = CohanaEngine()
            engine.load_table("G", shard_dir)
            expected = engine.query(COHORT_QUERY).rows
            old_files = _shard_files(shard_dir)

            outcome = {}

            def run():
                try:
                    outcome["rows"] = engine.query(
                        COHORT_QUERY, executor="gated").rows
                except Exception as exc:  # pragma: no cover
                    outcome["error"] = exc

            reader = threading.Thread(target=run)
            reader.start()
            assert started.wait(timeout=30)
            # Mid-scan: publish the next generation and attempt GC.
            result = compact(shard_dir)
            assert result.compacted
            assert result.gc_removed == ()
            for name in old_files:
                assert (shard_dir / name).is_file(), \
                    "GC deleted a file pinned by a mid-query reader"
            release.set()
            reader.join(timeout=60)
            assert outcome.get("rows") == expected
            # Only after the engine lets go of the old snapshot does
            # the GC reclaim its files.
            engine.refresh_table("G")
            gc_shards(shard_dir)
            assert _shard_files(shard_dir) == [result.new_shard]
        finally:
            del KERNELS["gated"]


# ---------------------------------------------------------------------------
# Verify memoization (the satellite bugfix)
# ---------------------------------------------------------------------------


class TestVerifyMemoization:
    def test_reopen_memoizes_instead_of_rehashing(self, shard_dir):
        clear_shard_verify_cache()
        load_sharded(shard_dir).release()
        hashed0 = SHARD_VERIFY_STATS["hashed"]
        assert hashed0 == 3  # one real hash per shard, first open
        load_sharded(shard_dir).release()
        load_sharded(shard_dir).release()
        assert SHARD_VERIFY_STATS["hashed"] == hashed0
        assert SHARD_VERIFY_STATS["memoized"] >= 6

    def test_corruption_still_fires_after_memoization(self, shard_dir):
        load_sharded(shard_dir).release()  # warm the verify cache
        victim = shard_dir / read_manifest(shard_dir)["shards"][0]["path"]
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))
        # The rewrite can land within the same mtime tick at the same
        # size; a real corruption (bit rot) changes neither stat field
        # either — the memo key must include enough to miss. Advance
        # the mtime as a same-size in-place corruption would not, then
        # prove the cold path itself still fires.
        stat = victim.stat()
        os.utime(victim, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
        with pytest.raises(StorageError, match="shard digest mismatch"):
            load_sharded(shard_dir)
        clear_shard_verify_cache()
        with pytest.raises(StorageError, match="shard digest mismatch"):
            load_sharded(shard_dir)
