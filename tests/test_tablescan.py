"""Unit tests for the modified TableScan (ChunkScan / LazyRow)."""

import pytest

from repro.errors import ExecutionError
from repro.cohana.tablescan import ChunkScan
from repro.schema import parse_timestamp
from repro.storage import compress


@pytest.fixture
def scan(table1):
    compressed = compress(table1, target_chunk_rows=1000)
    return ChunkScan(compressed, compressed.chunks[0]), compressed


class TestUserNavigation:
    def test_get_next_user_triples(self, scan):
        chunk_scan, compressed = scan
        triples = []
        while chunk_scan.has_more_users():
            gid, first, count = chunk_scan.get_next_user()
            triples.append((compressed.user_name(gid), first, count))
        assert triples == [("001", 0, 5), ("002", 5, 3), ("003", 8, 2)]

    def test_get_next_user_past_end(self, scan):
        chunk_scan, _ = scan
        for _ in range(3):
            chunk_scan.get_next_user()
        with pytest.raises(ExecutionError):
            chunk_scan.get_next_user()

    def test_get_next_before_user(self, scan):
        chunk_scan, _ = scan
        with pytest.raises(ExecutionError):
            chunk_scan.get_next()

    def test_skip_cur_user_counts(self, scan):
        chunk_scan, _ = scan
        chunk_scan.get_next_user()
        assert chunk_scan.skip_cur_user() == 5
        assert chunk_scan.skip_cur_user() == 0

    def test_partial_skip(self, scan):
        chunk_scan, _ = scan
        chunk_scan.get_next_user()
        chunk_scan.get_next()
        chunk_scan.get_next()
        assert chunk_scan.skip_cur_user() == 3

    def test_block_iteration_ends_with_none(self, scan):
        chunk_scan, _ = scan
        chunk_scan.get_next_user()
        rows = []
        row = chunk_scan.get_next()
        while row is not None:
            rows.append(row)
            row = chunk_scan.get_next()
        assert len(rows) == 5

    def test_rewind(self, scan):
        chunk_scan, _ = scan
        chunk_scan.get_next_user()
        first = chunk_scan.get_next()["time"]
        chunk_scan.get_next()
        chunk_scan.rewind_current_user()
        assert chunk_scan.get_next()["time"] == first


class TestLazyRow:
    def test_values_decoded_on_demand(self, scan):
        chunk_scan, _ = scan
        chunk_scan.get_next_user()
        row = chunk_scan.get_next()
        assert row["player"] == "001"
        assert row["action"] == "launch"
        assert row["country"] == "Australia"
        assert row["time"] == parse_timestamp("2013/05/19:1000")
        assert row["gold"] == 0

    def test_mapping_protocol(self, scan):
        chunk_scan, _ = scan
        chunk_scan.get_next_user()
        row = chunk_scan.get_next()
        assert len(row) == 6
        assert set(iter(row)) == {"player", "time", "action", "role",
                                  "country", "gold"}
        assert dict(row)["role"] == "dwarf"

    def test_peek_does_not_consume(self, scan):
        chunk_scan, _ = scan
        chunk_scan.get_next_user()
        peeked = [r["action"] for r in chunk_scan.peek_block_rows()]
        assert peeked == ["launch", "shop", "shop", "shop", "fight"]
        # cursor unchanged
        assert chunk_scan.get_next()["action"] == "launch"

    def test_action_gid_matches_dictionary(self, scan):
        chunk_scan, compressed = scan
        chunk_scan.get_next_user()
        row = chunk_scan.get_next()
        gid = chunk_scan.action_gid_at(row.position)
        assert compressed.value_of("action", gid) == "launch"
