"""Process-parallel scan backend + mmap format v3 tests.

Covers the PR-3 surface: backend parity (serial/threads/processes at
jobs 1/2/4) over an on-disk table, deterministic pool cleanup on kernel
failure, explicit backends honoured at jobs=1, v1/v2/v3 format
round-trips, and lazy (mmap) vs eager reader equality.

``COHANA_TEST_JOBS`` (used by the CI matrix) overrides the largest
worker count the parity sweep exercises.
"""

import os

import pytest

from repro.errors import ExecutionError, StorageError
from repro.cohana import ChunkScheduler, CohanaEngine, ExecutionConfig
from repro.cohana import pipeline
from repro.cohana.pipeline import ChunkKernel, KERNELS, \
    register_kernel
from repro.datagen import GameConfig, generate
from repro.storage import compress, deserialize, load, save, serialize
from repro.storage.format import MMAP_VERSION, SUPPORTED_VERSIONS, VERSION
from repro.workloads import MAIN_QUERIES

from helpers import make_table1

TABLE = "GameActions"

#: The default sweep stays cheap (1 and 2 workers); the CI matrix leg
#: sets COHANA_TEST_JOBS=4 to extend it to real 4-way parallelism.
ENV_JOBS = int(os.environ.get("COHANA_TEST_JOBS", "0") or "0")
JOBS = tuple(sorted({1, 2} | ({ENV_JOBS} if ENV_JOBS > 1 else set())))


def _game_table():
    return generate(GameConfig(n_users=57, seed=7))


@pytest.fixture(scope="module")
def cohana_path(tmp_path_factory):
    """The game dataset compressed and saved as a (v3) .cohana file."""
    path = tmp_path_factory.mktemp("proc") / "game.cohana"
    save(compress(_game_table(), target_chunk_rows=512), path)
    return path


@pytest.fixture(scope="module")
def disk_engine(cohana_path):
    eng = CohanaEngine()
    eng.load_table(TABLE, cohana_path)
    return eng


class TestBackendParity:
    """Identical rows from every backend at every worker count."""

    @pytest.mark.parametrize("qname", sorted(MAIN_QUERIES))
    @pytest.mark.parametrize("backend",
                             ("serial", "threads", "processes"))
    def test_workload_rows_match_serial(self, disk_engine, backend,
                                        qname):
        text = MAIN_QUERIES[qname](TABLE)
        base = disk_engine.query(text, jobs=1, backend="serial")
        jobs = max(JOBS)
        got = disk_engine.query(text, jobs=jobs, backend=backend)
        assert got.rows == base.rows
        assert got.columns == base.columns

    @pytest.mark.parametrize("jobs", JOBS)
    def test_processes_stats_match_serial(self, disk_engine, jobs):
        text = MAIN_QUERIES["Q1"](TABLE)
        _, serial = disk_engine.query_with_stats(text, backend="serial")
        _, procs = disk_engine.query_with_stats(text, jobs=jobs,
                                                backend="processes")
        assert procs == serial
        assert procs.chunks_scanned > 1

    def test_iterator_kernel_through_processes(self, disk_engine):
        text = MAIN_QUERIES["Q1"](TABLE)
        base = disk_engine.query(text, executor="iterator")
        got = disk_engine.query(text, executor="iterator", jobs=2,
                                backend="processes")
        assert got.rows == base.rows


class TestBackendResolution:
    def test_auto_prefers_processes_for_on_disk_tables(self,
                                                       disk_engine):
        table = disk_engine.table(TABLE)
        assert ExecutionConfig.resolve(jobs=4, table=table).backend \
            == "processes"
        assert ExecutionConfig.resolve(jobs=1, table=table).backend \
            == "serial"

    def test_auto_falls_back_to_threads_in_memory(self):
        eng = CohanaEngine()
        table = eng.create_table("D", make_table1())
        assert ExecutionConfig.resolve(jobs=4, table=table).backend \
            == "threads"

    def test_explain_rejects_config_plus_loose_options(self,
                                                       disk_engine):
        with pytest.raises(ExecutionError, match="not both"):
            disk_engine.explain(MAIN_QUERIES["Q1"](TABLE), jobs=4,
                                config=ExecutionConfig())

    def test_processes_needs_source_path(self):
        eng = CohanaEngine()
        eng.create_table("D", make_table1(), target_chunk_rows=4)
        q = ('SELECT country, COHORTSIZE, AGE, UserCount() FROM D '
             'BIRTH FROM action = "launch" COHORT BY country')
        with pytest.raises(ExecutionError, match="source|path|file"):
            eng.query(q, jobs=2, backend="processes")

    @pytest.mark.parametrize("backend,pool",
                             [("threads", "ThreadPoolExecutor"),
                              ("processes", "ProcessPoolExecutor")])
    def test_explicit_backend_honoured_at_jobs_1(self, disk_engine,
                                                 monkeypatch, backend,
                                                 pool):
        """jobs=1 must not silently fall back to the serial loop when a
        parallel backend was requested explicitly."""
        used = []
        real = getattr(pipeline, pool)

        class Spy(real):
            def __init__(self, *args, **kw):
                used.append(pool)
                super().__init__(*args, **kw)

        monkeypatch.setattr(pipeline, pool, Spy)
        text = MAIN_QUERIES["Q1"](TABLE)
        base = disk_engine.query(text, backend="serial")
        got = disk_engine.query(text, jobs=1, backend=backend)
        assert got.rows == base.rows
        assert used == [pool]


# -- error injection ---------------------------------------------------------

_BOOM_CALLS = []


def _boom_scan(table, chunk, plan):
    _BOOM_CALLS.append(chunk.index)
    raise ExecutionError("injected kernel failure")


@pytest.fixture
def boom_kernel():
    register_kernel(ChunkKernel(name="boom", scan=_boom_scan))
    _BOOM_CALLS.clear()
    try:
        yield "boom"
    finally:
        del KERNELS["boom"]


class TestErrorCleanup:
    def test_threads_cancels_queued_tasks(self, disk_engine,
                                          boom_kernel):
        """With one worker, the first task's failure must cancel every
        queued task before the error propagates — no stragglers keep
        scanning after the query has failed."""
        table = disk_engine.table(TABLE)
        plan = disk_engine.plan(MAIN_QUERIES["Q1"](TABLE))
        config = ExecutionConfig(backend="threads", jobs=1)
        scheduler = ChunkScheduler(table, plan, boom_kernel, config)
        assert len(scheduler.tasks()) > 1
        with pytest.raises(ExecutionError, match="injected"):
            scheduler.run()
        assert len(_BOOM_CALLS) == 1

    def test_serial_propagates(self, disk_engine, boom_kernel):
        with pytest.raises(ExecutionError, match="injected"):
            disk_engine.query(MAIN_QUERIES["Q1"](TABLE),
                              executor="boom")
        assert len(_BOOM_CALLS) == 1

    def test_processes_propagates_worker_errors(self, disk_engine,
                                                boom_kernel):
        """Kernel exceptions cross the process boundary intact (the
        fork start method inherits the test kernel registration)."""
        import multiprocessing
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("needs fork inheritance of the test kernel")
        with pytest.raises(ExecutionError, match="injected"):
            disk_engine.query(MAIN_QUERIES["Q1"](TABLE),
                              executor="boom", jobs=2,
                              backend="processes")


# -- format v3 / lazy reader -------------------------------------------------


class TestFormatV3:
    def test_current_version_is_mmapable(self):
        assert VERSION >= MMAP_VERSION
        assert set(SUPPORTED_VERSIONS) == {1, 2, 3, 4}

    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    def test_round_trip_every_version(self, version):
        table = make_table1()
        compressed = compress(table, target_chunk_rows=4)
        back = deserialize(serialize(compressed, version=version))
        assert back.decompress() == table

    def test_v3_to_v2_to_v1_downgrade_chain(self):
        table = make_table1()
        compressed = compress(table, target_chunk_rows=4)
        v3 = deserialize(serialize(compressed, version=3))
        v2 = deserialize(serialize(v3, version=2))
        v1 = deserialize(serialize(v2, version=1))
        assert v2.decompress() == table
        assert v1.decompress() == table
        assert v3.has_zone_maps and v2.has_zone_maps
        assert not v1.has_zone_maps

    def test_lazy_load_defers_chunk_parsing(self, tmp_path):
        path = tmp_path / "t.cohana"
        save(compress(make_table1(), target_chunk_rows=4), path)
        lazy = load(path)
        assert lazy.is_lazy
        assert lazy.chunks.loaded_count == 0
        lazy.chunks[0]
        assert lazy.chunks.loaded_count == 1
        assert lazy.source_path == str(path)

    def test_lazy_equals_eager(self, tmp_path):
        path = tmp_path / "t.cohana"
        table = _game_table()
        save(compress(table, target_chunk_rows=512), path)
        lazy = load(path)
        eager = load(path, lazy=False)
        assert lazy.is_lazy and not eager.is_lazy
        assert lazy.n_chunks == eager.n_chunks
        assert lazy.n_rows == eager.n_rows
        assert lazy.decompress() == eager.decompress() == \
            table.sorted_by_primary_key()

    def test_lazy_query_parity(self, tmp_path):
        path = tmp_path / "t.cohana"
        save(compress(_game_table(), target_chunk_rows=512), path)
        text = MAIN_QUERIES["Q1"](TABLE)
        lazy_eng, eager_eng = CohanaEngine(), CohanaEngine()
        lazy_eng.register(TABLE, load(path))
        eager_eng.register(TABLE, load(path, lazy=False))
        assert lazy_eng.query(text).rows == eager_eng.query(text).rows

    @pytest.mark.parametrize("version", (1, 2))
    def test_old_versions_load_eagerly(self, tmp_path, version):
        path = tmp_path / "t.cohana"
        table = make_table1()
        save(compress(table, target_chunk_rows=4), path,
             version=version)
        loaded = load(path)
        assert not loaded.is_lazy
        assert loaded.source_path == str(path)
        assert loaded.decompress() == table

    def test_v2_file_still_feeds_processes_backend(self, tmp_path):
        """The processes backend only needs a path — eager-loading v2
        files work too; v3 just makes the workers' loads lazy."""
        path = tmp_path / "t.cohana"
        save(compress(_game_table(), target_chunk_rows=512), path,
             version=2)
        eng = CohanaEngine()
        eng.load_table(TABLE, path)
        text = MAIN_QUERIES["Q1"](TABLE)
        base = eng.query(text)
        assert eng.query(text, jobs=2, backend="processes").rows \
            == base.rows

    def test_corrupt_index_offset_rejected(self):
        data = bytearray(serialize(compress(make_table1(),
                                            target_chunk_rows=4)))
        data[-8:] = (len(data) * 2).to_bytes(8, "little")
        with pytest.raises(StorageError, match="index"):
            deserialize(bytes(data))
