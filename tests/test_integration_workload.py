"""End-to-end integration on the synthetic game workload.

Runs the paper's actual benchmark queries (Q1-Q8) on a small generated
dataset through every evaluation path and checks exact agreement with
the row-semantics oracle — the full pipeline test: generator → storage →
parser → binder → planner → executors / SQL schemes.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.baselines import SYSTEMS, run_everywhere
from repro.cohana import CohanaEngine
from repro.cohort import evaluate as oracle_evaluate
from repro.datagen import GameConfig, generate, scale_dataset
from repro.workloads import bind, q1, q2, q3, q4, q5, q6, q7, q8


@pytest.fixture(scope="module")
def table():
    return generate(GameConfig(n_users=25, seed=13))


@pytest.fixture(scope="module")
def engine(table):
    eng = CohanaEngine()
    eng.create_table("GameActions", table, target_chunk_rows=128)
    return eng


def _approx(rows):
    return [tuple(round(v, 9) if isinstance(v, float) else v for v in r)
            for r in rows]


ALL_QUERIES = {
    "Q1": q1(), "Q2": q2(), "Q3": q3(), "Q4": q4(),
    "Q5": q5("2013-05-19", "2013-05-29"),
    "Q6": q6("2013-05-19", "2013-05-29"),
    "Q7": q7(7), "Q8": q8(7),
}


class TestCohanaAgainstOracle:
    @pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
    def test_both_executors_match_oracle(self, qname, table, engine):
        query = bind(ALL_QUERIES[qname], table.schema)
        expected = oracle_evaluate(query, table)
        for executor in ("vectorized", "iterator"):
            got = engine.query(query, executor=executor)
            assert _approx(got.rows) == _approx(expected.rows), (
                f"{qname}/{executor}")

    def test_scaled_dataset_scales_counts(self, table):
        """At scale 2 every cohort size and UserCount doubles and every
        Avg is unchanged (copies behave identically)."""
        query = bind(q1(), table.schema)
        base = oracle_evaluate(query, table)
        eng = CohanaEngine()
        eng.create_table("GameActions", scale_dataset(table, 2),
                         target_chunk_rows=128)
        scaled = eng.query(query)
        assert len(scaled.rows) == len(base.rows)
        for brow, srow in zip(base.rows, scaled.rows):
            assert srow[0] == brow[0]          # cohort label
            assert srow[1] == 2 * brow[1]      # cohort size
            assert srow[2] == brow[2]          # age
            assert srow[3] == 2 * brow[3]      # UserCount

    def test_avg_invariant_under_scaling(self, table):
        query = bind(q3(), table.schema)
        base = oracle_evaluate(query, table)
        eng = CohanaEngine()
        eng.create_table("GameActions", scale_dataset(table, 3),
                         target_chunk_rows=256)
        scaled = eng.query(query)
        base_avg = {(r[0], r[2]): r[3] for r in base.rows}
        for row in scaled.rows:
            assert row[3] == pytest.approx(base_avg[(row[0], row[2])])


class TestAllSystemsOnWorkload:
    @pytest.mark.parametrize("qname", ["Q1", "Q3", "Q4"])
    def test_six_way_agreement(self, qname, table):
        query = bind(ALL_QUERIES[qname], table.schema)
        query = query.__class__(**{**query.__dict__, "table": "D"})
        expected = oracle_evaluate(query, table)
        results = run_everywhere(table, query, chunk_rows=128)
        assert set(results) == set(SYSTEMS)
        for label, result in results.items():
            assert _approx(result.rows) == _approx(expected.rows), (
                f"{qname}/{label}")


class TestPersistenceRoundTrip:
    def test_save_query_load_query(self, tmp_path, table, engine):
        path = tmp_path / "game.cohana"
        engine.save_table("GameActions", path)
        eng2 = CohanaEngine()
        eng2.load_table("GameActions", path)
        query = q1()
        assert eng2.query(query).rows == engine.query(query).rows


@pytest.mark.parametrize("script", ["quickstart.py", "mixed_query.py"])
def test_examples_run_clean(script):
    """Smoke-run the fast example scripts as real subprocesses."""
    root = Path(__file__).resolve().parent.parent
    proc = subprocess.run(
        [sys.executable, str(root / "examples" / script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()
