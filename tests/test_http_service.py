"""The HTTP service tier: admission control, wire protocol, endpoints.

Covers the serving-tier surface over a *live* server on a loopback
port (no mocked transport): token-bucket refill with an injectable
clock, per-tenant quota exhaustion and queue-full shedding answered as
429 + ``Retry-After``, request timeouts that cancel queued work and
leave the caches consistent, a threaded client storm collapsing to one
execution through the service's single-flight dedup, every endpoint
(``/query`` digest parity, ``/batch``, ``/explain``, ``/stats``,
``/healthz``, ``/ingest`` including the 409 on a user overlap),
graceful drain with zero dropped in-flight requests, the pinned JSON
shape of a structured 400 parse error, and the ``serve --http`` CLI
wiring.
"""

import hashlib
import http.client
import json
import threading
import time

import pytest

from repro.cli import main
from repro.cohana import CohanaEngine
from repro.datagen import GameConfig, game_schema, generate
from repro.service import (
    AdmissionConfig,
    HttpCohortServer,
    QueryService,
    TokenBucket,
    start_in_thread,
)
from repro.storage import append_shard
from repro.table import ActivityTable

QUERY = ('SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent FROM G '
         'BIRTH FROM action = "launch" COHORT BY country')
OTHER_QUERY = ('SELECT role, COHORTSIZE, AGE, UserCount() FROM G '
               'BIRTH FROM action = "launch" COHORT BY role')
MALFORMED = 'SELECT country, FROM G BIRTH'


def _game_table(seed=3, users=30):
    return generate(GameConfig(n_users=users, seed=seed))


def _digest(result):
    return hashlib.sha256(repr(result.rows).encode()).hexdigest()[:16]


def _request(address, method, path, body=None, tenant=None, timeout=30):
    """One request on a fresh connection → (status, headers, json)."""
    conn = http.client.HTTPConnection(address[0], address[1],
                                      timeout=timeout)
    try:
        headers = {"X-Tenant": tenant} if tenant else {}
        conn.request(method, path,
                     body=json.dumps(body) if body is not None else None,
                     headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return (response.status,
                {k.lower(): v for k, v in response.getheaders()},
                json.loads(raw) if raw else {})
    finally:
        conn.close()


@pytest.fixture
def engine():
    eng = CohanaEngine()
    eng.create_table("G", _game_table(), target_chunk_rows=64)
    return eng


@pytest.fixture
def service(engine):
    return QueryService(engine)


class _Gate:
    """Makes the service slow on demand: every ``query_with_stats``
    call signals ``started`` and blocks until ``release``."""

    def __init__(self, service):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = []
        original = service.query_with_stats

        def slow(query, **kw):
            self.calls.append(query)
            self.started.set()
            assert self.release.wait(10), "gate never released"
            return original(query, **kw)

        service.query_with_stats = slow


@pytest.fixture
def gate_cleanup():
    """Release any gate at teardown so a failing test can't wedge the
    server's drain on a blocked worker thread."""
    gates = []
    yield gates.append
    for gate in gates:
        gate.release.set()


def _post_in_thread(address, body, results, tenant=None):
    thread = threading.Thread(
        target=lambda: results.append(
            _request(address, "POST", "/query", body, tenant=tenant)),
        daemon=True)
    thread.start()
    return thread


# -- token bucket -------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        retry_after = bucket.try_acquire()
        assert retry_after > 0
        now[0] += retry_after
        assert bucket.try_acquire() == 0.0

    def test_refill_capped_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3, clock=lambda: now[0])
        now[0] += 1000.0  # a long idle refills at most `burst` tokens
        for _ in range(3):
            assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0

    def test_retry_after_is_honest(self):
        now = [0.0]
        bucket = TokenBucket(rate=0.5, burst=1, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        retry_after = bucket.try_acquire()
        assert retry_after == pytest.approx(2.0)
        now[0] += retry_after / 2
        assert bucket.try_acquire() == pytest.approx(1.0)


# -- admission control over the wire ------------------------------------------


class TestAdmissionControl:
    def test_tenant_quota_exhaustion_is_429(self, service, gate_cleanup):
        gate = _Gate(service)
        gate_cleanup(gate)
        server = HttpCohortServer(service, admission=AdmissionConfig(
            max_inflight=4, queue_depth=8, tenant_quota=1))
        with start_in_thread(server) as handle:
            results = []
            thread = _post_in_thread(handle.address, {"query": QUERY},
                                     results, tenant="acme")
            assert gate.started.wait(10)
            status, headers, payload = _request(
                handle.address, "POST", "/query",
                {"query": OTHER_QUERY}, tenant="acme")
            assert status == 429
            assert payload["error"]["reason"] == "quota"
            assert float(headers["retry-after"]) >= 1
            assert payload["error"]["retry_after"] >= 1
            # Another tenant is not collateral damage of acme's quota.
            other = _request(handle.address, "GET", "/healthz")
            assert other[0] == 200
            gate.release.set()
            thread.join(10)
            assert results[0][0] == 200
        assert server.admission.counters.shed_quota == 1

    def test_queue_full_sheds_with_429(self, service, gate_cleanup):
        gate = _Gate(service)
        gate_cleanup(gate)
        server = HttpCohortServer(service, admission=AdmissionConfig(
            max_inflight=1, queue_depth=1, tenant_quota=8))
        with start_in_thread(server) as handle:
            results = []
            first = _post_in_thread(handle.address, {"query": QUERY},
                                    results)
            assert gate.started.wait(10)
            second = _post_in_thread(handle.address,
                                     {"query": OTHER_QUERY}, results)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:  # wait for it to queue
                if server.admission.waiting >= 1:
                    break
                time.sleep(0.005)
            assert server.admission.waiting >= 1
            status, headers, payload = _request(
                handle.address, "POST", "/query", {"query": QUERY})
            assert status == 429
            assert payload["error"]["reason"] == "queue"
            assert "retry-after" in headers
            gate.release.set()
            for thread in (first, second):
                thread.join(10)
            assert sorted(s for s, _, _ in results) == [200, 200]
        assert server.admission.counters.shed_queue == 1

    def test_rate_limit_sheds_with_429(self, service):
        now = [0.0]
        server = HttpCohortServer(
            service,
            admission=AdmissionConfig(tenant_rate=1.0, tenant_burst=1),
            clock=lambda: now[0])
        with start_in_thread(server) as handle:
            first = _request(handle.address, "POST", "/query",
                             {"query": QUERY}, tenant="acme")
            assert first[0] == 200
            status, headers, payload = _request(
                handle.address, "POST", "/query", {"query": QUERY},
                tenant="acme")
            assert status == 429
            assert payload["error"]["reason"] == "rate"
            assert float(headers["retry-after"]) == 1
            now[0] += 1.0  # the advertised wait is sufficient
            assert _request(handle.address, "POST", "/query",
                            {"query": QUERY}, tenant="acme")[0] == 200
        assert server.admission.counters.shed_rate == 1

    def test_timeout_cancels_and_leaves_caches_consistent(
            self, engine, service, gate_cleanup):
        gate = _Gate(service)
        gate_cleanup(gate)
        server = HttpCohortServer(service, admission=AdmissionConfig(
            max_inflight=2, timeout_seconds=0.15))
        with start_in_thread(server) as handle:
            status, _, payload = _request(
                handle.address, "POST", "/query", {"query": QUERY})
            assert status == 504
            assert payload["error"]["type"] == "Timeout"
            gate.release.set()  # the worker thread finishes late
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if server.admission.inflight == 0:
                    break
                time.sleep(0.005)
            assert server.admission.inflight == 0
            # The tier stays healthy and the caches stay consistent:
            # the same statement now serves the correct result.
            direct = _digest(engine.query(engine.parse(QUERY)))
            status, _, payload = _request(
                handle.address, "POST", "/query",
                {"query": QUERY, "timeout": 30})
            assert status == 200
            assert payload["digest"] == direct
        assert server.admission.counters.timeouts == 1

    def test_timeout_while_queued_never_executes(self, service,
                                                 gate_cleanup):
        gate = _Gate(service)
        gate_cleanup(gate)
        server = HttpCohortServer(service, admission=AdmissionConfig(
            max_inflight=1, queue_depth=4, timeout_seconds=30))
        with start_in_thread(server) as handle:
            results = []
            first = _post_in_thread(handle.address, {"query": QUERY},
                                    results)
            assert gate.started.wait(10)
            status, _, payload = _request(
                handle.address, "POST", "/query",
                {"query": OTHER_QUERY, "timeout": 0.15})
            assert status == 504
            gate.release.set()
            first.join(10)
            assert results[0][0] == 200
        # The timed-out request was cancelled while queued: the
        # engine never saw it, and its admission was undone.
        assert len(gate.calls) == 1
        assert server.admission.counters.admitted == 1
        assert server.admission.counters.timeouts == 1
        assert server.admission.inflight == 0


# -- single-flight dedup under a client storm ---------------------------------


class TestSingleFlight:
    def test_storm_collapses_to_one_execution(self, engine, service,
                                              monkeypatch):
        import repro.service.service as service_mod
        executions = []
        original = service_mod.execute

        def counting(table, plan, kernel, config):
            executions.append(plan)
            time.sleep(0.1)  # hold the miss open so the storm piles up
            return original(table, plan, kernel, config)

        monkeypatch.setattr(service_mod, "execute", counting)
        server = HttpCohortServer(service, admission=AdmissionConfig(
            max_inflight=8, queue_depth=32, tenant_quota=32))
        with start_in_thread(server) as handle:
            results = []
            threads = [_post_in_thread(handle.address, {"query": QUERY},
                                       results) for _ in range(8)]
            for thread in threads:
                thread.join(30)
        statuses = sorted(s for s, _, _ in results)
        assert statuses == [200] * 8
        digests = {payload["digest"] for _, _, payload in results}
        assert len(digests) == 1
        assert len(executions) == 1  # one miss, seven followers
        assert service.counters.singleflight_waits >= 1


# -- endpoints ----------------------------------------------------------------


class TestEndpoints:
    def test_query_digest_parity_and_serving_stats(self, engine,
                                                   service):
        direct = _digest(engine.query(engine.parse(QUERY)))
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            status, _, payload = _request(
                handle.address, "POST", "/query", {"query": QUERY})
        assert status == 200
        assert payload["digest"] == direct
        assert payload["rows"] and payload["columns"]
        stats = payload["stats"]
        assert stats["http_admitted"] >= 1
        assert stats["admission_wait_seconds"] >= 0
        assert stats["cache_disposition"] == "miss"

    def test_batch_isolates_failures(self, engine, service):
        direct = _digest(engine.query(engine.parse(QUERY)))
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            status, _, payload = _request(
                handle.address, "POST", "/batch",
                {"queries": [QUERY, MALFORMED, OTHER_QUERY]})
        assert status == 200
        assert payload["count"] == 3
        good, bad, other = payload["results"]
        assert good["ok"] and good["digest"] == direct
        assert other["ok"]
        assert not bad["ok"]
        assert bad["status"] == 400
        assert bad["error"]["type"] == "ParseError"

    def test_explain_get_with_query_param(self, service):
        from urllib.parse import quote
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            status, _, payload = _request(
                handle.address, "GET", f"/explain?q={quote(QUERY)}")
        assert status == 200
        assert "explain" in payload

    def test_stats_sections(self, service):
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            _request(handle.address, "POST", "/query", {"query": QUERY})
            status, _, payload = _request(handle.address, "GET",
                                          "/stats")
        assert status == 200
        assert payload["http"]["received"] >= 1
        assert payload["http"]["admitted"] >= 1
        assert payload["admission"]["max_inflight"] == 8
        assert "service" in payload

    def test_healthz(self, service):
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            status, _, payload = _request(handle.address, "GET",
                                          "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_unknown_route_404_and_wrong_method_405(self, service):
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            assert _request(handle.address, "GET", "/nope")[0] == 404
            status, headers, _ = _request(handle.address, "GET",
                                          "/query")
            assert status == 405
            assert "POST" in headers["allow"]

    def test_missing_query_and_bad_json_are_400(self, service):
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            assert _request(handle.address, "POST", "/query", {})[0] \
                == 400
            conn = http.client.HTTPConnection(*handle.address,
                                              timeout=10)
            conn.request("POST", "/query", body=b"not json{")
            response = conn.getresponse()
            payload = json.loads(response.read())
            conn.close()
            assert response.status == 400
            assert "JSON" in payload["error"]["message"]


# -- structured parse errors (pinned wire shape) ------------------------------


class TestStructuredErrors:
    def test_malformed_statement_shape_is_pinned(self, service):
        """The 400 body is exactly ``{"error": {type, message,
        position}}`` — the shared classification the REPL prints as an
        ``error:`` line, never a stack trace."""
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            status, _, payload = _request(
                handle.address, "POST", "/query", {"query": MALFORMED})
        assert status == 400
        assert set(payload) == {"error"}
        error = payload["error"]
        assert set(error) == {"type", "message", "position"}
        assert error["type"] == "ParseError"
        assert isinstance(error["position"], int)
        assert "Traceback" not in json.dumps(payload)

    def test_unknown_table_is_404(self, service):
        query = QUERY.replace("FROM G", "FROM Nope")
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            status, _, payload = _request(
                handle.address, "POST", "/query", {"query": query})
        assert status == 404
        assert payload["error"]["type"] == "CatalogError"


# -- ingest -------------------------------------------------------------------


def _sharded_game_dir(tmp_path):
    directory = tmp_path / "table_dir"
    append_shard(directory, _game_table(users=12), target_chunk_rows=64)
    return directory


_NEW_USER_CSV = (
    "player,time,action,country,city,role,session_length,gold\n"
    "zz-new,2013/05/20:1000,launch,Narnia,Cair,dwarf,10,0\n"
    "zz-new,2013/05/21:1000,shop,Narnia,Cair,dwarf,10,5\n")


class TestIngest:
    def _server(self, directory):
        engine = CohanaEngine()
        engine.load_table("D", str(directory))
        return HttpCohortServer(QueryService(engine),
                                ingest_dir=directory,
                                csv_schema=game_schema())

    def test_append_refreshes_the_served_table(self, tmp_path):
        directory = _sharded_game_dir(tmp_path)
        server = self._server(directory)
        query = QUERY.replace("FROM G", "FROM D")
        with start_in_thread(server) as handle:
            _, _, before = _request(handle.address, "POST", "/query",
                                    {"query": query})
            status, _, payload = _request(
                handle.address, "POST", "/ingest",
                {"csv": _NEW_USER_CSV})
            assert status == 200
            assert payload["appended"] == 2
            assert payload["shards_total"] == 2
            _, _, after = _request(handle.address, "POST", "/query",
                                   {"query": query})
        # The version token moved: the cached result was invalidated
        # and the new cohort is visible.
        assert after["digest"] != before["digest"]
        assert after["stats"]["cache_disposition"] == "invalidated"

    def test_user_overlap_is_409(self, tmp_path):
        directory = _sharded_game_dir(tmp_path)
        server = self._server(directory)
        with start_in_thread(server) as handle:
            first = _request(handle.address, "POST", "/ingest",
                             {"csv": _NEW_USER_CSV})
            assert first[0] == 200
            status, _, payload = _request(
                handle.address, "POST", "/ingest",
                {"csv": _NEW_USER_CSV})  # same user again: overlap
        assert status == 409
        assert "ingest rejected" in payload["error"]["message"]

    def test_ingest_disabled_without_shard_dir(self, service):
        server = HttpCohortServer(service)
        with start_in_thread(server) as handle:
            status, _, payload = _request(
                handle.address, "POST", "/ingest",
                {"csv": _NEW_USER_CSV})
        assert status == 400
        assert "sharded table directory" in payload["error"]["message"]


# -- graceful drain -----------------------------------------------------------


class TestDrain:
    def test_inflight_requests_complete_then_listener_refuses(
            self, engine, service, gate_cleanup):
        gate = _Gate(service)
        gate_cleanup(gate)
        server = HttpCohortServer(service, admission=AdmissionConfig(
            max_inflight=1, queue_depth=4))
        handle = start_in_thread(server)
        results = []
        threads = [_post_in_thread(handle.address, {"query": QUERY},
                                   results) for _ in range(3)]
        assert gate.started.wait(10)
        # All three must actually be in flight (one executing, two in
        # the admission queue) before the plug is pulled — a request
        # the server has not read yet is not "in flight".
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if server.admission.inflight >= 3:
                break
            time.sleep(0.005)
        assert server.admission.inflight >= 3
        drainer = threading.Thread(target=handle.drain, daemon=True)
        drainer.start()
        gate.release.set()
        for thread in threads:
            thread.join(30)
        drainer.join(30)
        assert not handle.thread.is_alive()
        # Zero dropped: every request that was in flight (or queued)
        # when the drain began completed with the real result.
        direct = _digest(engine.query(engine.parse(QUERY)))
        assert [s for s, _, _ in results] == [200] * 3
        assert all(p["digest"] == direct for _, _, p in results)
        with pytest.raises(OSError):
            _request(handle.address, "GET", "/healthz", timeout=2)

    def test_draining_healthz_is_503(self, service, gate_cleanup):
        gate = _Gate(service)
        gate_cleanup(gate)
        server = HttpCohortServer(service, admission=AdmissionConfig(
            max_inflight=1))
        handle = start_in_thread(server)
        results = []
        # Hold one request so the drain below cannot finish before the
        # keep-alive probe observes the draining state.
        _post_in_thread(handle.address, {"query": QUERY}, results)
        assert gate.started.wait(10)
        conn = http.client.HTTPConnection(*handle.address, timeout=10)
        conn.request("GET", "/healthz")
        assert conn.getresponse().read() is not None
        server.request_drain()
        deadline = time.monotonic() + 5
        status = None
        while time.monotonic() < deadline:
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                status = response.status
                if status == 503:
                    break
            except OSError:
                break
            time.sleep(0.01)
        conn.close()
        gate.release.set()
        handle.thread.join(10)
        assert status in (503, None)


# -- CLI wiring ---------------------------------------------------------------


class TestServeHttpCLI:
    def test_admission_flags_reach_the_server(self, tmp_path,
                                              monkeypatch):
        import repro.service.http as http_mod
        captured = {}

        class FakeServer:
            def __init__(self, service, **kw):
                captured["service"] = service
                captured.update(kw)

            def run(self):
                captured["ran"] = True

        monkeypatch.setattr(http_mod, "HttpCohortServer", FakeServer)
        code = main(["serve", str(tmp_path / "table_dir"),
                     "--http", "127.0.0.1:0", "--max-inflight", "3",
                     "--queue-depth", "5", "--tenant-quota", "2",
                     "--tenant-rate", "2.5", "--tenant-burst", "4",
                     "--timeout", "9.5"])
        assert code == 0
        assert captured["ran"]
        admission = captured["admission"]
        assert admission.max_inflight == 3
        assert admission.queue_depth == 5
        assert admission.tenant_quota == 2
        assert admission.tenant_rate == 2.5
        assert admission.tenant_burst == 4
        assert admission.timeout_seconds == 9.5
        assert captured["host"] == "127.0.0.1"
        assert captured["port"] == 0
        assert captured["ingest_dir"] is None  # not a sharded dir

    def test_bad_http_address_is_an_error(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path), "--http", "localhost"])
        assert code == 1
        assert "--http expects HOST:PORT" in capsys.readouterr().err

    def test_end_to_end_over_the_cli_surface(self, tmp_path):
        """A real server through the CLI construction path (bind on
        first use, sharded dir detection) without a subprocess."""
        directory = _sharded_game_dir(tmp_path)
        engine = CohanaEngine()
        service = QueryService(engine)
        lock = threading.Lock()

        def bind_table(name):
            with lock:
                if name not in engine.tables():
                    engine.load_table(name, str(directory))

        server = HttpCohortServer(service, bind_table=bind_table,
                                  ingest_dir=directory,
                                  csv_schema=game_schema())
        query = QUERY.replace("FROM G", "FROM D")
        with start_in_thread(server) as handle:
            status, _, payload = _request(handle.address, "POST",
                                          "/query", {"query": query})
        assert status == 200
        assert "D" in engine.tables()  # lazily bound by the request
        direct = _digest(engine.query(engine.parse(query)))
        assert payload["digest"] == direct
